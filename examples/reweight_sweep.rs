//! Path-archive reweighting: one recorded run answers a whole sweep of
//! optical-property queries without re-tracing a photon.
//!
//! Records an archive on the five-layer adult head, then sweeps scalp
//! absorption over ±30% — the kind of scan an inverse solver or a
//! chromophore fit performs — re-scoring the archived paths for each
//! query. One fresh Monte Carlo run takes seconds; one reweight query
//! takes microseconds, and the report's effective sample size shows how
//! far the archive can be trusted.
//!
//! Run: `cargo run --release --example reweight_sweep`

use lumen::core::{Backend, Detector, Rayon, RecordOptions, Scenario, Source};
use lumen::tissue::presets::{adult_head, AdultHeadConfig};
use std::time::Instant;

const SCALP: usize = 0; // region index of the scalp in the head stack

fn main() {
    let head = adult_head(AdultHeadConfig::default());
    let mut scenario = Scenario::new(head, Source::Delta, Detector::ring(8.0, 2.0))
        .with_photons(400_000)
        .with_seed(7);
    scenario.options.archive = Some(RecordOptions { detected_only: true });

    let started = Instant::now();
    let res = Rayon::default().run(&scenario).expect("valid scenario");
    let recording_secs = started.elapsed().as_secs_f64();
    let archive = res.tally.archive.as_ref().expect("archive attached");
    println!(
        "recorded {} detected paths from {} photons in {:.1} s\n",
        archive.len(),
        res.tally.launched,
        recording_secs
    );

    println!("scalp mu_a sweep (recorded at {:.3}/mm):", archive.base[SCALP].mu_a);
    println!("{:>8} | {:>14} | {:>12} | {:>9}", "factor", "mu_a (1/mm)", "det. weight", "ESS");
    let started = Instant::now();
    let mut queries = 0u32;
    for step in 0..=12 {
        let factor = 0.7 + 0.05 * f64::from(step);
        let mut query = archive.base.clone();
        query[SCALP].mu_a = archive.base[SCALP].mu_a * factor;
        let report = archive.evaluate(&query).expect("query in range");
        queries += 1;
        println!(
            "{factor:>8.2} | {:>14.4} | {:>12.4} | {:>5.0}/{}",
            query[SCALP].mu_a, report.tally.detected_weight, report.ess, report.detected_entries
        );
    }
    let sweep_secs = started.elapsed().as_secs_f64();
    println!(
        "\n{queries} queries in {:.1} ms ({:.0} queries/s) — the recording run would \
         have cost {:.0} s of re-tracing",
        sweep_secs * 1e3,
        f64::from(queries) / sweep_secs,
        recording_secs * f64::from(queries),
    );
    println!(
        "ESS stays near the detected count across the whole band: absorption \
         queries reweight efficiently (scattering queries are the hard ones)."
    );
}
