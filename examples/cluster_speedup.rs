//! Reproduce the shape of the paper's Fig 2 speedup curve on the
//! simulated 2006 cluster, and exercise the real threaded master/worker
//! engine on this machine.
//!
//! Run: `cargo run --release --example cluster_speedup`

use lumen::cluster::{
    speedup_curve, AvailabilityModel, FailurePlan, JobSpec, NetworkModel, ThreadedCluster,
};
use lumen::core::{Backend, Detector, Progress, Scenario, Source};
use lumen::tissue::presets::homogeneous_white_matter;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    // --- simulated Fig 2 curve ---
    println!("simulated speedup curve (homogeneous P4-class machines, 10^9 photons):");
    let points = speedup_curve(
        &JobSpec::paper_job(),
        &[1, 10, 20, 30, 40, 50, 60],
        NetworkModel::lan_2006(),
        AvailabilityModel::DEDICATED,
        2006,
    );
    for p in &points {
        let bar_len = (p.speedup / 60.0 * 40.0).round() as usize;
        println!(
            "  k={:>2}  speedup {:>5.1}  eff {:>5.1}%  {}",
            p.k,
            p.speedup,
            p.efficiency * 100.0,
            "#".repeat(bar_len)
        );
    }

    // --- real master/worker engine on this machine ---
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    println!("\nreal master/worker engine ({workers} worker threads, demand-driven):");
    let scenario =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(6.0, 1.0))
            .with_photons(200_000)
            .with_tasks(workers as u64 * 8)
            .with_seed(3);

    // Observe the run through the Progress hook: count retries live.
    struct RetryCounter(AtomicU64);
    impl Progress for RetryCounter {
        fn on_task_retry(&self, _task_id: u64) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let retries = RetryCounter(AtomicU64::new(0));

    let backend =
        ThreadedCluster::new(workers).with_failure_plan(FailurePlan::Random { rate: 0.05 });
    let report = backend.run_with_progress(&scenario, &retries).expect("valid scenario");
    println!(
        "  {} photons in {:.2} s with 5% injected task failures ({} requeues, {} observed live)",
        report.result.launched(),
        report.wall_seconds,
        report.requeues,
        retries.0.load(Ordering::Relaxed)
    );
    for (i, w) in report.workers.iter().enumerate() {
        println!(
            "  worker {i:>2}: {:>3} tasks, {:>7} photons, {} failures",
            w.tasks_completed, w.photons, w.tasks_failed
        );
    }
    println!("  detected fraction: {:.2e}", report.result.detected_fraction());
}
