//! Reproduce the shape of the paper's Fig 2 speedup curve on the
//! simulated 2006 cluster, and exercise the real threaded master/worker
//! engine on this machine.
//!
//! Run: `cargo run --release --example cluster_speedup`

use lumen::cluster::{
    run_distributed, speedup_curve, AvailabilityModel, DistributedConfig, JobSpec, NetworkModel,
};
use lumen::core::{Detector, Simulation, Source};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    // --- simulated Fig 2 curve ---
    println!("simulated speedup curve (homogeneous P4-class machines, 10^9 photons):");
    let points = speedup_curve(
        &JobSpec::paper_job(),
        &[1, 10, 20, 30, 40, 50, 60],
        NetworkModel::lan_2006(),
        AvailabilityModel::DEDICATED,
        2006,
    );
    for p in &points {
        let bar_len = (p.speedup / 60.0 * 40.0).round() as usize;
        println!(
            "  k={:>2}  speedup {:>5.1}  eff {:>5.1}%  {}",
            p.k,
            p.speedup,
            p.efficiency * 100.0,
            "#".repeat(bar_len)
        );
    }

    // --- real master/worker engine on this machine ---
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    println!("\nreal master/worker engine ({workers} worker threads, demand-driven):");
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(6.0, 1.0));
    let report = run_distributed(
        &sim,
        200_000,
        DistributedConfig { seed: 3, tasks: workers as u64 * 8, workers, failure_rate: 0.05 },
    );
    println!(
        "  {} photons in {:.2} s with 5% injected task failures ({} requeues)",
        report.result.launched(),
        report.wall_seconds,
        report.requeues
    );
    for (i, w) in report.worker_stats.iter().enumerate() {
        println!(
            "  worker {i:>2}: {:>3} tasks, {:>7} photons, {} failures",
            w.tasks_completed, w.photons, w.tasks_failed
        );
    }
    println!("  detected fraction: {:.2e}", report.result.detected_fraction());
}
