//! Voxel geometry: absorption perturbation from an embedded inclusion.
//!
//! A layered head model cannot express a focal absorber (a bleed, a tumour,
//! an activated cortical patch) — a voxel grid can. This example voxelizes
//! the adult head, embeds a 4 mm-radius absorbing inclusion under the
//! detector's midpoint, and measures how the detected signal and the
//! per-region absorption budget shift against the homogeneous baseline —
//! the contrast NIRS imaging lives on.
//!
//! Run: `cargo run --release --example voxel_inclusion [photons]`

use lumen::core::{Backend, Detector, Rayon, Scenario, Source, TissueGeometry, Vec3};
use lumen::tissue::presets::{adult_head, inclusion_optics};
use lumen::tissue::presets::{head_with_inclusion, voxelized, AdultHeadConfig};

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    let cfg = AdultHeadConfig::default();
    let separation = 30.0;
    let dx = 1.0; // mm voxel pitch
    let half_width = 30.0; // mm lateral half-extent
    let depth = 30.0; // mm grid depth
                      // Inclusion centred under the source-detector midpoint, in grey matter.
    let centre = Vec3::new(separation / 2.0, 0.0, cfg.csf_depth() + 3.0);
    let radius = 4.0;

    let baseline = voxelized(&adult_head(cfg), dx, half_width, depth).expect("head voxelizes");
    let perturbed = head_with_inclusion(cfg, dx, half_width, depth, centre, radius)
        .expect("inclusion phantom builds");

    let (nx, ny, nz) = baseline.dims();
    println!("voxelized adult head: {nx}x{ny}x{nz} voxels at {dx} mm pitch");
    println!(
        "inclusion: r = {radius} mm at ({}, {}, {}) mm, mu_a = {:.3}/mm ({}x grey matter)",
        centre.x,
        centre.y,
        centre.z,
        inclusion_optics().mu_a,
        (inclusion_optics().mu_a / 0.036).round(),
    );
    println!("detector: ring at {separation} mm; photons: {photons}\n");

    let run = |grid: lumen::tissue::VoxelTissue| {
        let scenario = Scenario::new(grid, Source::Delta, Detector::ring(separation, 2.0))
            .with_photons(photons)
            .with_seed(17);
        Rayon::default().run(&scenario).expect("valid scenario")
    };
    let base = run(baseline);
    let pert = run(perturbed.clone());

    println!("{:<28} {:>14} {:>14} {:>10}", "", "homogeneous", "inclusion", "change");
    let row = |label: &str, a: f64, b: f64| {
        let change = if a.abs() > 1e-12 { 100.0 * (b - a) / a } else { 0.0 };
        println!("{label:<28} {a:>14.6} {b:>14.6} {change:>+9.2}%");
    };
    row("detected weight / photon", base.tally.detected_weight / photons as f64, {
        pert.tally.detected_weight / photons as f64
    });
    row("diffuse reflectance", base.diffuse_reflectance(), pert.diffuse_reflectance());
    row("absorbed fraction", base.absorbed_fraction(), pert.absorbed_fraction());

    println!("\nabsorbed weight per region (fraction of launched):");
    let base_by_region = base.absorbed_fraction_by_layer();
    let pert_by_region = pert.absorbed_fraction_by_layer();
    for (region, b) in pert_by_region.iter().enumerate() {
        let a = base_by_region.get(region).copied().unwrap_or(0.0);
        println!("  {:<16} {:>10.5} -> {:>10.5}", perturbed.region_name(region), a, b);
    }

    let detected_drop = 100.0 * (base.tally.detected_weight - pert.tally.detected_weight)
        / base.tally.detected_weight.max(1e-12);
    println!(
        "\nthe inclusion steals {detected_drop:.1}% of the detected signal — \
         the contrast a layered model cannot produce"
    );
}
