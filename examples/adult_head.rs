//! The Fig 4 scenario: photon migration through the five-layer adult-head
//! model, including how much light reaches the white matter and how the
//! CSF layer shapes the distribution.
//!
//! Run: `cargo run --release --example adult_head`

use lumen::core::{Backend, Detector, Rayon, Scenario, Source};
use lumen::tissue::presets::{adult_head, AdultHeadConfig};

fn main() {
    let cfg = AdultHeadConfig::default();
    let head = adult_head(cfg);

    println!("adult head model (Table 1):");
    for layer in head.layers() {
        println!(
            "  {:<14} z = {:>5.1} .. {:<6} mu_s' = {:.2}/mm, mu_a = {:.3}/mm",
            layer.name,
            layer.z_top,
            if layer.is_semi_infinite() {
                "inf".to_string()
            } else {
                format!("{:.1}", layer.z_bottom)
            },
            layer.optics.mu_s_prime(),
            layer.optics.mu_a,
        );
    }

    // Sweep the source-detector separation across the paper's 20-60 mm
    // range: larger spacings interrogate more grey matter but the CSF
    // still confines sensitivity (the paper's Sect. 2 discussion).
    println!(
        "\n{:>10} | {:>9} | {:>12} | {:>12} | {:>14} | {:>12}",
        "sep (mm)", "detected", "mean path", "DPF", "mean depth", "reach WM"
    );
    for separation in [20.0, 30.0, 40.0, 50.0, 60.0] {
        // Annular detector: same physics as a disc by symmetry, ~30x the
        // statistical efficiency at these separations.
        let scenario = Scenario::new(head.clone(), Source::Delta, Detector::ring(separation, 2.0))
            .with_photons(400_000)
            .with_seed(11);
        let res = Rayon::default().run(&scenario).expect("valid scenario");
        println!(
            "{:>10.0} | {:>9} | {:>9.0} mm | {:>12.2} | {:>11.1} mm | {:>11.2}%",
            separation,
            res.tally.detected,
            res.mean_detected_pathlength(),
            res.differential_pathlength_factor(separation),
            res.mean_penetration_depth(),
            res.detected_reached_layer_fraction(4) * 100.0,
        );
    }
    println!(
        "\n(white matter begins at {:.1} mm; detected photons reaching it are the \
         signal of interest)",
        cfg.white_matter_depth()
    );
}
