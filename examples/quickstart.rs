//! Quickstart: simulate near-infrared photons through the adult-head model
//! and print the quantities an NIRS experimenter cares about.
//!
//! Run: `cargo run --release --example quickstart`

use lumen::core::{Backend, Detector, Rayon, Scenario, Sequential, Source};
use lumen::tissue::presets::{adult_head, AdultHeadConfig};

fn main() {
    // 1. Describe the experiment as a Scenario: the paper's Table 1 adult
    //    head, a laser at the origin, a 3 mm-radius detector 30 mm away (a
    //    typical NIRS optode spacing), a photon budget, and a seed. The
    //    (seed, tasks) pair fixes every random draw.
    let scenario = Scenario::new(
        adult_head(AdultHeadConfig::default()),
        Source::Delta,
        Detector::new(30.0, 3.0),
    )
    .with_photons(500_000)
    .with_seed(42);

    // 2. Pick a backend and run. Any backend — Sequential, Rayon, the
    //    threaded cluster, TCP — returns bit-identical tallies for the
    //    same scenario; Rayon is the single-machine production choice.
    let result = Rayon::default().run(&scenario).expect("valid scenario");

    // 3. Read off the physics.
    println!(
        "backend: {} ({:.2} s, {:.0} photons/s)",
        result.backend,
        result.wall_seconds,
        result.photons_per_second()
    );
    println!("photons launched:        {}", result.launched());
    println!("detected:                {}", result.tally.detected);
    println!("detected fraction:       {:.2e}", result.detected_fraction());
    println!("specular reflectance:    {:.4}", result.specular_reflectance());
    println!("diffuse reflectance:     {:.4}", result.diffuse_reflectance());
    println!("absorbed fraction:       {:.4}", result.absorbed_fraction());
    println!();
    println!("mean detected pathlength: {:.1} mm", result.mean_detected_pathlength());
    println!(
        "differential pathlength factor (DPF): {:.2}",
        result.differential_pathlength_factor(30.0)
    );
    println!("mean penetration depth:   {:.1} mm", result.mean_penetration_depth());
    println!("max penetration depth:    {:.1} mm", result.max_penetration_depth());
    println!();
    println!("absorbed weight per layer (per launched photon):");
    for (region, frac) in result.absorbed_fraction_by_layer().iter().enumerate() {
        println!("  {:<14} {:.5}", scenario.tissue.region_name(region), frac);
    }

    // 4. The reproducibility contract: a completely different execution
    //    path gives the same physics, bit for bit.
    let small = scenario.with_photons(20_000);
    let check = Sequential.run(&small).expect("valid scenario");
    let again = Rayon::default().run(&small).expect("valid scenario");
    assert_eq!(check.result.tally, again.result.tally);
    println!("\n(sequential and rayon backends agree bit-for-bit on a 20k-photon check)");
}
