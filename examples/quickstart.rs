//! Quickstart: simulate near-infrared photons through the adult-head model
//! and print the quantities an NIRS experimenter cares about.
//!
//! Run: `cargo run --release --example quickstart`

use lumen::core::{Detector, ParallelConfig, Simulation, Source};
use lumen::tissue::presets::{adult_head, AdultHeadConfig};

fn main() {
    // 1. Pick a tissue model — here the paper's Table 1 adult head.
    let tissue = adult_head(AdultHeadConfig::default());

    // 2. Pick a source and a detector: a laser at the origin, a 3 mm-radius
    //    detector 30 mm away (a typical NIRS optode spacing).
    let source = Source::Delta;
    let detector = Detector::new(30.0, 3.0);

    // 3. Build and run the simulation in parallel (deterministic per seed).
    let sim = Simulation::new(tissue, source, detector);
    let photons = 500_000;
    let result = lumen::core::run_parallel(&sim, photons, ParallelConfig::new(42));

    // 4. Read off the physics.
    println!("photons launched:        {}", result.launched());
    println!("detected:                {}", result.tally.detected);
    println!("detected fraction:       {:.2e}", result.detected_fraction());
    println!("specular reflectance:    {:.4}", result.specular_reflectance());
    println!("diffuse reflectance:     {:.4}", result.diffuse_reflectance());
    println!("absorbed fraction:       {:.4}", result.absorbed_fraction());
    println!();
    println!("mean detected pathlength: {:.1} mm", result.mean_detected_pathlength());
    println!(
        "differential pathlength factor (DPF): {:.2}",
        result.differential_pathlength_factor(30.0)
    );
    println!("mean penetration depth:   {:.1} mm", result.mean_penetration_depth());
    println!("max penetration depth:    {:.1} mm", result.max_penetration_depth());
    println!();
    println!("absorbed weight per layer (per launched photon):");
    for (layer, frac) in sim.tissue.layers().iter().zip(result.absorbed_fraction_by_layer()) {
        println!("  {:<14} {:.5}", layer.name, frac);
    }
}
