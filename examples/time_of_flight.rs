//! Time-of-flight / TPSF example: the pathlength histogram the engine
//! tallies, converted to the temporal point-spread function a pulsed NIRS
//! instrument measures — and the physical meaning of the paper's "gated
//! differential pathlengths" in picoseconds.
//!
//! Run: `cargo run --release --example time_of_flight`

use lumen::analysis::tof::{mean_time_of_flight_ps, pathlength_to_time_ps};
use lumen::core::{Backend, Detector, Rayon, Scenario, Source};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    let separation = 6.0;
    let mut scenario =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(separation, 1.0))
            .with_photons(1_500_000)
            .with_seed(23);
    scenario.options.path_histogram = Some((600.0, 30));

    let res = Rayon::default().run(&scenario).expect("valid scenario");
    let n = 1.4; // tissue refractive index

    println!(
        "{} photons detected at {separation} mm; mean pathlength {:.1} mm = {:.0} ps of flight\n",
        res.tally.detected,
        res.mean_detected_pathlength(),
        mean_time_of_flight_ps(res.mean_detected_pathlength(), n)
    );

    let hist = res.tally.path_histogram.as_ref().expect("histogram attached");
    let max_count = hist.counts.iter().copied().max().unwrap_or(1).max(1);
    println!("TPSF (arrival-time distribution of detected photons):");
    println!("{:>10} | {:>10} | {:>7} |", "path (mm)", "time (ps)", "count");
    for (i, &count) in hist.counts.iter().enumerate() {
        let l = hist.bin_centre(i);
        let bar = "#".repeat((count * 40 / max_count) as usize);
        println!("{:>10.0} | {:>10.0} | {:>7} | {}", l, pathlength_to_time_ps(l, n), count, bar);
    }
    if hist.overflow > 0 {
        println!("{:>10} | {:>10} | {:>7} |", ">600", "late", hist.overflow);
    }
    println!(
        "\nan instrument gating on 100-200 ps would accept pathlengths \
         {:.0}-{:.0} mm — exactly what GateWindow expresses in mm",
        lumen::analysis::tof::time_to_pathlength_mm(100.0, n),
        lumen::analysis::tof::time_to_pathlength_mm(200.0, n),
    );
}
