//! Gated differential pathlengths: "In a real world experiment the pulse
//! interferes with the paths taken by photons so the source and detector
//! only operate between pulses. Thus the ability to gate the pathlengths
//! allows for the simulation of this."
//!
//! This example scans a sliding pathlength gate across the detected-photon
//! distribution, showing how gating selects early (shallow) vs late (deep)
//! photons — the basis of time-gated NIRS.
//!
//! Run: `cargo run --release --example gated_pathlengths`

use lumen::core::{Backend, Detector, GateWindow, Rayon, Scenario, Source};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    let separation = 6.0;
    let photons = 600_000;

    // Ungated reference.
    let open =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(separation, 1.0))
            .with_photons(photons)
            .with_seed(13);
    let reference = Rayon::default().run(&open).expect("valid scenario");
    println!(
        "ungated: {} detected, pathlengths {:.1} ± {:.1} mm",
        reference.tally.detected,
        reference.mean_detected_pathlength(),
        reference.std_detected_pathlength()
    );

    println!(
        "\n{:>14} | {:>9} | {:>12} | {:>12} | {:>10}",
        "gate (mm)", "detected", "gate-reject", "mean path", "mean depth"
    );
    for (lo, hi) in [(0.0, 10.0), (10.0, 20.0), (20.0, 40.0), (40.0, 80.0), (80.0, 160.0)] {
        let gated = Scenario::new(
            homogeneous_white_matter(),
            Source::Delta,
            Detector::new(separation, 1.0)
                .with_gate(GateWindow::new(lo, hi).expect("valid window")),
        )
        .with_photons(photons)
        .with_seed(13);
        let res = Rayon::default().run(&gated).expect("valid scenario");
        println!(
            "{:>6.0}-{:<7.0} | {:>9} | {:>12} | {:>9.1} mm | {:>7.2} mm",
            lo,
            hi,
            res.tally.detected,
            res.tally.gate_rejected,
            res.mean_detected_pathlength(),
            res.mean_penetration_depth(),
        );
    }
    println!("\nlater gates select photons that travelled further and probed deeper.");
}
