//! Simulate the paper's Table 2 deployment: 10⁹ photons on 150
//! heterogeneous, non-dedicated machines, and compare scheduling policies.
//!
//! Run: `cargo run --release --example heterogeneous_cluster`

use lumen::cluster::{
    AvailabilityModel, ClusterSim, GaScheduler, JobSpec, NetworkModel, Scheduler, SelfScheduling,
    StaticChunking,
};

fn main() {
    let pool = lumen::cluster::table2_pool();
    println!(
        "Table 2 pool: {} machines, {:.1} aggregate Mflop/s, fastest class {:.1} Mflop/s",
        pool.len(),
        pool.total_mflops(),
        pool.fastest_mflops()
    );

    let sim = ClusterSim {
        pool,
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 150,
    };
    let job = JobSpec::paper_job();

    println!("\npolicy comparison for the 10^9-photon job:");
    let policies: Vec<Box<dyn Scheduler>> =
        vec![Box::new(SelfScheduling), Box::new(StaticChunking), Box::new(GaScheduler::default())];
    for policy in &policies {
        let report = sim.run_with(&job, policy.as_ref());
        println!(
            "  {:<16} makespan {:>7.0} s ({:>5.2} h), speedup {:>5.1}, utilisation {:>5.1}%",
            policy.name(),
            report.makespan_s,
            report.makespan_s / 3600.0,
            report.speedup(),
            report.mean_utilisation() * 100.0
        );
    }
    // The same pool through the unified Backend API: a Scenario routed to
    // the `sim` backend predicts the run without executing any transport.
    use lumen::cluster::SimulatedCluster;
    use lumen::core::{Backend, Detector, Scenario, Source};
    let scenario = Scenario::new(
        lumen::tissue::presets::homogeneous_white_matter(),
        Source::Delta,
        Detector::new(6.0, 1.0),
    )
    .with_photons(job.total_photons)
    .with_tasks(job.n_tasks())
    .with_seed(150);
    let mut backend = SimulatedCluster::with_pool(lumen::cluster::table2_pool());
    backend.availability = AvailabilityModel::semi_idle();
    let predicted = backend.run(&scenario).expect("valid scenario");
    println!(
        "\nvia Backend::run (`sim` backend): predicted makespan {:.2} h over {} machines",
        predicted.virtual_seconds.unwrap_or(0.0) / 3600.0,
        predicted.workers.len()
    );

    println!("\n(the paper reports ~2 h per billion-photon simulation on this pool)");
}
