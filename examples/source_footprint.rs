//! Compare the paper's three source footprints (delta, Gaussian, uniform)
//! in a highly scattering medium — the experiment behind the paper's
//! finding that "lasers do produce a small beam in a highly scattering
//! medium" while the footprint shapes the shallow distribution.
//!
//! Run: `cargo run --release --example source_footprint`

use lumen::analysis::profile::surface_beam_width;
use lumen::analysis::Projection2D;
use lumen::core::{Backend, Detector, GridSpec, Rayon, Scenario, SimulationOptions, Source, Vec3};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    let separation = 6.0;
    let spec =
        GridSpec::cubic(50, Vec3::new(-4.0, -4.0, 0.0), Vec3::new(separation + 4.0, 4.0, 9.0));

    println!(
        "{:<22} | {:>10} | {:>14} | {:>12}",
        "source", "detected", "surface width", "mean depth"
    );
    for source in [
        Source::Delta,
        Source::Gaussian { radius: 1.0 },
        Source::Gaussian { radius: 3.0 },
        Source::Uniform { radius: 1.0 },
        Source::Uniform { radius: 3.0 },
    ] {
        // The injected beam is measured on the absorption grid of ALL
        // photons; detected-only paths are biased toward the detector.
        let options = SimulationOptions { absorption_grid: Some(spec), ..Default::default() };
        let scenario =
            Scenario::new(homogeneous_white_matter(), source, Detector::new(separation, 1.0))
                .with_options(options)
                .with_photons(400_000)
                .with_seed(5);
        let res = Rayon::default().run(&scenario).expect("valid scenario");
        let proj = Projection2D::from_grid(res.tally.absorption_grid.as_ref().unwrap());
        let label = match source {
            Source::Delta => "delta (laser)".to_string(),
            Source::Gaussian { radius } => format!("gaussian r={radius} mm"),
            Source::Uniform { radius } => format!("uniform r={radius} mm"),
        };
        println!(
            "{:<22} | {:>10} | {:>11.2} mm | {:>9.2} mm",
            label,
            res.tally.detected,
            surface_beam_width(&proj, 5),
            res.mean_penetration_depth(),
        );
    }
    println!(
        "\nthe delta source keeps the narrowest surface beam; wider footprints \
         broaden the shallow distribution (the paper's Sect. 4 conclusion)"
    );
}
