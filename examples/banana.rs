//! The Fig 3 verification scenario: detected photon paths through
//! homogeneous white matter form a banana between source and detector.
//!
//! Run: `cargo run --release --example banana`

use lumen::analysis::{banana_metrics, render_ascii, threshold_fraction, Projection2D};
use lumen::core::{Backend, Detector, GridSpec, Rayon, Scenario, SimulationOptions, Source, Vec3};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    let separation = 6.0; // mm
    let granularity = 50; // the paper's 50^3

    let spec = GridSpec::cubic(
        granularity,
        Vec3::new(-3.0, -3.0, 0.0),
        Vec3::new(separation + 3.0, 3.0, 9.0),
    );
    let options =
        SimulationOptions { path_grid: Some(spec), record_paths: 3, ..Default::default() };

    let scenario =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(separation, 1.0))
            .with_options(options)
            .with_photons(1_000_000)
            .with_seed(7);

    let result = Rayon::default().run(&scenario).expect("valid scenario");
    println!(
        "detected {} of {} photons (mean path {:.1} mm over a {separation} mm gap)",
        result.tally.detected,
        result.launched(),
        result.mean_detected_pathlength()
    );

    let grid = result.tally.path_grid.as_ref().expect("path grid configured");
    let mut proj = Projection2D::from_grid(grid);
    threshold_fraction(&mut proj, 0.05);

    let metrics = banana_metrics(&proj, separation);
    println!(
        "banana check: deepest point at x = {:.1} mm (midpoint would be {:.1}), \
         max depth {:.1} mm, is_banana = {}",
        metrics.deepest_x,
        separation / 2.0,
        metrics.max_depth,
        metrics.is_banana(separation)
    );

    println!("\nthresholded visit density (x →, depth ↓):");
    print!("{}", render_ascii(&proj));

    if let Some(path) = result.sample_paths.first() {
        println!(
            "sample detected path: {} vertices, {:.1} mm, exits with weight {:.3}",
            path.vertices.len(),
            path.pathlength,
            path.exit_weight
        );
    }
}
