//! The Fig 3 verification scenario: detected photon paths through
//! homogeneous white matter form a banana between source and detector.
//!
//! Run: `cargo run --release --example banana`

use lumen::analysis::{banana_metrics, render_ascii, threshold_fraction, Projection2D};
use lumen::core::{
    Detector, GridSpec, ParallelConfig, Simulation, SimulationOptions, Source, Vec3,
};
use lumen::tissue::presets::homogeneous_white_matter;

fn main() {
    let separation = 6.0; // mm
    let granularity = 50; // the paper's 50^3

    let spec = GridSpec::cubic(
        granularity,
        Vec3::new(-3.0, -3.0, 0.0),
        Vec3::new(separation + 3.0, 3.0, 9.0),
    );
    let mut options = SimulationOptions::default();
    options.path_grid = Some(spec);
    options.record_paths = 3;

    let sim =
        Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(separation, 1.0))
            .with_options(options);

    let result = lumen::core::run_parallel(&sim, 1_000_000, ParallelConfig::new(7));
    println!(
        "detected {} of {} photons (mean path {:.1} mm over a {separation} mm gap)",
        result.tally.detected,
        result.launched(),
        result.mean_detected_pathlength()
    );

    let grid = result.tally.path_grid.as_ref().expect("path grid configured");
    let mut proj = Projection2D::from_grid(grid);
    threshold_fraction(&mut proj, 0.05);

    let metrics = banana_metrics(&proj, separation);
    println!(
        "banana check: deepest point at x = {:.1} mm (midpoint would be {:.1}), \
         max depth {:.1} mm, is_banana = {}",
        metrics.deepest_x,
        separation / 2.0,
        metrics.max_depth,
        metrics.is_banana(separation)
    );

    println!("\nthresholded visit density (x →, depth ↓):");
    print!("{}", render_ascii(&proj));

    if let Some(path) = result.sample_paths.first() {
        println!(
            "sample detected path: {} vertices, {:.1} mm, exits with weight {:.3}",
            path.vertices.len(),
            path.pathlength,
            path.exit_weight
        );
    }
}
