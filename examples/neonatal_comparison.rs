//! Adult vs neonatal head models — the paper's Sect. 2 motivates Monte
//! Carlo by "the effect of the superficial tissue thickness, which differs
//! between adult and neonates" (after Fukui, Ajichi & Okada, the paper's
//! reference \[1\]). The neonate's thin scalp/skull lets the same optode
//! spacing probe much deeper brain tissue.
//!
//! Run: `cargo run --release --example neonatal_comparison`

use lumen::core::{Backend, Detector, Rayon, Scenario, Source};
use lumen::tissue::presets::{adult_head, neonatal_head, AdultHeadConfig};

fn main() {
    let photons = 400_000;
    let separation = 25.0;

    println!("adult vs neonatal head at a {separation} mm optode spacing:");
    println!(
        "\n{:<10} | {:>9} | {:>12} | {:>12} | {:>10} | {:>10}",
        "model", "detected", "mean path", "mean depth", "reach grey", "reach WM"
    );

    for (label, tissue) in
        [("adult", adult_head(AdultHeadConfig::default())), ("neonatal", neonatal_head())]
    {
        let superficial = tissue.layers()[0].thickness() + tissue.layers()[1].thickness();
        let scenario = Scenario::new(tissue, Source::Delta, Detector::ring(separation, 2.0))
            .with_photons(photons)
            .with_seed(19);
        let res = Rayon::default().run(&scenario).expect("valid scenario");
        println!(
            "{:<10} | {:>9} | {:>9.0} mm | {:>9.1} mm | {:>9.2}% | {:>9.2}%   (scalp+skull: {superficial:.1} mm)",
            label,
            res.tally.detected,
            res.mean_detected_pathlength(),
            res.mean_penetration_depth(),
            res.detected_reached_layer_fraction(3) * 100.0,
            res.detected_reached_layer_fraction(4) * 100.0,
        );
    }

    println!(
        "\nthe neonate's thin superficial layers let detected light reach the \
         cortex far more readily — why neonatal NIRS works so well (Fukui et al.)"
    );
}
