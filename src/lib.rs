//! # lumen — layered-tissue Monte Carlo photon transport on a master/worker cluster
//!
//! This facade crate re-exports the full public API of the workspace.
//! The two pillars (after the reproduced paper) are:
//!
//! * a variance-reduced Monte Carlo **photon-transport engine** for
//!   layered tissue — [`mcrng`] (deterministic splittable RNG streams),
//!   [`photon`] (hop/drop/spin/boundary/roulette physics), [`tissue`]
//!   (layered geometry and head-model presets), [`core`] (the simulation
//!   loop, tallies, and the shared-memory parallel driver), and
//!   [`analysis`] (figures, profiles, statistics); and
//! * a **non-dedicated master/worker platform** — [`cluster`] — that runs
//!   the same physics through a real threaded executor, over TCP, or under
//!   a discrete-event simulator that regenerates the paper's speedup
//!   curves for machine pools you don't own.
//!
//! ## Quickstart
//!
//! Simulate near-infrared photons through a semi-infinite phantom and read
//! off reflectance, deterministically for a fixed seed:
//!
//! ```rust
//! use lumen::core::{run_parallel, Detector, ParallelConfig, Simulation, Source};
//! use lumen::tissue::presets::semi_infinite_phantom;
//!
//! // mu_a = 0.1/mm, mu_s = 10/mm, isotropic scattering, matched index.
//! let tissue = semi_infinite_phantom(0.1, 10.0, 0.0, 1.0);
//! let sim = Simulation::new(tissue, Source::Delta, Detector::new(2.0, 0.5));
//!
//! let config = ParallelConfig { seed: 42, tasks: 8 };
//! let result = run_parallel(&sim, 5_000, config);
//!
//! assert_eq!(result.launched(), 5_000);
//! // Same (seed, tasks) => bit-identical tallies, on any thread count.
//! assert_eq!(run_parallel(&sim, 5_000, config).tally, result.tally);
//! // Something must come back out of a scattering half-space.
//! assert!(result.diffuse_reflectance() > 0.0);
//! ```
//!
//! The same experiment distributed over the threaded master/worker engine
//! (failure injection and all) is
//! [`cluster::executor::run_distributed`]; `examples/` in the repository
//! walks through every paper scenario, starting with
//! `cargo run --release --example quickstart`.

pub use lumen_analysis as analysis;
pub use lumen_cluster as cluster;
pub use lumen_core as core;
pub use lumen_photon as photon;
pub use lumen_tissue as tissue;
pub use mcrng;
