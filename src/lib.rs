//! Lumen facade crate: re-exports the full public API.
pub use lumen_analysis as analysis;
pub use lumen_cluster as cluster;
pub use lumen_core as core;
pub use lumen_photon as photon;
pub use lumen_tissue as tissue;
pub use mcrng;
