//! # lumen — layered-tissue Monte Carlo photon transport on a master/worker cluster
//!
//! This facade crate re-exports the full public API of the workspace.
//! The two pillars (after the reproduced paper) are:
//!
//! * a variance-reduced Monte Carlo **photon-transport engine** for
//!   layered tissue — [`mcrng`] (deterministic splittable RNG streams),
//!   [`photon`] (hop/drop/spin/boundary/roulette physics), [`tissue`]
//!   (layered geometry and head-model presets), [`core`] (the simulation
//!   loop, tallies, and the shared-memory parallel driver), and
//!   [`analysis`] (figures, profiles, statistics); and
//! * a **non-dedicated master/worker platform** — [`cluster`] — that runs
//!   the same physics through a real threaded executor, over TCP, or under
//!   a discrete-event simulator that regenerates the paper's speedup
//!   curves for machine pools you don't own.
//!
//! ## Quickstart
//!
//! Describe the experiment once as a [`core::Scenario`], then run it on
//! any [`core::Backend`] — every backend returns bit-identical tallies
//! for the same scenario:
//!
//! ```rust
//! use lumen::core::{Backend, Detector, Rayon, Scenario, Sequential, Source};
//! use lumen::tissue::presets::semi_infinite_phantom;
//!
//! // mu_a = 0.1/mm, mu_s = 10/mm, isotropic scattering, matched index.
//! let scenario = Scenario::new(
//!     semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
//!     Source::Delta,
//!     Detector::new(2.0, 0.5),
//! )
//! .with_photons(5_000)
//! .with_tasks(8)
//! .with_seed(42);
//!
//! let report = Rayon::default().run(&scenario).unwrap();
//! assert_eq!(report.launched(), 5_000);
//! // Same scenario => bit-identical tallies, on any backend.
//! let sequential = Sequential.run(&scenario).unwrap();
//! assert_eq!(sequential.result.tally, report.result.tally);
//! // Something must come back out of a scattering half-space.
//! assert!(report.diffuse_reflectance() > 0.0);
//! ```
//!
//! The same scenario distributed over the threaded master/worker engine
//! (failure injection and all) is `lumen::cluster::ThreadedCluster`; the
//! TCP deployment is `lumen::cluster::Tcp`, and the discrete-event
//! cluster simulator is `lumen::cluster::SimulatedCluster`. `examples/`
//! in the repository walks through every paper scenario, starting with
//! `cargo run --release --example quickstart`.
//!
//! To keep results *between* invocations, [`service`] wraps any backend
//! in the `lumend` daemon: scenario requests are answered from a
//! content-addressed result cache, and a request for more photons of
//! already-cached physics is topped up incrementally on fresh RNG
//! substreams, bit-identical to a cold full-budget run.

pub use lumen_analysis as analysis;
pub use lumen_cluster as cluster;
pub use lumen_core as core;
pub use lumen_photon as photon;
pub use lumen_service as service;
pub use lumen_tissue as tissue;
pub use mcrng;
