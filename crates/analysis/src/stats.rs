//! Histograms and summary statistics for photon-path observables
//! (pathlength distributions, penetration depths, batch throughput).

use serde::{Deserialize, Serialize};

/// Fixed-bin histogram over `[min, max)` with under/overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    pub counts: Vec<u64>,
    pub underflow: u64,
    pub overflow: u64,
    /// Running sums for moments.
    sum: f64,
    sum_sq: f64,
    n: u64,
}

impl Histogram {
    /// A histogram with `bins` bins over `[min, max)`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(max > min, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            min,
            max,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
            sum_sq: 0.0,
            n: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.sum_sq += x * x;
        self.n += 1;
        if x < self.min {
            self.underflow += 1;
        } else if x >= self.max {
            self.overflow += 1;
        } else {
            let n_bins = self.counts.len();
            let bin = ((x - self.min) / (self.max - self.min) * n_bins as f64) as usize;
            self.counts[bin.min(n_bins - 1)] += 1;
        }
    }

    /// Number of recorded samples (including under/overflow).
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Sample standard deviation (population form).
    pub fn std(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0).sqrt()
    }

    /// Centre of bin `i`.
    pub fn bin_centre(&self, i: usize) -> f64 {
        let w = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * w
    }

    /// Approximate quantile from binned counts (ignores under/overflow).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return self.min;
        }
        let target = (q * in_range as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bin_centre(i);
            }
        }
        self.bin_centre(self.counts.len() - 1)
    }

    /// Merge another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min, other.min, "histogram min mismatch");
        assert_eq!(self.max, other.max, "histogram max mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bin mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.9);
        h.record(5.0);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.counts[5], 1);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // max is exclusive
        h.record(2.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn moments() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [2.0, 4.0, 6.0, 8.0] {
            h.record(x);
        }
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!((h.std() - 5.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn quantile_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5);
        assert!((med - 49.5).abs() <= 1.0, "median {med}");
    }

    #[test]
    fn merge_adds_counts_and_moments() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(9.0);
        b.record(-5.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.underflow, 1);
        assert!((a.mean() - (1.0 + 9.0 - 5.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin mismatch")]
    fn merge_rejects_different_binning() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_stats() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    proptest! {
        #[test]
        fn total_count_is_conserved(xs in proptest::collection::vec(-10.0f64..20.0, 0..200)) {
            let mut h = Histogram::new(0.0, 10.0, 7);
            for &x in &xs { h.record(x); }
            let binned: u64 = h.counts.iter().sum();
            prop_assert_eq!(binned + h.underflow + h.overflow, xs.len() as u64);
        }

        #[test]
        fn mean_matches_direct_computation(xs in proptest::collection::vec(0.0f64..10.0, 1..100)) {
            let mut h = Histogram::new(0.0, 10.0, 10);
            for &x in &xs { h.record(x); }
            let direct: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((h.mean() - direct).abs() < 1e-9);
        }
    }
}
