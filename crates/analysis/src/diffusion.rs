//! Diffusion-approximation baseline.
//!
//! The paper (Sect. 2, citing Profio \[6\]) frames Monte Carlo as the
//! numerical solution of the radiative transport equation, with the
//! *diffusion approximation* as the standard analytical alternative. This
//! module implements the Farrell–Patterson–Wilson dipole solution for the
//! spatially resolved diffuse reflectance `R(ρ)` of a semi-infinite
//! homogeneous medium under a pencil beam — the baseline the Monte Carlo
//! engine is validated against (and the model whose breakdown near the
//! source and in low-scattering layers like the CSF motivates using MC at
//! all).
//!
//! Reference: T. J. Farrell, M. S. Patterson, B. Wilson, "A diffusion
//! theory model of spatially resolved, steady-state diffuse reflectance",
//! Med. Phys. 19(4), 1992.

use serde::{Deserialize, Serialize};

/// Semi-infinite medium parameters for the dipole model.
///
/// ```
/// use lumen_analysis::DiffusionModel;
/// let model = DiffusionModel::new(0.01, 1.0, 1.0); // mu_a, mu_s', n_rel
/// let near = model.reflectance(1.0);
/// let far = model.reflectance(10.0);
/// assert!(near > far); // reflectance decays with radius
/// assert!((model.mu_eff() - (3.0f64 * 0.01 * 1.01).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionModel {
    /// Absorption coefficient μa (mm⁻¹).
    pub mu_a: f64,
    /// Reduced scattering coefficient μs′ (mm⁻¹).
    pub mu_s_prime: f64,
    /// Relative refractive index n_tissue / n_ambient.
    pub n_rel: f64,
}

impl DiffusionModel {
    /// Construct and validate.
    pub fn new(mu_a: f64, mu_s_prime: f64, n_rel: f64) -> Self {
        assert!(mu_a > 0.0 && mu_a.is_finite(), "mu_a must be positive");
        assert!(mu_s_prime > 0.0 && mu_s_prime.is_finite(), "mu_s' must be positive");
        assert!(n_rel >= 1.0, "n_rel must be >= 1");
        Self { mu_a, mu_s_prime, n_rel }
    }

    /// Transport coefficient μt′ = μa + μs′ (mm⁻¹).
    #[inline]
    pub fn mu_t_prime(&self) -> f64 {
        self.mu_a + self.mu_s_prime
    }

    /// Diffusion coefficient D = 1 / (3 μt′) (mm).
    #[inline]
    pub fn diffusion_coefficient(&self) -> f64 {
        1.0 / (3.0 * self.mu_t_prime())
    }

    /// Effective attenuation coefficient μeff = √(3 μa μt′) (mm⁻¹).
    #[inline]
    pub fn mu_eff(&self) -> f64 {
        (3.0 * self.mu_a * self.mu_t_prime()).sqrt()
    }

    /// Depth of the isotropic point source, z₀ = 1/μt′ (mm).
    #[inline]
    pub fn z0(&self) -> f64 {
        1.0 / self.mu_t_prime()
    }

    /// Internal-reflection parameter A from Groenhuis' empirical fit,
    /// A = (1 + r_d) / (1 − r_d) with
    /// r_d ≈ −1.440 n⁻² + 0.710 n⁻¹ + 0.668 + 0.0636 n.
    pub fn internal_reflection_parameter(&self) -> f64 {
        let n = self.n_rel;
        if (n - 1.0).abs() < 1e-12 {
            return 1.0;
        }
        let r_d = -1.440 / (n * n) + 0.710 / n + 0.668 + 0.0636 * n;
        (1.0 + r_d) / (1.0 - r_d)
    }

    /// Extrapolated-boundary offset z_b = 2 A D (mm).
    #[inline]
    pub fn zb(&self) -> f64 {
        2.0 * self.internal_reflection_parameter() * self.diffusion_coefficient()
    }

    /// Spatially resolved diffuse reflectance R(ρ) per launched photon per
    /// mm², Farrell et al.'s dipole expression.
    pub fn reflectance(&self, rho: f64) -> f64 {
        assert!(rho >= 0.0);
        let z0 = self.z0();
        let zb = self.zb();
        let mu_eff = self.mu_eff();

        // Source and image distances to the surface point at radius ρ.
        let r1 = (z0 * z0 + rho * rho).sqrt();
        let z_img = z0 + 2.0 * zb;
        let r2 = (z_img * z_img + rho * rho).sqrt();

        let term =
            |z: f64, r: f64| -> f64 { z * (mu_eff + 1.0 / r) * (-mu_eff * r).exp() / (r * r) };
        (term(z0, r1) + term(z_img, r2)) / (4.0 * std::f64::consts::PI)
    }

    /// Predicted slope of ln(ρ² R(ρ)) at large ρ: −μeff. Useful for
    /// comparing shapes without absolute normalisation.
    pub fn asymptotic_slope(&self) -> f64 {
        -self.mu_eff()
    }
}

/// Fit the decay rate of `ln(rho^2 * R)` vs `rho` by least squares over
/// the given points — used to compare a Monte Carlo R(r) against
/// [`DiffusionModel::asymptotic_slope`]. Points with non-positive `r_val`
/// are skipped. Returns `None` when fewer than two usable points remain.
pub fn fit_log_slope(rhos: &[f64], r_vals: &[f64]) -> Option<f64> {
    assert_eq!(rhos.len(), r_vals.len());
    let pts: Vec<(f64, f64)> = rhos
        .iter()
        .zip(r_vals)
        .filter(|&(_, &v)| v > 0.0)
        .map(|(&rho, &v)| (rho, (rho * rho * v).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiffusionModel {
        // White-matter-like: mu_a = 0.014, mu_s' = 9.1, matched boundary.
        DiffusionModel::new(0.014, 9.1, 1.0)
    }

    #[test]
    fn derived_quantities() {
        let m = model();
        assert!((m.mu_t_prime() - 9.114).abs() < 1e-12);
        assert!((m.diffusion_coefficient() - 1.0 / (3.0 * 9.114)).abs() < 1e-12);
        let mu_eff = (3.0f64 * 0.014 * 9.114).sqrt();
        assert!((m.mu_eff() - mu_eff).abs() < 1e-12);
    }

    #[test]
    fn matched_boundary_has_a_equal_one() {
        assert!((model().internal_reflection_parameter() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_boundary_increases_a() {
        let m = DiffusionModel::new(0.014, 9.1, 1.4);
        assert!(m.internal_reflection_parameter() > 2.0);
    }

    #[test]
    fn reflectance_is_positive_and_decreasing() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 1..50 {
            let rho = i as f64 * 0.5;
            let r = m.reflectance(rho);
            assert!(r > 0.0, "R({rho}) = {r}");
            assert!(r < prev, "R must decrease with rho");
            prev = r;
        }
    }

    #[test]
    fn asymptotic_slope_matches_numerical_decay() {
        let m = model();
        // Evaluate ln(rho^2 R) far from the source and compare slopes.
        let rhos: Vec<f64> = (20..60).map(|i| i as f64 * 0.5).collect();
        let rs: Vec<f64> = rhos.iter().map(|&r| m.reflectance(r)).collect();
        let slope = fit_log_slope(&rhos, &rs).expect("fit");
        assert!(
            (slope - m.asymptotic_slope()).abs() < 0.05 * m.mu_eff(),
            "fitted {slope}, predicted {}",
            m.asymptotic_slope()
        );
    }

    #[test]
    fn fit_log_slope_recovers_synthetic_decay() {
        // R(rho) = exp(-k rho) / rho^2 has ln(rho^2 R) = -k rho exactly.
        let k = 0.7;
        let rhos: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let rs: Vec<f64> = rhos.iter().map(|&r| (-k * r).exp() / (r * r)).collect();
        let slope = fit_log_slope(&rhos, &rs).expect("fit");
        assert!((slope + k).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn fit_log_slope_edge_cases() {
        assert!(fit_log_slope(&[], &[]).is_none());
        assert!(fit_log_slope(&[1.0], &[0.5]).is_none());
        assert!(fit_log_slope(&[1.0, 2.0], &[0.0, 0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "mu_a must be positive")]
    fn rejects_zero_absorption() {
        let _ = DiffusionModel::new(0.0, 1.0, 1.0);
    }
}
