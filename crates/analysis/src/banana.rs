//! Quantitative banana-shape analysis (the paper's Fig 3 verification).
//!
//! "Fig. 3 shows the most common paths taken by the photons, after
//! thresholding. The most common paths form a banana shape, as expected."
//!
//! We turn "as expected" into measurable properties of the thresholded
//! x–z distribution of detected photon paths:
//!
//! 1. the distribution is anchored at the source (x ≈ 0) and the detector
//!    (x ≈ separation) at the surface;
//! 2. the deepest part of the distribution lies between source and
//!    detector (near the midpoint), not under either endpoint — the
//!    signature arch of the banana;
//! 3. the bulk of visit weight lies at intermediate depth: the mean depth
//!    of the distribution is positive but shallow relative to the
//!    separation.

use crate::projection::Projection2D;
use serde::{Deserialize, Serialize};

/// Measured shape descriptors of a (possibly thresholded) x–z field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BananaMetrics {
    /// Weight-mean depth (mm).
    pub mean_depth: f64,
    /// Depth of the deepest non-zero cell (mm).
    pub max_depth: f64,
    /// x position (mm) of the column with the deepest non-zero cell.
    pub deepest_x: f64,
    /// Surface (shallowest-row) weight near the source vs total surface
    /// weight — anchoring at x≈0.
    pub source_anchor: f64,
    /// Same for the detector end.
    pub detector_anchor: f64,
    /// Weight-mean x (mm).
    pub mean_x: f64,
}

/// Compute shape metrics for a field produced by a simulation with the
/// source at x = 0 and detector at x = `separation`.
pub fn banana_metrics(field: &Projection2D, separation: f64) -> BananaMetrics {
    let mut w_total = 0.0;
    let mut depth_sum = 0.0;
    let mut x_sum = 0.0;
    let mut max_depth = 0.0f64;
    let mut deepest_x = 0.0;

    for iz in 0..field.nz {
        let z = field.z_of(iz);
        for ix in 0..field.nx {
            let w = field.at(ix, iz);
            if w <= 0.0 {
                continue;
            }
            w_total += w;
            depth_sum += w * z;
            x_sum += w * field.x_of(ix);
            if z > max_depth {
                max_depth = z;
                deepest_x = field.x_of(ix);
            }
        }
    }

    // Surface anchoring: weight in the top row near each endpoint
    // (within separation/4 of it) as a fraction of the top row's weight.
    let mut top_total = 0.0;
    let mut top_source = 0.0;
    let mut top_detector = 0.0;
    let margin = (separation / 4.0).max(1e-9);
    for ix in 0..field.nx {
        let w = field.at(ix, 0);
        if w <= 0.0 {
            continue;
        }
        let x = field.x_of(ix);
        top_total += w;
        if (x - 0.0).abs() <= margin {
            top_source += w;
        }
        if (x - separation).abs() <= margin {
            top_detector += w;
        }
    }

    BananaMetrics {
        mean_depth: if w_total > 0.0 { depth_sum / w_total } else { 0.0 },
        max_depth,
        deepest_x,
        source_anchor: if top_total > 0.0 { top_source / top_total } else { 0.0 },
        detector_anchor: if top_total > 0.0 { top_detector / top_total } else { 0.0 },
        mean_x: if w_total > 0.0 { x_sum / w_total } else { 0.0 },
    }
}

impl BananaMetrics {
    /// Does this distribution satisfy the banana criteria for a
    /// source–detector pair at the given separation?
    pub fn is_banana(&self, separation: f64) -> bool {
        // Arch: the deepest point sits strictly between the endpoints.
        let arch = self.deepest_x > 0.05 * separation && self.deepest_x < 0.95 * separation;
        // Anchors: the surface weight concentrates near the endpoints.
        let anchored = self.source_anchor + self.detector_anchor > 0.5;
        // Non-degenerate depth.
        let has_depth = self.max_depth > 0.0 && self.mean_depth > 0.0;
        arch && anchored && has_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic ideal banana: a semicircular arc from (0,0) to
    /// (sep,0).
    fn synthetic_banana(sep: f64, nx: usize, nz: usize) -> Projection2D {
        let mut f = Projection2D {
            nx,
            nz,
            x_min: -sep * 0.25,
            x_max: sep * 1.25,
            z_min: 0.0,
            z_max: sep,
            values: vec![0.0; nx * nz],
        };
        let r = sep / 2.0;
        for t in 0..=100 {
            let theta = std::f64::consts::PI * t as f64 / 100.0;
            let x = r - r * theta.cos();
            let z = r * theta.sin() * 0.6; // flattened arc
            let ix = f.ix_of(x);
            let iz = ((z / f.z_max) * nz as f64).min(nz as f64 - 1.0) as usize;
            *f.at_mut(ix, iz) += 1.0;
        }
        f
    }

    #[test]
    fn synthetic_banana_is_recognised() {
        let sep = 20.0;
        let f = synthetic_banana(sep, 50, 50);
        let m = banana_metrics(&f, sep);
        assert!(m.is_banana(sep), "{m:?}");
        // Deepest point near the midpoint.
        assert!((m.deepest_x - sep / 2.0).abs() < sep * 0.2, "{m:?}");
    }

    #[test]
    fn straight_beam_is_not_a_banana() {
        // A vertical column under the source: no arch, no detector anchor.
        let mut f = Projection2D {
            nx: 50,
            nz: 50,
            x_min: -5.0,
            x_max: 25.0,
            z_min: 0.0,
            z_max: 30.0,
            values: vec![0.0; 2500],
        };
        let ix = f.ix_of(0.0);
        for iz in 0..50 {
            *f.at_mut(ix, iz) = 1.0;
        }
        let m = banana_metrics(&f, 20.0);
        assert!(!m.is_banana(20.0), "{m:?}");
    }

    #[test]
    fn empty_field_metrics_are_zero() {
        let f = Projection2D {
            nx: 10,
            nz: 10,
            x_min: 0.0,
            x_max: 1.0,
            z_min: 0.0,
            z_max: 1.0,
            values: vec![0.0; 100],
        };
        let m = banana_metrics(&f, 1.0);
        assert_eq!(m.mean_depth, 0.0);
        assert_eq!(m.max_depth, 0.0);
        assert!(!m.is_banana(1.0));
    }

    #[test]
    fn mean_x_sits_between_endpoints_for_banana() {
        let sep = 30.0;
        let f = synthetic_banana(sep, 60, 60);
        let m = banana_metrics(&f, sep);
        assert!(m.mean_x > 0.0 && m.mean_x < sep, "{m:?}");
    }
}
