//! Terminal and file renderers for 2-D fields.
//!
//! `render_ascii` produces the figures in the examples' terminal output
//! (log-scaled density → character ramp); `write_pgm` writes a portable
//! graymap any image viewer can open, for the benchmark harness to save
//! Fig 3/4 equivalents.

use crate::projection::Projection2D;
use std::io::Write;
use std::path::Path;

/// Character ramp from empty to dense.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render the field as ASCII art, one text row per z row (depth grows
/// downward, like the paper's figures). Density is log-compressed so the
/// banana's faint wings stay visible next to the bright source column.
pub fn render_ascii(field: &Projection2D) -> String {
    let max = field.max_value();
    let mut out = String::with_capacity((field.nx + 1) * field.nz);
    if max <= 0.0 {
        for _ in 0..field.nz {
            out.extend(std::iter::repeat_n(' ', field.nx));
            out.push('\n');
        }
        return out;
    }
    let log_max = (1.0 + max).ln();
    for iz in 0..field.nz {
        for ix in 0..field.nx {
            let v = field.at(ix, iz);
            let t = if v <= 0.0 { 0.0 } else { (1.0 + v).ln() / log_max };
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Write the field as an 8-bit binary PGM (P5), log-scaled like the ASCII
/// renderer.
pub fn write_pgm(field: &Projection2D, path: &Path) -> std::io::Result<()> {
    let max = field.max_value();
    let log_max = if max > 0.0 { (1.0 + max).ln() } else { 1.0 };
    let mut bytes = Vec::with_capacity(field.nx * field.nz);
    for iz in 0..field.nz {
        for ix in 0..field.nx {
            let v = field.at(ix, iz);
            let t = if v <= 0.0 { 0.0 } else { (1.0 + v).ln() / log_max };
            bytes.push((t * 255.0).round() as u8);
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P5")?;
    writeln!(f, "{} {}", field.nx, field.nz)?;
    writeln!(f, "255")?;
    f.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Projection2D {
        let mut f = Projection2D {
            nx: 4,
            nz: 3,
            x_min: 0.0,
            x_max: 4.0,
            z_min: 0.0,
            z_max: 3.0,
            values: vec![0.0; 12],
        };
        *f.at_mut(1, 1) = 100.0;
        *f.at_mut(2, 2) = 1.0;
        f
    }

    #[test]
    fn ascii_has_right_shape() {
        let s = render_ascii(&field());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 4));
    }

    #[test]
    fn ascii_brightest_at_max() {
        let s = render_ascii(&field());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].as_bytes()[1], b'@');
        assert_eq!(lines[0].as_bytes()[0], b' ');
    }

    #[test]
    fn ascii_empty_field_is_blank() {
        let f = Projection2D {
            nx: 3,
            nz: 2,
            x_min: 0.0,
            x_max: 1.0,
            z_min: 0.0,
            z_max: 1.0,
            values: vec![0.0; 6],
        };
        let s = render_ascii(&f);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn pgm_round_trip_header() {
        let dir = std::env::temp_dir().join("lumen_test_pgm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        write_pgm(&field(), &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&data[..11]);
        assert!(text.starts_with("P5\n4 3\n255"), "{text}");
        // 12 pixel bytes after the header.
        assert_eq!(data.len(), data.len() - 12 + 12);
        std::fs::remove_file(&path).ok();
    }
}
