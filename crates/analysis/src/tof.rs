//! Time-of-flight analysis.
//!
//! The engine gates and records *pathlengths*; in a time-resolved
//! experiment the measured variable is the photon arrival time. The two
//! are related by `t = L · n / c`: pathlength L in the medium of
//! refractive index n. These helpers convert between the two and build
//! temporal point-spread functions (TPSFs) from pathlength histograms, so
//! the paper's "gated differential pathlengths" can be expressed in
//! picoseconds, the unit a pulsed NIRS instrument actually gates in.

use crate::stats::Histogram;
use lumen_core::archive::{PathArchive, CLASS_DETECTED};

/// Speed of light in vacuum (mm / ps).
pub const C_MM_PER_PS: f64 = 0.299_792_458;

/// Time (ps) for a photon to travel `pathlength_mm` in a medium of
/// refractive index `n`.
#[inline]
pub fn pathlength_to_time_ps(pathlength_mm: f64, n: f64) -> f64 {
    pathlength_mm * n / C_MM_PER_PS
}

/// Pathlength (mm) corresponding to an arrival time (ps) in a medium of
/// refractive index `n`.
#[inline]
pub fn time_to_pathlength_mm(time_ps: f64, n: f64) -> f64 {
    time_ps * C_MM_PER_PS / n
}

/// Convert a pathlength histogram (mm) into a TPSF histogram (ps) for a
/// medium of refractive index `n`. Bin counts are preserved; only the
/// axis is rescaled (the map is linear, so bins stay uniform).
pub fn tpsf_from_pathlengths(pathlength_hist: &Histogram, n: f64) -> Histogram {
    let mut out = Histogram::new(
        pathlength_to_time_ps(pathlength_hist.min, n),
        pathlength_to_time_ps(pathlength_hist.max, n),
        pathlength_hist.counts.len(),
    );
    // Re-record at bin centres to keep moments consistent on the new axis.
    for (i, &count) in pathlength_hist.counts.iter().enumerate() {
        let t = pathlength_to_time_ps(pathlength_hist.bin_centre(i), n);
        for _ in 0..count {
            out.record(t);
        }
    }
    out
}

/// Mean arrival time (ps) implied by a mean pathlength (mm).
#[inline]
pub fn mean_time_of_flight_ps(mean_pathlength_mm: f64, n: f64) -> f64 {
    pathlength_to_time_ps(mean_pathlength_mm, n)
}

/// Arrival time (ps) of one archived entry, summed region by region:
/// `t = Σ_r L_r · n_r / c`. A path archive keeps per-region partial
/// pathlengths, so the TPSF can honour each region's refractive index
/// instead of assuming one effective `n` for the whole path — in a
/// layered head model the CSF and scalp travel at different speeds.
pub fn arrival_time_ps(archive: &PathArchive, entry: usize) -> f64 {
    let row = entry * archive.regions;
    (0..archive.regions)
        .map(|r| pathlength_to_time_ps(archive.partial_path[row + r], archive.base[r].n))
        .sum()
}

/// Build a TPSF histogram (ps) directly from a path archive's detected
/// entries, using per-region optical times ([`arrival_time_ps`]). Bins
/// span `[0, max_ps)`; one count per detected photon, like the engine's
/// own `PathHistogram`.
pub fn tof_from_archive(archive: &PathArchive, max_ps: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(0.0, max_ps, bins);
    for i in 0..archive.len() {
        if archive.class[i] == CLASS_DETECTED {
            h.record(arrival_time_ps(archive, i));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_conversion() {
        for l in [1.0, 10.0, 123.4] {
            let t = pathlength_to_time_ps(l, 1.4);
            assert!((time_to_pathlength_mm(t, 1.4) - l).abs() < 1e-9);
        }
    }

    #[test]
    fn physical_sanity() {
        // 300 mm in vacuum-index medium ≈ 1 ns.
        let t = pathlength_to_time_ps(299.792_458, 1.0);
        assert!((t - 1000.0).abs() < 1e-6);
        // Higher index means slower light, longer time.
        assert!(pathlength_to_time_ps(100.0, 1.4) > pathlength_to_time_ps(100.0, 1.0));
    }

    #[test]
    fn tpsf_preserves_counts() {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for l in [5.0, 15.0, 15.0, 55.0, 99.0] {
            h.record(l);
        }
        let tpsf = tpsf_from_pathlengths(&h, 1.4);
        assert_eq!(tpsf.len(), 5);
        assert_eq!(tpsf.counts.iter().sum::<u64>(), h.counts.iter().sum::<u64>());
    }

    #[test]
    fn tpsf_axis_is_scaled() {
        let h = Histogram::new(0.0, 100.0, 10);
        let tpsf = tpsf_from_pathlengths(&h, 1.4);
        assert!((tpsf.max - pathlength_to_time_ps(100.0, 1.4)).abs() < 1e-9);
        assert_eq!(tpsf.min, 0.0);
    }

    #[test]
    fn mean_tof_matches_conversion() {
        assert_eq!(mean_time_of_flight_ps(50.0, 1.4), pathlength_to_time_ps(50.0, 1.4));
    }

    fn two_region_archive() -> PathArchive {
        use lumen_core::{OpticalProperties, RecordOptions};
        let base = vec![
            OpticalProperties::new(0.05, 10.0, 0.9, 1.4),
            OpticalProperties::new(0.02, 15.0, 0.9, 1.3),
        ];
        let mut a = PathArchive::new(2, base, RecordOptions::default());
        a.on_launch(0.0);
        a.push(CLASS_DETECTED, 0.8, 1.0, 100.0, 5.0, 10, &[60.0, 40.0], &[6, 4], &[true, true]);
        a.on_launch(0.0);
        // A reflected (undetected) entry must not enter the TPSF.
        a.push(0, 0.5, 9.0, 10.0, 1.0, 2, &[10.0, 0.0], &[2, 0], &[true, false]);
        a
    }

    #[test]
    fn archive_arrival_time_honours_per_region_index() {
        let a = two_region_archive();
        let expected = pathlength_to_time_ps(60.0, 1.4) + pathlength_to_time_ps(40.0, 1.3);
        assert!((arrival_time_ps(&a, 0) - expected).abs() < 1e-12);
        // Faster than pricing the whole path at the denser region's index…
        assert!(arrival_time_ps(&a, 0) < pathlength_to_time_ps(100.0, 1.4));
        // …and slower than at the lighter one.
        assert!(arrival_time_ps(&a, 0) > pathlength_to_time_ps(100.0, 1.3));
    }

    #[test]
    fn archive_tpsf_counts_only_detections() {
        let a = two_region_archive();
        let tpsf = tof_from_archive(&a, 1000.0, 50);
        assert_eq!(tpsf.len(), 1);
        assert!((tpsf.mean() - arrival_time_ps(&a, 0)).abs() < 1e-12);
    }
}
