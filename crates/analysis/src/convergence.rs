//! Monte Carlo convergence and error estimation.
//!
//! The paper runs 10⁹ photons because "to generate useful results billions
//! of photon paths must be simulated" — this module quantifies that: given
//! independent batch results (which the task decomposition hands us for
//! free), it estimates the standard error of any tally and predicts how
//! many photons a target precision requires, via the standard
//! batch-means construction.

use serde::{Deserialize, Serialize};

/// Batch-means estimate for one scalar observable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Mean of the per-batch values.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Relative error (std_error / |mean|); `f64::INFINITY` if mean is 0.
    pub relative_error: f64,
    /// Number of batches used.
    pub batches: usize,
}

/// Estimate the mean and its standard error from independent per-batch
/// values (e.g. detected weight per photon from each task).
pub fn batch_means(values: &[f64]) -> Option<ErrorEstimate> {
    let n = values.len();
    if n < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0);
    let std_error = (var / n as f64).sqrt();
    let relative_error = if mean != 0.0 { std_error / mean.abs() } else { f64::INFINITY };
    Some(ErrorEstimate { mean, std_error, relative_error, batches: n })
}

/// Photons needed to reach `target_rel_error`, extrapolating 1/√N scaling
/// from an observed `(photons, relative_error)` point. This is how the
/// "billions of photons" requirement is derived from a pilot run.
pub fn photons_for_relative_error(
    pilot_photons: u64,
    pilot_rel_error: f64,
    target_rel_error: f64,
) -> u64 {
    assert!(pilot_photons > 0);
    assert!(pilot_rel_error > 0.0 && pilot_rel_error.is_finite());
    assert!(target_rel_error > 0.0);
    let factor = (pilot_rel_error / target_rel_error).powi(2);
    (pilot_photons as f64 * factor).ceil() as u64
}

/// Running (Welford) accumulator for streaming convergence monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge two accumulators (Chan's parallel update) — used when worker
    /// batches each kept their own running stats.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batch_means_basic() {
        let est = batch_means(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((est.mean - 2.5).abs() < 1e-12);
        // var = 5/3, se = sqrt(5/12)
        assert!((est.std_error - (5.0f64 / 12.0).sqrt()).abs() < 1e-12);
        assert_eq!(est.batches, 4);
    }

    #[test]
    fn batch_means_needs_two() {
        assert!(batch_means(&[]).is_none());
        assert!(batch_means(&[1.0]).is_none());
    }

    #[test]
    fn zero_mean_gives_infinite_rel_error() {
        let est = batch_means(&[-1.0, 1.0]).unwrap();
        assert!(est.relative_error.is_infinite());
    }

    #[test]
    fn photon_extrapolation_follows_inverse_square_root() {
        // Halving the error quadruples the photons.
        assert_eq!(photons_for_relative_error(1_000_000, 0.02, 0.01), 4_000_000);
        // 10x tighter -> 100x photons: the paper's "billions" from a
        // percent-level pilot at ~10^7.
        assert_eq!(photons_for_relative_error(10_000_000, 0.1, 0.01), 1_000_000_000);
    }

    #[test]
    fn running_stats_match_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::default();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        let direct_var =
            xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((rs.variance() - direct_var).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut whole = RunningStats::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::default();
        let mut b = RunningStats::default();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::default();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::default());
        assert_eq!(a, before);
        let mut empty = RunningStats::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    proptest! {
        #[test]
        fn merge_is_order_insensitive(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..50),
            split in 1usize..49
        ) {
            let split = split.min(xs.len() - 1);
            let mut ab = RunningStats::default();
            let mut a = RunningStats::default();
            let mut b = RunningStats::default();
            for &x in &xs { ab.push(x); }
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            let mut ba = b;
            ba.merge(&a);
            a.merge(&b);
            prop_assert!((a.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((a.mean() - ab.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - ab.variance()).abs() < 1e-7);
        }
    }
}
