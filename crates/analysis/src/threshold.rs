//! Thresholding: "Fig. 3 shows the most common paths taken by the photons,
//! after thresholding."
//!
//! The figure keeps only voxels whose visit density exceeds a fraction of
//! the maximum; everything below is zeroed. Applied to either a projection
//! or a raw grid.

use crate::projection::Projection2D;

/// Zero out every value below `fraction × max`. Returns the number of
/// surviving (non-zero) cells. `fraction` is clamped to [0, 1].
pub fn threshold_fraction(field: &mut Projection2D, fraction: f64) -> usize {
    let fraction = fraction.clamp(0.0, 1.0);
    let cut = field.max_value() * fraction;
    let mut survivors = 0;
    for v in &mut field.values {
        if *v < cut || *v == 0.0 {
            *v = 0.0;
        } else {
            survivors += 1;
        }
    }
    survivors
}

/// The value below which `quantile` of the total field weight lies.
/// Useful for weight-based (rather than max-based) thresholding.
pub fn weight_quantile(field: &Projection2D, quantile: f64) -> f64 {
    assert!((0.0..=1.0).contains(&quantile), "quantile must be in [0,1]");
    let mut vals: Vec<f64> = field.values.iter().copied().filter(|&v| v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let total: f64 = vals.iter().sum();
    let target = total * quantile;
    let mut acc = 0.0;
    for &v in &vals {
        acc += v;
        if acc >= target {
            return v;
        }
    }
    *vals.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(values: Vec<f64>, nx: usize, nz: usize) -> Projection2D {
        Projection2D { nx, nz, x_min: 0.0, x_max: nx as f64, z_min: 0.0, z_max: nz as f64, values }
    }

    #[test]
    fn threshold_keeps_only_hot_cells() {
        let mut f = field(vec![10.0, 5.0, 1.0, 0.5], 2, 2);
        let kept = threshold_fraction(&mut f, 0.4); // cut = 4.0
        assert_eq!(kept, 2);
        assert_eq!(f.values, vec![10.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_fraction_keeps_all_nonzero() {
        let mut f = field(vec![1.0, 0.0, 2.0, 3.0], 2, 2);
        let kept = threshold_fraction(&mut f, 0.0);
        assert_eq!(kept, 3);
    }

    #[test]
    fn full_fraction_keeps_only_max() {
        let mut f = field(vec![1.0, 2.0, 3.0, 3.0], 2, 2);
        let kept = threshold_fraction(&mut f, 1.0);
        assert_eq!(kept, 2); // both max-valued cells survive
    }

    #[test]
    fn fraction_is_clamped() {
        let mut f = field(vec![1.0, 2.0], 2, 1);
        let kept = threshold_fraction(&mut f, 5.0);
        assert_eq!(kept, 1);
    }

    #[test]
    fn weight_quantile_monotone() {
        let f = field(vec![1.0, 2.0, 3.0, 4.0, 10.0, 0.0], 3, 2);
        let q25 = weight_quantile(&f, 0.25);
        let q75 = weight_quantile(&f, 0.75);
        assert!(q25 <= q75);
        assert!(q75 <= 10.0);
    }

    #[test]
    fn weight_quantile_of_empty_field_is_zero() {
        let f = field(vec![0.0; 4], 2, 2);
        assert_eq!(weight_quantile(&f, 0.5), 0.0);
    }
}
