//! 2-D projections of 3-D visit grids.
//!
//! Figs 3 and 4 of the paper view the photon distribution in the x–z plane
//! (x = lateral position along the source–detector line, z = depth).
//! [`Projection2D`] sums a [`VisitGrid`] over y.

use lumen_core::tally::VisitGrid;
use serde::{Deserialize, Serialize};

/// A dense 2-D field over the x–z plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection2D {
    /// Columns (x bins).
    pub nx: usize,
    /// Rows (z bins).
    pub nz: usize,
    /// x extent (mm).
    pub x_min: f64,
    pub x_max: f64,
    /// z extent (mm).
    pub z_min: f64,
    pub z_max: f64,
    /// Row-major values: `values[iz * nx + ix]`.
    pub values: Vec<f64>,
}

impl Projection2D {
    /// Project a visit grid onto the x–z plane by summing over y.
    pub fn from_grid(grid: &VisitGrid) -> Self {
        let spec = grid.spec;
        let mut values = vec![0.0; spec.nx * spec.nz];
        for iz in 0..spec.nz {
            for iy in 0..spec.ny {
                for ix in 0..spec.nx {
                    let idx = (iz * spec.ny + iy) * spec.nx + ix;
                    values[iz * spec.nx + ix] += grid.value(idx);
                }
            }
        }
        Self {
            nx: spec.nx,
            nz: spec.nz,
            x_min: spec.min.x,
            x_max: spec.max.x,
            z_min: spec.min.z,
            z_max: spec.max.z,
            values,
        }
    }

    /// Value at (ix, iz).
    #[inline]
    pub fn at(&self, ix: usize, iz: usize) -> f64 {
        self.values[iz * self.nx + ix]
    }

    /// Mutable value at (ix, iz) — used by tests and thresholding.
    #[inline]
    pub fn at_mut(&mut self, ix: usize, iz: usize) -> &mut f64 {
        &mut self.values[iz * self.nx + ix]
    }

    /// Maximum value over the field.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of the field.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Physical x coordinate of column centre `ix` (mm).
    pub fn x_of(&self, ix: usize) -> f64 {
        self.x_min + (ix as f64 + 0.5) * (self.x_max - self.x_min) / self.nx as f64
    }

    /// Physical z coordinate of row centre `iz` (mm).
    pub fn z_of(&self, iz: usize) -> f64 {
        self.z_min + (iz as f64 + 0.5) * (self.z_max - self.z_min) / self.nz as f64
    }

    /// Column index containing physical coordinate `x`, clamped into range.
    pub fn ix_of(&self, x: f64) -> usize {
        let fx = (x - self.x_min) / (self.x_max - self.x_min) * self.nx as f64;
        (fx.max(0.0) as usize).min(self.nx - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::tally::GridSpec;
    use lumen_core::Vec3;

    fn grid_with_point(p: Vec3, w: f64) -> VisitGrid {
        let spec = GridSpec::cubic(10, Vec3::new(-5.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 10.0));
        let mut g = VisitGrid::new(spec);
        g.deposit(p, w);
        g
    }

    #[test]
    fn projection_preserves_total() {
        let g = grid_with_point(Vec3::new(1.0, 2.0, 3.0), 4.5);
        let p = Projection2D::from_grid(&g);
        assert!((p.total() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn projection_collapses_y() {
        // Two deposits differing only in y land in the same x-z cell.
        let spec = GridSpec::cubic(10, Vec3::new(-5.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 10.0));
        let mut g = VisitGrid::new(spec);
        g.deposit(Vec3::new(1.0, -3.0, 3.0), 1.0);
        g.deposit(Vec3::new(1.0, 4.0, 3.0), 2.0);
        let p = Projection2D::from_grid(&g);
        let ix = p.ix_of(1.0);
        let iz = ((3.0 - 0.0) / 10.0 * 10.0) as usize;
        assert!((p.at(ix, iz) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn coordinate_round_trip() {
        let g = grid_with_point(Vec3::new(0.0, 0.0, 5.0), 1.0);
        let p = Projection2D::from_grid(&g);
        for ix in 0..p.nx {
            assert_eq!(p.ix_of(p.x_of(ix)), ix);
        }
    }

    #[test]
    fn ix_of_clamps() {
        let g = grid_with_point(Vec3::new(0.0, 0.0, 5.0), 1.0);
        let p = Projection2D::from_grid(&g);
        assert_eq!(p.ix_of(-100.0), 0);
        assert_eq!(p.ix_of(100.0), p.nx - 1);
    }

    #[test]
    fn max_value_tracks_hot_cell() {
        let g = grid_with_point(Vec3::new(2.0, 0.0, 7.0), 9.0);
        let p = Projection2D::from_grid(&g);
        assert!((p.max_value() - 9.0).abs() < 1e-12);
    }
}
