//! # lumen-analysis — turning tallies into the paper's figures
//!
//! The simulation engine produces voxel grids and summary tallies; this
//! crate produces the paper's *artefacts* from them:
//!
//! * [`projection`] — collapse a 3-D visit grid onto the x–z plane (the
//!   view of Figs 3 and 4);
//! * [`threshold`] — keep only the most-visited voxels ("after
//!   thresholding" in Fig 3's caption);
//! * [`banana`] — quantitative checks that the thresholded detected-path
//!   distribution really is the expected banana: end-point anchoring at
//!   source and detector, maximum depth near the midpoint, depth bounds;
//! * [`profile`] — spatial sensitivity profiles (visit weight vs depth),
//!   penetration-depth vs separation curves;
//! * [`render`] — ASCII and PGM renderers for terminal/figure output;
//! * [`stats`] — histograms and summary statistics for pathlength and
//!   penetration distributions;
//! * [`diffusion`] — the Farrell–Patterson diffusion-approximation
//!   baseline the Monte Carlo engine is validated against;
//! * [`tof`] — pathlength ↔ time-of-flight conversion and TPSFs.

pub mod banana;
pub mod convergence;
pub mod diffusion;
pub mod profile;
pub mod projection;
pub mod render;
pub mod stats;
pub mod threshold;
pub mod tof;

pub use banana::{banana_metrics, BananaMetrics};
pub use convergence::{batch_means, ErrorEstimate, RunningStats};
pub use diffusion::DiffusionModel;
pub use profile::{depth_profile, lateral_profile};
pub use projection::Projection2D;
pub use render::{render_ascii, write_pgm};
pub use stats::Histogram;
pub use threshold::threshold_fraction;
pub use tof::{arrival_time_ps, pathlength_to_time_ps, tof_from_archive, tpsf_from_pathlengths};
