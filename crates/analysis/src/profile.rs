//! Spatial sensitivity profiles.
//!
//! The paper's motivation section: "The spatial sensitivity profile of the
//! photon path is important to ascertain firstly the volume of tissue
//! interrogated and then which cells within that volume dominate the
//! detected light signal." These helpers collapse visit grids into 1-D
//! profiles for exactly that analysis.

use crate::projection::Projection2D;

/// Visit weight as a function of depth: `profile[iz]` is the total weight
/// in row `iz`. Returns (depths at bin centres, weights).
pub fn depth_profile(field: &Projection2D) -> (Vec<f64>, Vec<f64>) {
    let mut depths = Vec::with_capacity(field.nz);
    let mut weights = Vec::with_capacity(field.nz);
    for iz in 0..field.nz {
        let w: f64 = (0..field.nx).map(|ix| field.at(ix, iz)).sum();
        depths.push(field.z_of(iz));
        weights.push(w);
    }
    (depths, weights)
}

/// Visit weight as a function of lateral position x.
pub fn lateral_profile(field: &Projection2D) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::with_capacity(field.nx);
    let mut weights = Vec::with_capacity(field.nx);
    for ix in 0..field.nx {
        let w: f64 = (0..field.nz).map(|iz| field.at(ix, iz)).sum();
        xs.push(field.x_of(ix));
        weights.push(w);
    }
    (xs, weights)
}

/// Depth below which `quantile` of the total visit weight lies — e.g. the
/// 90 % interrogation depth.
pub fn interrogation_depth(field: &Projection2D, quantile: f64) -> f64 {
    assert!((0.0..=1.0).contains(&quantile));
    let (depths, weights) = depth_profile(field);
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let target = total * quantile;
    let mut acc = 0.0;
    for (d, w) in depths.iter().zip(&weights) {
        acc += w;
        if acc >= target {
            return *d;
        }
    }
    *depths.last().expect("non-empty profile")
}

/// Lateral spread (weight-std of x) within the top `surface_rows` rows —
/// a beam-width measure used for the source-footprint experiment (the
/// paper's "lasers do produce a small beam" observation).
pub fn surface_beam_width(field: &Projection2D, surface_rows: usize) -> f64 {
    let rows = surface_rows.min(field.nz).max(1);
    let mut w_total = 0.0;
    let mut x_sum = 0.0;
    let mut x2_sum = 0.0;
    for iz in 0..rows {
        for ix in 0..field.nx {
            let w = field.at(ix, iz);
            if w <= 0.0 {
                continue;
            }
            let x = field.x_of(ix);
            w_total += w;
            x_sum += w * x;
            x2_sum += w * x * x;
        }
    }
    if w_total <= 0.0 {
        return 0.0;
    }
    let mean = x_sum / w_total;
    (x2_sum / w_total - mean * mean).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_rows(rows: &[f64], nx: usize) -> Projection2D {
        // Each row has uniform value rows[iz].
        let nz = rows.len();
        let mut values = Vec::with_capacity(nx * nz);
        for &r in rows {
            values.extend(std::iter::repeat_n(r, nx));
        }
        Projection2D { nx, nz, x_min: 0.0, x_max: nx as f64, z_min: 0.0, z_max: nz as f64, values }
    }

    #[test]
    fn depth_profile_sums_rows() {
        let f = field_rows(&[1.0, 2.0, 0.0], 4);
        let (depths, weights) = depth_profile(&f);
        assert_eq!(weights, vec![4.0, 8.0, 0.0]);
        assert_eq!(depths.len(), 3);
        assert!((depths[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lateral_profile_sums_columns() {
        let f = field_rows(&[1.0, 1.0], 3);
        let (xs, weights) = lateral_profile(&f);
        assert_eq!(weights, vec![2.0, 2.0, 2.0]);
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn interrogation_depth_median() {
        let f = field_rows(&[3.0, 1.0, 0.0, 0.0], 1);
        // Total 4; 50% target = 2, reached in row 0 (depth 0.5).
        assert!((interrogation_depth(&f, 0.5) - 0.5).abs() < 1e-12);
        // 90% target = 3.6, reached in row 1 (depth 1.5).
        assert!((interrogation_depth(&f, 0.9) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn interrogation_depth_of_empty_field() {
        let f = field_rows(&[0.0, 0.0], 2);
        assert_eq!(interrogation_depth(&f, 0.9), 0.0);
    }

    #[test]
    fn beam_width_zero_for_single_column() {
        let mut f = field_rows(&[0.0, 0.0], 5);
        *f.at_mut(2, 0) = 3.0;
        assert_eq!(surface_beam_width(&f, 1), 0.0);
    }

    #[test]
    fn beam_width_grows_with_spread() {
        let mut narrow = field_rows(&[0.0], 11);
        *narrow.at_mut(5, 0) = 1.0;
        *narrow.at_mut(6, 0) = 1.0;
        let mut wide = field_rows(&[0.0], 11);
        *wide.at_mut(0, 0) = 1.0;
        *wide.at_mut(10, 0) = 1.0;
        assert!(surface_beam_width(&wide, 1) > surface_beam_width(&narrow, 1));
    }
}
