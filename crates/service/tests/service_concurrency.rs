//! Chaos suite for the service daemon: concurrent clients, hostile
//! frames, version skew, byte-budget pressure, and mid-response
//! disconnects. Every test runs under a watchdog (the same "never a
//! hang" guarantee as the cluster runtime's chaos suite) and asserts
//! either a correct served result or a typed rejection — never a
//! duplicated trace, a poisoned daemon, or a silent partial answer.

use lumen_cluster::net::{handshake, read_frame, write_frame, KIND_HELLO};
use lumen_cluster::wire;
use lumen_core::engine::Scenario;
use lumen_core::{Detector, Source};
use lumen_service::proto::{self, KIND_ERROR, KIND_QUERY, KIND_RESULT};
use lumen_service::{Served, ServiceClient, ServiceOptions, ServiceServer, SimulationService};
use lumen_tissue::presets::semi_infinite_phantom;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Abort with a named panic (not a CI timeout) if `f` does not finish in
/// time.
fn watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let body = thread::spawn(move || {
        tx.send(f()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            body.join().ok();
            v
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: `{name}` still running after {limit:?} — the daemon hung")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match body.join() {
            Err(cause) => std::panic::resume_unwind(cause),
            Ok(()) => panic!("watchdog: `{name}` exited without a result"),
        },
    }
}

fn scenario(seed: u64, photons: u64) -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(photons)
    .with_seed(seed)
}

fn service(chunk_photons: u64, max_cache_bytes: usize) -> Arc<SimulationService> {
    Arc::new(
        SimulationService::new(
            ServiceOptions::default()
                .with_backend("sequential")
                .with_chunk_photons(chunk_photons)
                .with_chunk_tasks(4)
                .with_max_cache_bytes(max_cache_bytes)
                .with_workers(4),
        )
        .expect("valid options"),
    )
}

const LIMIT: Duration = Duration::from_secs(120);

#[test]
fn concurrent_same_key_requests_trace_once() {
    watchdog("same-key dedup", LIMIT, || {
        let svc = service(5_000, usize::MAX);
        let clients = 8;
        let replies: Vec<_> = (0..clients)
            .map(|_| {
                let svc = Arc::clone(&svc);
                thread::spawn(move || svc.query(&scenario(3, 15_000)).expect("query"))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();

        // All clients see the same bytes...
        let bytes = wire::encode_tally(&replies[0].tally);
        for reply in &replies {
            assert_eq!(wire::encode_tally(&reply.tally), bytes);
            assert_eq!(reply.photons_done, 15_000);
        }
        // ...and the photons were traced exactly once: 3 chunks, 1 cold
        // serve, everyone else warm off the in-flight claim.
        let stats = svc.stats();
        assert_eq!(stats.chunks_traced, 3, "concurrent same-key queries must not re-trace");
        assert_eq!(stats.cold, 1);
        assert_eq!(stats.warm, clients - 1);
    })
}

#[test]
fn distinct_keys_trace_concurrently_and_independently() {
    watchdog("distinct keys", LIMIT, || {
        let svc = service(5_000, usize::MAX);
        let replies: Vec<_> = (0..6u64)
            .map(|seed| {
                let svc = Arc::clone(&svc);
                thread::spawn(move || svc.query(&scenario(seed, 5_000)).expect("query"))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        for (i, a) in replies.iter().enumerate() {
            assert_eq!(a.served, Served::Cold);
            for b in &replies[i + 1..] {
                assert_ne!(a.key, b.key, "distinct seeds must hash apart");
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.cold, 6);
        assert_eq!(stats.chunks_traced, 6);
        assert_eq!(stats.entries, 6);
    })
}

#[test]
fn byte_budget_evicts_lru_but_never_corrupts() {
    watchdog("eviction", LIMIT, || {
        // Small budget: a handful of entries at most.
        let svc = service(2_000, 2_048);
        let total_seeds = 12u64;
        for seed in 0..total_seeds {
            let reply = svc.query(&scenario(seed, 2_000)).expect("cold query");
            assert_eq!(reply.served, Served::Cold);
        }
        let stats = svc.stats();
        assert!(stats.evictions > 0, "12 entries cannot fit in 2 KiB");
        assert!(stats.entries < total_seeds, "cache must stay under budget");
        assert!(stats.cached_bytes <= 2_048, "byte budget is a hard cap");

        // The newest key survived and serves warm, byte-identical.
        let last = svc.query(&scenario(total_seeds - 1, 2_000)).expect("warm query");
        assert_eq!(last.served, Served::Warm);
        // The oldest was evicted: served again, correctly, as a cold miss.
        let first = svc.query(&scenario(0, 2_000)).expect("re-trace");
        assert_eq!(first.served, Served::Cold);
        assert_eq!(first.photons_done, 2_000);
    })
}

#[test]
fn version_mismatch_is_answered_then_rejected() {
    watchdog("version mismatch", LIMIT, || {
        let server =
            ServiceServer::bind("127.0.0.1:0", service(5_000, usize::MAX)).expect("bind daemon");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, KIND_HELLO, &[wire::VERSION + 1]).expect("send bad hello");
        // The daemon answers with its own version before hanging up, so
        // the outdated peer can diagnose itself...
        let (kind, payload) = read_frame(&mut stream).expect("hello reply");
        assert_eq!(kind, KIND_HELLO);
        assert_eq!(payload, vec![wire::VERSION]);
        // ...then closes: the next read finds EOF, and no query is served.
        assert!(read_frame(&mut stream).is_err(), "mismatched connection must be closed");

        // A well-versioned client on the same daemon is unaffected.
        let mut ok = ServiceClient::connect(server.local_addr()).expect("good client");
        let reply = ok.query(&scenario(1, 5_000)).expect("query after rejection");
        assert_eq!(reply.served, Served::Cold);
        server.shutdown();
    })
}

#[test]
fn malformed_and_unknown_frames_earn_typed_errors() {
    watchdog("malformed frames", LIMIT, || {
        let server =
            ServiceServer::bind("127.0.0.1:0", service(5_000, usize::MAX)).expect("bind daemon");

        // A QUERY whose payload is not a scenario: typed ERROR frame, not
        // a dropped connection and not a panic.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        handshake(&mut stream).expect("hello");
        write_frame(&mut stream, KIND_QUERY, b"not a scenario").expect("send garbage");
        let (kind, payload) = read_frame(&mut stream).expect("error reply");
        assert_eq!(kind, KIND_ERROR);
        let message = proto::decode_error(&payload).expect("decodable error");
        assert!(message.contains("malformed scenario"), "got: {message}");

        // An unknown frame kind: typed ERROR, then the connection closes.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        handshake(&mut stream).expect("hello");
        write_frame(&mut stream, 0x7F, &[]).expect("send unknown kind");
        let (kind, payload) = read_frame(&mut stream).expect("error reply");
        assert_eq!(kind, KIND_ERROR);
        assert!(proto::decode_error(&payload).expect("decodable").contains("0x7f"));
        assert!(read_frame(&mut stream).is_err(), "unknown-kind connection must close");

        // An invalid scenario (decodes fine, fails validation) also comes
        // back typed, and the client maps it to ServiceError::Remote.
        let mut client = ServiceClient::connect(server.local_addr()).expect("client");
        let mut bad = scenario(1, 5_000);
        bad.detector.radius = -1.0;
        let err = client.query(&bad).expect_err("invalid scenario must be rejected");
        assert!(matches!(err, lumen_service::ServiceError::Remote(_)), "got: {err}");
        server.shutdown();
    })
}

#[test]
fn daemon_survives_client_disconnect_mid_request() {
    watchdog("mid-request disconnect", LIMIT, || {
        let server =
            ServiceServer::bind("127.0.0.1:0", service(5_000, usize::MAX)).expect("bind daemon");

        // Fire a query and slam the connection without reading the reply:
        // the daemon's write fails into a dead socket, killing only that
        // connection's thread.
        {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            handshake(&mut stream).expect("hello");
            write_frame(&mut stream, KIND_QUERY, &wire::encode_scenario(&scenario(9, 20_000)))
                .expect("send query");
            stream.shutdown(std::net::Shutdown::Both).ok();
        } // dropped before the reply exists

        // Half a frame, then disconnect: the framing layer on the server
        // sees a truncated read and drops the connection quietly.
        {
            use std::io::Write;
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            handshake(&mut stream).expect("hello");
            stream.write_all(&[0xFF, 0xFF]).expect("half a length prefix");
        }

        // The daemon is intact: a fresh client gets a full answer, warm
        // if the abandoned query's trace completed and was cached anyway.
        let mut client = ServiceClient::connect(server.local_addr()).expect("client");
        let reply = client.query(&scenario(9, 20_000)).expect("query after chaos");
        assert_eq!(reply.photons_done, 20_000);
        assert!(matches!(reply.served, Served::Cold | Served::Warm));
        server.shutdown();
    })
}

#[test]
fn warm_hits_are_faster_than_cold_misses() {
    watchdog("warm latency", LIMIT, || {
        let server =
            ServiceServer::bind("127.0.0.1:0", service(50_000, usize::MAX)).expect("bind daemon");
        let mut client = ServiceClient::connect(server.local_addr()).expect("client");
        let request = scenario(5, 200_000);

        let cold_start = Instant::now();
        let cold = client.query(&request).expect("cold query");
        let cold_elapsed = cold_start.elapsed();
        assert_eq!(cold.served, Served::Cold);

        // Best-of-three to keep scheduler noise out of the comparison.
        let mut warm_elapsed = Duration::MAX;
        for _ in 0..3 {
            let warm_start = Instant::now();
            let warm = client.query(&request).expect("warm query");
            warm_elapsed = warm_elapsed.min(warm_start.elapsed());
            assert_eq!(warm.served, Served::Warm);
        }
        assert!(
            warm_elapsed < cold_elapsed,
            "warm hit ({warm_elapsed:?}) must beat tracing 200k photons ({cold_elapsed:?})"
        );
        server.shutdown();
    })
}

#[test]
fn query_before_hello_is_rejected() {
    watchdog("no hello", LIMIT, || {
        let server =
            ServiceServer::bind("127.0.0.1:0", service(5_000, usize::MAX)).expect("bind daemon");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Skip the handshake entirely: the gate closes the connection
        // without serving (it may answer HELLO with its version first —
        // what matters is that no RESULT ever arrives).
        write_frame(&mut stream, KIND_QUERY, &wire::encode_scenario(&scenario(2, 5_000)))
            .expect("send early query");
        // Drain until the daemon tears the connection down: whatever
        // frames arrive (a courtesy HELLO at most), never a RESULT.
        while let Ok((kind, _)) = read_frame(&mut stream) {
            assert_ne!(kind, KIND_RESULT, "ungated query must not be served");
        }
        server.shutdown();
    })
}
