//! The cache-identity invariants, at the scale the acceptance criteria
//! name: a repeated request returns a byte-identical tally, and topping
//! up 10^5 → 10^6 photons produces the same bytes as asking the service
//! for 10^6 cold — the cache is an optimization, never an approximation.
//!
//! Byte-identity is asserted on `wire::encode_tally`, the exact bytes a
//! daemon ships to clients.

use lumen_cluster::wire;
use lumen_core::engine::Scenario;
use lumen_core::{Detector, Source};
use lumen_service::{Served, ServiceOptions, SimulationService};
use lumen_tissue::presets::semi_infinite_phantom;

fn scenario(photons: u64) -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.37),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(photons)
    .with_seed(7)
}

fn service() -> SimulationService {
    SimulationService::new(
        ServiceOptions::default().with_backend("rayon").with_chunk_photons(100_000),
    )
    .expect("valid options")
}

#[test]
fn repeat_request_returns_byte_identical_tally() {
    let svc = service();
    let first = svc.query(&scenario(100_000)).expect("cold query");
    assert_eq!(first.served, Served::Cold);
    let second = svc.query(&scenario(100_000)).expect("warm query");
    assert_eq!(second.served, Served::Warm);
    assert_eq!(
        wire::encode_tally(&first.tally),
        wire::encode_tally(&second.tally),
        "warm hit must ship the same bytes"
    );
    assert_eq!(first.key, second.key);
    assert_eq!(first.photons_done, second.photons_done);
}

#[test]
fn topup_to_a_million_matches_the_cold_million_run() {
    // Path A: 10^5 cold, then top up to 10^6 (nine more chunks).
    let upgraded = service();
    let small = upgraded.query(&scenario(100_000)).expect("cold 1e5");
    assert_eq!(small.served, Served::Cold);
    let topped = upgraded.query(&scenario(1_000_000)).expect("top-up to 1e6");
    assert_eq!(topped.served, Served::TopUp);

    // Path B: a fresh service asked for 10^6 straight away.
    let cold = service();
    let full = cold.query(&scenario(1_000_000)).expect("cold 1e6");
    assert_eq!(full.served, Served::Cold);

    assert_eq!(topped.photons_done, 1_000_000);
    assert_eq!(full.photons_done, 1_000_000);
    assert_eq!(
        wire::encode_tally(&topped.tally),
        wire::encode_tally(&full.tally),
        "incremental top-up must be bit-identical to the single full-budget run"
    );

    // And the upgraded entry serves the full budget warm from then on.
    let warm = upgraded.query(&scenario(1_000_000)).expect("warm 1e6");
    assert_eq!(warm.served, Served::Warm);
    assert_eq!(wire::encode_tally(&warm.tally), wire::encode_tally(&full.tally));
}

#[test]
fn multi_step_topup_path_is_path_independent() {
    // 1e5 → 3e5 → 6e5 in two top-ups lands on the same bytes as one
    // cold 6e5 run: the entry is a pure function of (key, chunks).
    let stepped = service();
    for budget in [100_000, 300_000, 600_000] {
        stepped.query(&scenario(budget)).expect("stepped query");
    }
    let stepped_final = stepped.query(&scenario(600_000)).expect("warm 6e5");
    assert_eq!(stepped_final.served, Served::Warm);

    let direct = service();
    let direct_final = direct.query(&scenario(600_000)).expect("cold 6e5");

    assert_eq!(
        wire::encode_tally(&stepped_final.tally),
        wire::encode_tally(&direct_final.tally),
        "any top-up path to the same budget must give the same bytes"
    );
}

#[test]
fn backend_choice_does_not_change_the_bytes() {
    // The chunk decomposition, not the execution substrate, defines the
    // result: sequential and rayon services cache identical entries.
    let seq = SimulationService::new(
        ServiceOptions::default().with_backend("sequential").with_chunk_photons(50_000),
    )
    .expect("valid options");
    let par = SimulationService::new(
        ServiceOptions::default().with_backend("rayon").with_chunk_photons(50_000),
    )
    .expect("valid options");
    let a = seq.query(&scenario(200_000)).expect("sequential run");
    let b = par.query(&scenario(200_000)).expect("rayon run");
    assert_eq!(wire::encode_tally(&a.tally), wire::encode_tally(&b.tally));
}
