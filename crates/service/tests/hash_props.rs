//! Property tests for the canonical scenario hash — the cache's
//! correctness hinges on two facts proven here over random scenarios:
//!
//! * **Stability**: the key ignores exactly the execution parameters
//!   (`photons`, `tasks`, `task_offset`), so any budget of the same
//!   physics lands on the same cache entry — that is what makes warm
//!   hits and top-ups possible.
//! * **Sensitivity**: *any* physics change — optics, geometry, source,
//!   detector, engine options, or seed — moves the key, so two different
//!   experiments can never alias to one entry.

use lumen_core::engine::Scenario;
use lumen_core::{Detector, Precision, Source};
use lumen_service::{key_hex, scenario_key};
use lumen_tissue::presets::semi_infinite_phantom;
use proptest::prelude::*;

/// A scenario drawn from the given physics knobs (budget/split left at
/// their defaults; the properties vary those separately).
fn scenario(mu_a: f64, mu_s: f64, g: f64, separation: f64, radius: f64, seed: u64) -> Scenario {
    Scenario::new(
        semi_infinite_phantom(mu_a, mu_s, g, 1.37),
        Source::Delta,
        Detector::new(separation, radius),
    )
    .with_seed(seed)
}

proptest! {
    #[test]
    fn key_ignores_budget_and_decomposition(
        mu_a in 0.01f64..1.0,
        sep in 0.5f64..5.0,
        seed in any::<u64>(),
        photons in 1u64..1_000_000_000,
        tasks in 1u64..10_000,
        offset in 0u64..1_000_000,
    ) {
        let base = scenario(mu_a, 10.0, 0.0, sep, 0.5, seed);
        let key = scenario_key(&base);
        let rehomed = base.with_photons(photons).with_tasks(tasks).with_task_offset(offset);
        prop_assert_eq!(scenario_key(&rehomed), key);
    }

    #[test]
    fn key_is_deterministic_across_clones(
        mu_a in 0.01f64..1.0,
        mu_s in 1.0f64..50.0,
        seed in any::<u64>(),
    ) {
        let s = scenario(mu_a, mu_s, 0.0, 1.0, 0.5, seed);
        prop_assert_eq!(scenario_key(&s), scenario_key(&s.clone()));
        prop_assert_eq!(key_hex(&scenario_key(&s)), key_hex(&scenario_key(&s)));
    }

    #[test]
    fn key_moves_with_the_seed(seed in any::<u64>()) {
        let a = scenario(0.1, 10.0, 0.0, 1.0, 0.5, seed);
        let b = scenario(0.1, 10.0, 0.0, 1.0, 0.5, seed.wrapping_add(1));
        prop_assert_ne!(scenario_key(&a), scenario_key(&b));
    }

    #[test]
    fn key_moves_with_the_optics(
        mu_a in 0.01f64..1.0,
        mu_s in 1.0f64..50.0,
        bump in 1e-9f64..1e-3,
    ) {
        let a = scenario(mu_a, mu_s, 0.0, 1.0, 0.5, 42);
        let b = scenario(mu_a + bump, mu_s, 0.0, 1.0, 0.5, 42);
        let c = scenario(mu_a, mu_s + bump, 0.0, 1.0, 0.5, 42);
        let d = scenario(mu_a, mu_s, 0.0 + bump, 1.0, 0.5, 42);
        prop_assert_ne!(scenario_key(&a), scenario_key(&b));
        prop_assert_ne!(scenario_key(&a), scenario_key(&c));
        prop_assert_ne!(scenario_key(&a), scenario_key(&d));
    }

    #[test]
    fn key_moves_with_detector_and_source(
        sep in 0.5f64..5.0,
        radius in 0.1f64..1.0,
        bump in 1e-9f64..1e-3,
    ) {
        let a = scenario(0.1, 10.0, 0.0, sep, radius, 42);
        let b = scenario(0.1, 10.0, 0.0, sep + bump, radius, 42);
        let c = scenario(0.1, 10.0, 0.0, sep, radius + bump, 42);
        prop_assert_ne!(scenario_key(&a), scenario_key(&b));
        prop_assert_ne!(scenario_key(&a), scenario_key(&c));

        let mut d = scenario(0.1, 10.0, 0.0, sep, radius, 42);
        d.source = Source::Gaussian { radius: 0.2 };
        let mut e = scenario(0.1, 10.0, 0.0, sep, radius, 42);
        e.source = Source::Uniform { radius: 0.2 };
        prop_assert_ne!(scenario_key(&a), scenario_key(&d));
        prop_assert_ne!(scenario_key(&d), scenario_key(&e));
    }

    #[test]
    fn key_moves_with_engine_options(max_interactions in 1u32..1_000_000) {
        let a = scenario(0.1, 10.0, 0.0, 1.0, 0.5, 42);
        let mut b = a.clone();
        b.options.max_interactions = b.options.max_interactions.wrapping_add(max_interactions);
        prop_assert_ne!(scenario_key(&a), scenario_key(&b));
    }

    // The precision tier changes the sampled trajectories (polynomial
    // approximations, batch-order RNG consumption), so a `Fast` result
    // must never satisfy an `Exact` query from the cache — the tier has
    // to be key-relevant for every physics configuration.
    #[test]
    fn key_moves_with_the_precision_tier(
        mu_a in 0.01f64..1.0,
        mu_s in 1.0f64..50.0,
        sep in 0.5f64..5.0,
        seed in any::<u64>(),
    ) {
        let exact = scenario(mu_a, mu_s, 0.0, sep, 0.5, seed);
        let mut fast = exact.clone();
        fast.options.precision = Precision::Fast;
        prop_assert_ne!(scenario_key(&fast), scenario_key(&exact));
        // Within a tier the key stays deterministic.
        prop_assert_eq!(scenario_key(&fast), scenario_key(&fast.clone()));
        // And budget-invariance holds for the fast tier too.
        let topped_up = fast.clone().with_photons(123_456).with_tasks(12);
        prop_assert_eq!(scenario_key(&topped_up), scenario_key(&fast));
    }
}

#[test]
fn detector_gating_and_ring_are_key_relevant() {
    let base = scenario(0.1, 10.0, 0.0, 1.0, 0.5, 42);
    let key = scenario_key(&base);

    let mut ring = base.clone();
    ring.detector.ring = true;
    assert_ne!(scenario_key(&ring), key);

    let mut na = base.clone();
    na.detector.min_exit_cos = Some(0.9);
    assert_ne!(scenario_key(&na), key);
}
