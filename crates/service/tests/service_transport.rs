//! Transport-core legs for the daemon: dead-client cancellation (a
//! disconnect mid-trace must stop burning worker-pool budget within one
//! chunk) and the 100+-concurrent-client scale test the old
//! thread-per-connection front end could not express. All replies stay
//! byte-deterministic — an answer from a daemon juggling a hundred
//! sockets is bit-identical to one computed by a private service
//! instance, and a cancelled fold is discarded whole, never cached.

use lumen_cluster::net::{handshake, write_frame};
use lumen_cluster::wire;
use lumen_core::engine::Scenario;
use lumen_core::{Detector, Source};
use lumen_service::proto::KIND_QUERY;
use lumen_service::{Served, ServiceClient, ServiceOptions, ServiceServer, SimulationService};
use lumen_tissue::presets::semi_infinite_phantom;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Abort with a named panic (not a CI timeout) if `f` does not finish in
/// time.
fn watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let body = thread::spawn(move || {
        tx.send(f()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            body.join().ok();
            v
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: `{name}` still running after {limit:?} — the daemon hung")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match body.join() {
            Err(cause) => std::panic::resume_unwind(cause),
            Ok(()) => panic!("watchdog: `{name}` exited without a result"),
        },
    }
}

fn scenario(seed: u64, photons: u64) -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(photons)
    .with_seed(seed)
}

fn service(chunk_photons: u64) -> Arc<SimulationService> {
    Arc::new(
        SimulationService::new(
            ServiceOptions::default()
                .with_backend("sequential")
                .with_chunk_photons(chunk_photons)
                .with_chunk_tasks(4)
                .with_workers(4),
        )
        .expect("valid options"),
    )
}

const LIMIT: Duration = Duration::from_secs(120);

#[test]
fn dead_client_cancels_its_trace_within_a_chunk_or_two() {
    watchdog("dead-client cancellation", LIMIT, || {
        // 400 chunks of work: a full trace takes many seconds, so if the
        // daemon kept tracing for the corpse, the budget below would be
        // blown by orders of magnitude.
        let svc = service(10_000);
        let server = ServiceServer::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind daemon");

        {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            handshake(&mut stream).expect("hello");
            write_frame(&mut stream, KIND_QUERY, &wire::encode_scenario(&scenario(31, 4_000_000)))
                .expect("send doomed query");
        } // client dies before the first chunk is done

        // The close event reaches the poll loop within milliseconds and
        // raises the job's cancel flag; the executor checks it before
        // every chunk. Wait for the cancellation to be accounted.
        let mut cancelled = 0;
        for _ in 0..1_000 {
            cancelled = svc.stats().cancelled;
            if cancelled >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(cancelled, 1, "the abandoned query must be cancelled, not traced out");
        let stats = svc.stats();
        assert!(
            stats.chunks_traced < 40,
            "cancellation must stop the fold early: {} of 400 chunks traced",
            stats.chunks_traced
        );
        assert_eq!(stats.entries, 0, "a cancelled fold is discarded whole, never cached");

        // The daemon is healthy: a live client still gets full service.
        let mut client = ServiceClient::connect(server.local_addr()).expect("client");
        let reply = client.query(&scenario(1, 10_000)).expect("query after cancellation");
        assert_eq!(reply.served, Served::Cold);
        assert_eq!(reply.photons_done, 10_000);
        server.shutdown();
    })
}

#[test]
fn hundred_plus_clients_share_one_loop_and_one_trace_per_key() {
    watchdog("hundred-client daemon", LIMIT, || {
        const CLIENTS: usize = 104;
        const KEYS: u64 = 8;

        let svc = service(2_000);
        let server = ServiceServer::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind daemon");
        let addr = server.local_addr();

        // 104 concurrent connections, 13 per key: the poll loop carries
        // them all on one thread while the in-flight claim table makes
        // sure each key's 4_000 photons are traced exactly once.
        let replies: Vec<(u64, Vec<u8>)> = (0..CLIENTS)
            .map(|i| {
                let seed = i as u64 % KEYS;
                thread::spawn(move || {
                    let mut client = loop {
                        match ServiceClient::connect(addr) {
                            Ok(c) => break c,
                            Err(_) => thread::sleep(Duration::from_millis(5)),
                        }
                    };
                    let reply = client.query(&scenario(seed, 4_000)).expect("query");
                    assert_eq!(reply.photons_done, 4_000);
                    (seed, wire::encode_tally(&reply.tally))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();

        // Every answer is bit-identical to a private service instance's
        // answer for the same key: a hundred multiplexed connections do
        // not change the bytes.
        let reference = service(2_000);
        for (seed, bytes) in &replies {
            let expect = reference.query(&scenario(*seed, 4_000)).expect("reference query");
            assert_eq!(
                bytes,
                &wire::encode_tally(&expect.tally),
                "seed {seed} served different bytes under load"
            );
        }

        // Exactly one trace per key, no matter how many sockets asked:
        // 8 keys x 2 chunks, 8 cold serves, 96 warm.
        let stats = svc.stats();
        assert_eq!(stats.chunks_traced, KEYS * 2, "load must not cause duplicate tracing");
        assert_eq!(stats.cold, KEYS);
        assert_eq!(stats.warm as usize, CLIENTS - KEYS as usize);
        server.shutdown();
    })
}
