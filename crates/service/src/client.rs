//! Client side of the daemon protocol: connect, HELLO, query.

use crate::proto::{self, KIND_ERROR, KIND_QUERY, KIND_RESULT};
use crate::service::{QueryReply, ServiceError};
use lumen_cluster::net::{handshake, read_frame, write_frame};
use lumen_cluster::wire;
use lumen_cluster::NetError;
use lumen_core::engine::Scenario;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected daemon session. One request is in flight at a time;
/// replies arrive in request order.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connect to a daemon and complete the HELLO version gate.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let mut stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        // A failed socket option is a broken connection in the making:
        // surface it now rather than serving queries with surprise latency.
        stream.set_nodelay(true).map_err(NetError::Io)?;
        handshake(&mut stream)?;
        Ok(Self { stream })
    }

    /// Submit `scenario` and wait for the served result.
    pub fn query(&mut self, scenario: &Scenario) -> Result<QueryReply, ServiceError> {
        write_frame(&mut self.stream, KIND_QUERY, &wire::encode_scenario(scenario))?;
        let (kind, payload) = read_frame(&mut self.stream)?;
        match kind {
            KIND_RESULT => Ok(proto::decode_reply(&payload).map_err(NetError::Wire)?),
            KIND_ERROR => {
                let msg = proto::decode_error(&payload).map_err(NetError::Wire)?;
                Err(ServiceError::Remote(msg))
            }
            other => Err(ServiceError::Net(NetError::BadKind(other))),
        }
    }
}
