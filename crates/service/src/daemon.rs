//! The daemon entry point shared by the `lumend` binary and
//! `lumen serve`: parse flags, bind, announce, park.

use crate::{ServiceOptions, ServiceServer, SimulationService};
use std::sync::Arc;

/// Flag reference, printed by `lumend --help` and on bad usage.
pub const USAGE: &str = "\
lumend - persistent simulation service daemon

USAGE:
    lumend [ADDR] [OPTIONS]

ARGS:
    ADDR                     address to bind [default: 127.0.0.1:7201]

OPTIONS:
    --backend <SPEC>         chunk backend: sequential | rayon [N] | cluster [N] | tcp <addr>
                             [default: rayon]
    --workers <N>            max concurrent backend runs [default: 2]
    --chunk-photons <N>      photons per cache chunk [default: 100000]
    --chunk-tasks <N>        task split inside one chunk [default: 64]
    --cache-bytes <N>        result cache byte budget [default: 67108864]
    -h, --help               print this help
";

/// Run the daemon until killed. Returns `Ok(())` only for `--help`;
/// otherwise it either serves forever or reports a startup error.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7201");
    let mut options = ServiceOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--backend" => options.backend_spec = value("--backend")?.to_string(),
            "--workers" => options.workers = parse(value("--workers")?, "--workers")?,
            "--chunk-photons" => {
                options.chunk_photons = parse(value("--chunk-photons")?, "--chunk-photons")?;
            }
            "--chunk-tasks" => {
                options.chunk_tasks = parse(value("--chunk-tasks")?, "--chunk-tasks")?;
            }
            "--cache-bytes" => {
                options.max_cache_bytes = parse(value("--cache-bytes")?, "--cache-bytes")?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional => addr = positional.to_string(),
        }
    }

    let service = SimulationService::new(options.clone()).map_err(|e| e.to_string())?;
    let server =
        ServiceServer::bind(addr.as_str(), Arc::new(service)).map_err(|e| e.to_string())?;
    println!(
        "lumend listening on {} (backend {}, {} workers, {} photons/chunk, {} MiB cache)",
        server.local_addr(),
        options.backend_spec,
        options.workers,
        options.chunk_photons,
        options.max_cache_bytes / (1024 * 1024),
    );
    // Serve until killed; all work happens on the server's threads.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}
