//! Service frames riding the cluster wire format.
//!
//! `lumend` speaks the same framing as the distributed runtime (4-byte
//! LE length + kind byte + payload, HELLO version gating first), with
//! three kinds of its own:
//!
//! * [`KIND_QUERY`] (client → daemon) — payload is
//!   `wire::encode_scenario` of the requested scenario.
//! * [`KIND_RESULT`] (daemon → client) — a [`QueryReply`]: cache key,
//!   served tag, photons done, and the wire-encoded tally.
//! * [`KIND_ERROR`] (daemon → client) — a typed error message; the
//!   daemon sends this instead of dropping the connection when a
//!   request is malformed or fails, so clients always get a diagnosis.
//!
//! Kind values continue the existing numbering (client-to-server kinds
//! count up from `0x01`, server-to-client kinds from `0x81`).

use crate::service::{QueryReply, Served};
use lumen_cluster::wire::{self, Decoder, Encoder, WireError};

/// Client → daemon: run (or fetch) this scenario.
pub const KIND_QUERY: u8 = 0x05;
/// Daemon → client: the served result.
pub const KIND_RESULT: u8 = 0x83;
/// Daemon → client: typed failure for the preceding request.
pub const KIND_ERROR: u8 = 0x84;

/// Encode a [`QueryReply`] for a [`KIND_RESULT`] frame.
pub fn encode_reply(reply: &QueryReply) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_bytes(&reply.key);
    e.put_u8(reply.served.tag());
    e.put_u64(reply.photons_done);
    e.put_bytes(&wire::encode_tally(&reply.tally));
    e.finish()
}

/// Decode a [`KIND_RESULT`] payload.
pub fn decode_reply(bytes: &[u8]) -> Result<QueryReply, WireError> {
    let mut d = Decoder::new(bytes)?;
    let key_bytes = d.get_bytes()?;
    let key: [u8; 32] = key_bytes.as_slice().try_into().map_err(|_| {
        WireError::Invalid(format!("cache key must be 32 bytes, got {}", key_bytes.len()))
    })?;
    let tag = d.get_u8()?;
    let served = Served::from_tag(tag)
        .ok_or_else(|| WireError::Invalid(format!("unknown served tag {tag}")))?;
    let photons_done = d.get_u64()?;
    let tally = wire::decode_tally(&d.get_bytes()?)?;
    d.finish()?;
    Ok(QueryReply { key, tally, photons_done, served })
}

/// Encode a daemon-side error message for a [`KIND_ERROR`] frame.
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(message);
    e.finish()
}

/// Decode a [`KIND_ERROR`] payload.
pub fn decode_error(bytes: &[u8]) -> Result<String, WireError> {
    let mut d = Decoder::new(bytes)?;
    let message = d.get_str()?;
    d.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::tally::Tally;

    fn reply() -> QueryReply {
        let mut tally = Tally::new(2, None, None);
        tally.launched = 12_345;
        tally.detected = 678;
        tally.detected_weight = 0.125;
        QueryReply { key: [0xAB; 32], tally, photons_done: 200_000, served: Served::TopUp }
    }

    #[test]
    fn reply_round_trips() {
        let r = reply();
        let decoded = decode_reply(&encode_reply(&r)).expect("round trip");
        assert_eq!(decoded, r);
    }

    #[test]
    fn error_round_trips() {
        let msg = "backend failed: out of photons";
        assert_eq!(decode_error(&encode_error(msg)).unwrap(), msg);
    }

    #[test]
    fn truncated_reply_is_rejected_not_panicking() {
        let bytes = encode_reply(&reply());
        for cut in 0..bytes.len() {
            assert!(decode_reply(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bad_served_tag_is_rejected() {
        let r = reply();
        let mut bytes = encode_reply(&r);
        // The tag byte sits right after the header and the length-prefixed
        // 32-byte key: 5 (header) + 8 (len) + 32 (key).
        bytes[5 + 8 + 32] = 9;
        assert!(matches!(decode_reply(&bytes), Err(WireError::Invalid(_))));
    }

    #[test]
    fn short_key_is_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[1, 2, 3]);
        e.put_u8(0);
        e.put_u64(0);
        e.put_bytes(&wire::encode_tally(&Tally::new(1, None, None)));
        assert!(matches!(decode_reply(&e.finish()), Err(WireError::Invalid(_))));
    }
}
