//! Canonical scenario hashing — the content address of a cached result.
//!
//! Two requests may share cached work exactly when they describe the same
//! *physics*: geometry, source, detector, engine options, and seed. How
//! much of it to run (`photons`) and how the budget is decomposed
//! (`tasks`, `task_offset`) are *execution* parameters — a request for
//! more photons of the same physics is served by topping up the cached
//! result, not by tracing from scratch — so they are factored out of the
//! key. Everything else in the scenario is key-relevant, including the
//! seed: different seeds draw different photon paths and must never share
//! an entry.
//!
//! The key is sha256 over `wire::encode_scenario` of the normalized
//! scenario (`photons = 0`, `tasks = 1`, `task_offset = 0`). Riding on
//! the wire codec means the hash covers exactly the fields a peer can
//! express, and the encoded [`wire::VERSION`] byte is part of the digest
//! — a wire-format revision deliberately invalidates every cached entry,
//! because old keys may not cover newly expressible fields.

use crate::sha256;
use lumen_cluster::wire;
use lumen_core::engine::Scenario;

/// A canonical scenario hash: 32 bytes of sha256.
pub type ScenarioKey = [u8; 32];

/// Compute the canonical cache key for `scenario`.
///
/// The photon budget and task decomposition are normalized away (see the
/// module docs); all physics fields and the seed remain key-relevant.
pub fn scenario_key(scenario: &Scenario) -> ScenarioKey {
    let mut normalized = scenario.clone();
    normalized.photons = 0;
    normalized.tasks = 1;
    normalized.task_offset = 0;
    sha256::digest(&wire::encode_scenario(&normalized))
}

/// Lowercase hex rendering of a key (what `lumen hash` prints).
pub fn key_hex(key: &ScenarioKey) -> String {
    key.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn scenario() -> Scenario {
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    #[test]
    fn budget_and_split_are_not_key_relevant() {
        let base = scenario_key(&scenario());
        assert_eq!(scenario_key(&scenario().with_photons(1)), base);
        assert_eq!(scenario_key(&scenario().with_photons(u64::MAX)), base);
        assert_eq!(scenario_key(&scenario().with_tasks(97)), base);
        assert_eq!(scenario_key(&scenario().with_task_offset(1 << 40)), base);
    }

    #[test]
    fn seed_and_physics_are_key_relevant() {
        let base = scenario_key(&scenario());
        assert_ne!(scenario_key(&scenario().with_seed(43)), base);
        let mut s = scenario();
        s.detector.radius += 0.25;
        assert_ne!(scenario_key(&s), base);
        let mut s = scenario();
        s.source = Source::Uniform { radius: 0.3 };
        assert_ne!(scenario_key(&s), base);
    }

    #[test]
    fn hex_is_64_lowercase_chars() {
        let h = key_hex(&scenario_key(&scenario()));
        assert_eq!(h.len(), 64);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
