//! `lumen-service` — the persistent simulation service.
//!
//! Everything upstream of this crate answers one scenario per
//! invocation. This crate makes simulation a *service*: a daemon
//! (`lumend`) that accepts scenario requests over the cluster wire
//! format and answers from a content-addressed result cache, tracing
//! photons only for work it has never seen.
//!
//! The pieces:
//!
//! * [`hash`] — the canonical scenario key: sha256 over the normalized
//!   wire encoding, with the photon budget and task decomposition
//!   factored out so "the same physics, more photons" shares an entry.
//! * [`cache`] — LRU + byte-budget storage of `(tally, chunk ledger)`
//!   per key, upgradable in place.
//! * [`service`] — [`SimulationService`]: chunk-quantized tracing with
//!   bit-exact incremental top-up (see its module docs for the
//!   prefix-extendable-fold argument), per-key in-flight dedup, and a
//!   bounded worker pool over any `lumen_cluster::backend` spec.
//! * [`proto`] / [`server`] / [`client`] — the QUERY/RESULT/ERROR frames
//!   and the TCP daemon/client speaking them, HELLO-gated exactly like
//!   the distributed runtime.
//!
//! Binaries: `lumend` (the daemon) and `lumen-load` (a load generator
//! recording cold/warm/top-up latency percentiles to
//! `BENCH_service.json`).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod hash;
pub mod proto;
pub mod server;
pub mod service;
pub mod sha256;

pub use cache::{CacheEntry, ResultCache};
pub use client::ServiceClient;
pub use hash::{key_hex, scenario_key, ScenarioKey};
pub use server::ServiceServer;
pub use service::{
    QueryReply, Served, ServiceError, ServiceOptions, ServiceStats, SimulationService,
};
