//! `lumend`'s TCP front end: one daemon, many query connections.
//!
//! Built on the shared transport core ([`lumen_net::EventLoop`]), the
//! same readiness loop that runs the cluster runtime: a single poll
//! thread owns every connection (hundreds multiplex fine — there is no
//! thread per socket to run out of), and the HELLO version gate matches
//! the cluster server's contract — the daemon always answers with its
//! own [`wire::VERSION`] before rejecting a mismatch, so an out-of-date
//! client can diagnose itself.
//!
//! Queries are the one thing that must *not* run on the poll thread — a
//! trace blocks for seconds — so the loop dispatches decoded scenarios
//! to a small executor pool ([`ServiceOptions::workers`](crate::service::ServiceOptions::workers)
//! threads) and results come back through a completion channel plus a
//! [`lumen_net::Waker`]. Each dispatched query carries a cancel flag the
//! loop raises the instant the querying connection dies, so a client
//! disconnect can burn at most one chunk of worker-pool budget instead
//! of tracing a full scenario nobody will read.
//!
//! Connections are fault-isolated: a malformed query earns a typed
//! [`KIND_ERROR`] reply on a connection that stays open, an unknown
//! frame kind earns one on a connection that then closes, and a client
//! that disconnects mid-response cancels only its own query. The shared
//! [`SimulationService`] (cache, in-flight claims, worker pool) outlives
//! any connection.

use crate::proto::{self, KIND_ERROR, KIND_QUERY, KIND_RESULT};
use crate::service::{QueryReply, ServiceError, SimulationService};
use lumen_cluster::net::{KIND_HELLO, KIND_PING};
use lumen_cluster::wire;
use lumen_cluster::NetError;
use lumen_core::engine::Scenario;
use lumen_net::{EventLoop, Flow, Handler, Ops, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handshake grace period, and how long a frame may take to finish
/// arriving once its first byte is here: a connection that is silent
/// pre-HELLO or stalls mid-frame past this is cut.
const STALL_GUARD: Duration = Duration::from_secs(10);

/// One query handed to the executor pool.
struct Job {
    token: Token,
    generation: u64,
    scenario: Scenario,
    cancel: Arc<AtomicBool>,
}

/// One finished query coming back to the poll loop.
struct Completion {
    token: Token,
    generation: u64,
    result: Result<QueryReply, ServiceError>,
}

/// A running daemon; dropping it (or calling [`ServiceServer::shutdown`])
/// stops the poll loop, cancels in-flight queries, and releases the port.
#[derive(Debug)]
pub struct ServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    loop_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServiceServer {
    /// Bind `addr` and start serving `service`: one poll-loop thread for
    /// all connections, [`ServiceOptions::workers`](crate::service::ServiceOptions::workers)
    /// executor threads for the traces.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<SimulationService>,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut events = EventLoop::new(listener)?;
        let waker = events.waker()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let jobs = Arc::new(Mutex::new(job_rx));
        let mut worker_threads = Vec::with_capacity(service.options().workers);
        for _ in 0..service.options().workers {
            let jobs = Arc::clone(&jobs);
            let service = Arc::clone(&service);
            let done_tx = done_tx.clone();
            let waker = waker.try_clone()?;
            worker_threads.push(thread::spawn(move || worker_loop(jobs, service, done_tx, waker)));
        }

        let loop_thread = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut daemon =
                    Daemon { peers: HashMap::new(), job_tx, done_rx, next_generation: 0, stop };
                // Loop failures (a dying listener) end the daemon; the
                // bound `ServiceServer` still shuts down cleanly.
                let _ = events.run(&mut daemon);
            })
        };

        Ok(Self { addr, stop, waker, loop_thread: Some(loop_thread), worker_threads })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving: close every connection, cancel in-flight queries,
    /// and join the loop and executor threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        // The loop thread dropped the job sender and cancelled every
        // dispatched query, so the workers drain and exit promptly.
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Executor thread: pull queries, run them against the shared service
/// (cancellable), hand results back to the poll loop.
fn worker_loop(
    jobs: Arc<Mutex<mpsc::Receiver<Job>>>,
    service: Arc<SimulationService>,
    done_tx: mpsc::Sender<Completion>,
    waker: Waker,
) {
    loop {
        // Hold the receiver lock only while waiting for one job; traces
        // run unlocked so the pool actually executes in parallel.
        let job = match jobs.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // daemon gone
            },
            Err(_) => return,
        };
        let result = service.query_with_cancel(&job.scenario, &job.cancel);
        if done_tx
            .send(Completion { token: job.token, generation: job.generation, result })
            .is_err()
        {
            return;
        }
        waker.wake();
    }
}

/// One connection's protocol state.
#[derive(Debug)]
enum Peer {
    /// Accepted, HELLO pending; cut at `deadline`.
    Hello { deadline: Instant },
    /// Handshaken and idle.
    Ready,
    /// A query is with the executor pool. Further queries queue here and
    /// are answered in order; `cancel` aborts the trace if the
    /// connection dies first.
    Busy { generation: u64, cancel: Arc<AtomicBool>, queued: VecDeque<Vec<u8>> },
}

/// The daemon protocol as a [`Handler`] on the shared poll loop.
struct Daemon {
    peers: HashMap<Token, Peer>,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Completion>,
    next_generation: u64,
    stop: Arc<AtomicBool>,
}

impl Daemon {
    /// Decode and dispatch one query, carrying over `queued` follow-ups.
    /// Malformed payloads are answered inline (typed, connection stays
    /// open) and the next queued query is tried.
    fn start_query(
        &mut self,
        ops: &mut Ops<'_>,
        token: Token,
        payload: Vec<u8>,
        mut queued: VecDeque<Vec<u8>>,
    ) {
        let mut next = Some(payload);
        while let Some(bytes) = next.take() {
            match wire::decode_scenario(&bytes) {
                Err(e) => {
                    let msg = format!("malformed scenario: {e}");
                    ops.send(token, KIND_ERROR, &proto::encode_error(&msg));
                    next = queued.pop_front();
                }
                Ok(scenario) => {
                    self.next_generation += 1;
                    let generation = self.next_generation;
                    let cancel = Arc::new(AtomicBool::new(false));
                    let job = Job { token, generation, scenario, cancel: Arc::clone(&cancel) };
                    if self.job_tx.send(job).is_err() {
                        // Executor pool gone: the daemon is shutting down.
                        ops.close(token);
                        self.peers.remove(&token);
                        return;
                    }
                    self.peers.insert(token, Peer::Busy { generation, cancel, queued });
                    return;
                }
            }
        }
        self.peers.insert(token, Peer::Ready);
    }
}

impl Handler for Daemon {
    fn on_open(&mut self, _ops: &mut Ops<'_>, token: Token) {
        self.peers.insert(token, Peer::Hello { deadline: Instant::now() + STALL_GUARD });
    }

    fn on_frame(&mut self, ops: &mut Ops<'_>, token: Token, kind: u8, payload: Vec<u8>) {
        match self.peers.get_mut(&token) {
            None => ops.close(token),
            Some(Peer::Hello { .. }) => {
                // The gate: anything but a well-formed HELLO closes the
                // connection without serving. A mismatched version is
                // answered with ours first, so the peer can diagnose
                // itself.
                let version = (kind == KIND_HELLO).then(|| payload.first().copied()).flatten();
                match version {
                    Some(theirs) => {
                        ops.send(token, KIND_HELLO, &[wire::VERSION]);
                        if theirs == wire::VERSION {
                            self.peers.insert(token, Peer::Ready);
                        } else {
                            self.peers.remove(&token);
                            ops.finish(token);
                        }
                    }
                    None => {
                        self.peers.remove(&token);
                        ops.close(token);
                    }
                }
            }
            Some(Peer::Ready) => match kind {
                KIND_PING => {
                    ops.send(token, KIND_PING, &payload);
                }
                KIND_QUERY => self.start_query(ops, token, payload, VecDeque::new()),
                other => {
                    // Typed rejection, then close: an unknown kind means
                    // the peer and daemon disagree about the protocol.
                    let msg = format!("unsupported frame kind 0x{other:02x}");
                    ops.send(token, KIND_ERROR, &proto::encode_error(&msg));
                    self.peers.remove(&token);
                    ops.finish(token);
                }
            },
            Some(Peer::Busy { cancel, queued, .. }) => match kind {
                KIND_PING => {
                    ops.send(token, KIND_PING, &payload);
                }
                KIND_QUERY => queued.push_back(payload),
                other => {
                    cancel.store(true, Ordering::Relaxed);
                    let msg = format!("unsupported frame kind 0x{other:02x}");
                    ops.send(token, KIND_ERROR, &proto::encode_error(&msg));
                    self.peers.remove(&token);
                    ops.finish(token);
                }
            },
        }
    }

    fn on_close(&mut self, _ops: &mut Ops<'_>, token: Token) {
        // The instant a querying client dies, its trace is told to stop:
        // this is what keeps a disconnect from burning minutes of
        // worker-pool budget on an answer nobody will read.
        if let Some(Peer::Busy { cancel, .. }) = self.peers.remove(&token) {
            cancel.store(true, Ordering::Relaxed);
        }
    }

    fn on_wake(&mut self, ops: &mut Ops<'_>) {
        while let Ok(done) = self.done_rx.try_recv() {
            let queued = match self.peers.get_mut(&done.token) {
                Some(Peer::Busy { generation, queued, .. }) if *generation == done.generation => {
                    std::mem::take(queued)
                }
                // Connection gone (its cancel produced this completion)
                // or superseded: nobody is waiting for these bytes.
                _ => continue,
            };
            match done.result {
                Ok(reply) => {
                    ops.send(done.token, KIND_RESULT, &proto::encode_reply(&reply));
                }
                Err(e) => {
                    ops.send(done.token, KIND_ERROR, &proto::encode_error(&e.to_string()));
                }
            }
            let mut queued = queued;
            match queued.pop_front() {
                Some(next) => self.start_query(ops, done.token, next, queued),
                None => {
                    self.peers.insert(done.token, Peer::Ready);
                }
            }
        }
    }

    fn on_tick(&mut self, ops: &mut Ops<'_>, now: Instant) -> Flow {
        if self.stop.load(Ordering::Relaxed) {
            // Cancel every in-flight trace so the executor pool drains
            // promptly, then stop (dropping the loop cuts the sockets).
            for peer in self.peers.values() {
                if let Peer::Busy { cancel, .. } = peer {
                    cancel.store(true, Ordering::Relaxed);
                }
            }
            return Flow::Stop;
        }
        // Stall guards: a silent pre-HELLO connection, or one stuck
        // mid-frame past the guard, is cut. (A handshaken connection
        // idling *between* frames is fine — sessions are long-lived.)
        let cut: Vec<Token> = self
            .peers
            .iter()
            .filter(|(&token, peer)| match peer {
                Peer::Hello { deadline } => now >= *deadline,
                _ => {
                    ops.mid_frame(token)
                        && ops.read_idle(token, now).is_some_and(|idle| idle >= STALL_GUARD)
                }
            })
            .map(|(&token, _)| token)
            .collect();
        for token in cut {
            self.peers.remove(&token);
            ops.close(token);
        }
        Flow::Continue
    }
}
