//! `lumend`'s TCP front end: one daemon, many query connections.
//!
//! Mirrors the cluster runtime's server shape (`lumen_cluster::net`): a
//! non-blocking accept loop polling a stop flag, one detached thread per
//! connection, and the same HELLO version gate — the server always
//! answers with its own [`wire::VERSION`] before rejecting a mismatch,
//! so an out-of-date client can diagnose itself.
//!
//! Connection threads are fault-isolated: a malformed frame earns a
//! typed [`KIND_ERROR`] reply and a closed
//! connection, and a client that disconnects mid-response kills only its
//! own thread. The shared [`SimulationService`] (cache, in-flight
//! claims, worker pool) outlives any connection.

use crate::proto::{self, KIND_ERROR, KIND_QUERY, KIND_RESULT};
use crate::service::{ServiceError, SimulationService};
use lumen_cluster::net::{read_frame, write_frame, KIND_HELLO, KIND_PING};
use lumen_cluster::wire::{self, WireError};
use lumen_cluster::NetError;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-loop poll interval while checking the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Idle-read poll interval on connection threads, and the handshake
/// grace period: a connection that never says HELLO is cut after this.
const READ_POLL: Duration = Duration::from_millis(250);
/// How long a frame may take to finish arriving once its first byte is
/// here; a peer that stalls mid-frame past this is dropped.
const STALL_GUARD: Duration = Duration::from_secs(10);

/// A running daemon; dropping it (or calling [`ServiceServer::shutdown`])
/// stops the accept loop and releases the port.
#[derive(Debug)]
pub struct ServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServiceServer {
    /// Bind `addr` and start serving `service` in background threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<SimulationService>,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let service = Arc::clone(&service);
                            let stop = Arc::clone(&stop);
                            // Detached: bounded by the stop flag via the
                            // read timeout, or by its socket closing.
                            thread::spawn(move || connection_loop(stream, service, stop));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Self { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and wind down connection threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve one connection until it closes, errs, or the daemon stops.
fn connection_loop(mut stream: TcpStream, service: Arc<SimulationService>, stop: Arc<AtomicBool>) {
    stream.set_nodelay(true).ok();
    // The handshake gets the stall guard as its grace period — a silent
    // connection can never pin a thread longer than that.
    stream.set_read_timeout(Some(STALL_GUARD)).ok();
    if handshake_server(&mut stream).is_err() {
        // The rejected peer already holds our version; just close.
        return;
    }
    stream.set_read_timeout(Some(READ_POLL)).ok();
    while !stop.load(Ordering::Relaxed) {
        // Idle-poll with `peek` so a timeout can never fire mid-frame and
        // desync the framing: `read_frame` only runs once bytes are
        // actually waiting (under a generous stall guard).
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => return, // orderly close
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle: poll the stop flag again
            }
            Err(_) => return,
        }
        stream.set_read_timeout(Some(STALL_GUARD)).ok();
        let result = read_frame(&mut stream);
        stream.set_read_timeout(Some(READ_POLL)).ok();
        let (kind, payload) = match result {
            Ok(frame) => frame,
            Err(_) => return, // closed, stalled mid-frame, or malformed framing
        };
        let outcome = match kind {
            KIND_PING => write_frame(&mut stream, KIND_PING, &payload),
            KIND_QUERY => answer_query(&mut stream, &service, &payload),
            other => {
                // Typed rejection, then close: an unknown kind means the
                // peer and daemon disagree about the protocol.
                let msg = format!("unsupported frame kind 0x{other:02x}");
                let _ = write_frame(&mut stream, KIND_ERROR, &proto::encode_error(&msg));
                return;
            }
        };
        if outcome.is_err() {
            // Client went away (possibly mid-response). Only this
            // connection dies; the service and other clients carry on.
            return;
        }
    }
}

/// Decode, serve, and answer one QUERY frame. `Err` only for socket
/// failures — request-level problems become [`KIND_ERROR`] frames.
fn answer_query(
    stream: &mut TcpStream,
    service: &SimulationService,
    payload: &[u8],
) -> Result<(), NetError> {
    let reply = wire::decode_scenario(payload)
        .map_err(|e| ServiceError::InvalidConfig(format!("malformed scenario: {e}")))
        .and_then(|scenario| service.query(&scenario));
    match reply {
        Ok(reply) => write_frame(stream, KIND_RESULT, &proto::encode_reply(&reply)),
        Err(e) => write_frame(stream, KIND_ERROR, &proto::encode_error(&e.to_string())),
    }
}

/// Server half of the HELLO gate (same contract as the cluster server:
/// answer with our version first, then reject a mismatch).
fn handshake_server(stream: &mut TcpStream) -> Result<(), NetError> {
    let (kind, payload) = read_frame(stream)?;
    if kind != KIND_HELLO {
        return Err(NetError::BadKind(kind));
    }
    let theirs = *payload.first().ok_or(NetError::Wire(WireError::Truncated))?;
    write_frame(stream, KIND_HELLO, &[wire::VERSION])?;
    if theirs != wire::VERSION {
        return Err(NetError::VersionMismatch { ours: wire::VERSION, theirs });
    }
    Ok(())
}
