//! The content-addressed result cache: LRU order under a byte budget.
//!
//! Each entry stores the merged tally for some number of completed
//! *chunks* of a scenario's photon budget, plus the seed ledger that
//! makes the entry upgradable: `(chunk_photons, chunk_tasks, chunks)`
//! says exactly which RNG streams the tally consumed — streams
//! `0 .. chunks * chunk_tasks` of the scenario's seed — so a top-up can
//! continue on fresh streams with no bookkeeping beyond the chunk count.
//!
//! Entry sizes are measured with the wire encoding of the tally (the
//! same bytes a reply ships), so the byte budget tracks real memory
//! footprint including optional grids and histograms, not a struct size
//! guess. Eviction is strict LRU, with one exception: the entry being
//! inserted or refreshed is never evicted by its own insertion, so a
//! single result larger than the whole budget still caches (and evicts
//! everything else).

use crate::hash::ScenarioKey;
use lumen_cluster::wire;
use lumen_core::tally::Tally;
use std::collections::HashMap;

/// One cached result and its upgrade ledger.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Left fold of the per-chunk tallies, in chunk order.
    pub tally: Tally,
    /// Chunks completed; the cached photon budget is
    /// `chunks * chunk_photons`.
    pub chunks: u64,
    /// Photons per chunk when this entry was traced.
    pub chunk_photons: u64,
    /// Internal task split of each chunk — with `chunks`, the seed
    /// ledger: streams `0 .. chunks * chunk_tasks` are consumed.
    pub chunk_tasks: u64,
    /// Measured wire size of the tally plus key overhead.
    pub bytes: usize,
}

impl CacheEntry {
    /// Photons the cached tally covers.
    pub fn photons_done(&self) -> u64 {
        self.chunks * self.chunk_photons
    }
}

/// LRU + byte-budget cache keyed by canonical scenario hash.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<ScenarioKey, CacheEntry>,
    /// Access order, oldest first. Touched on every hit and insert.
    lru: Vec<ScenarioKey>,
    total_bytes: usize,
    max_bytes: usize,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `max_bytes` of encoded tallies.
    pub fn new(max_bytes: usize) -> Self {
        Self { map: HashMap::new(), lru: Vec::new(), total_bytes: 0, max_bytes, evictions: 0 }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &ScenarioKey) -> Option<&CacheEntry> {
        if self.map.contains_key(key) {
            self.touch(key);
        }
        self.map.get(key)
    }

    /// Store (or upgrade) the entry for `key`, then evict least-recently
    /// used entries until the byte budget holds. The entry just written
    /// is exempt from its own insertion's eviction pass.
    pub fn insert(
        &mut self,
        key: ScenarioKey,
        tally: Tally,
        chunks: u64,
        chunk_photons: u64,
        chunk_tasks: u64,
    ) {
        let bytes = wire::encode_tally(&tally).len() + std::mem::size_of::<ScenarioKey>();
        if let Some(old) = self.map.remove(&key) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
        self.map.insert(key, CacheEntry { tally, chunks, chunk_photons, chunk_tasks, bytes });
        self.touch(&key);
        while self.total_bytes > self.max_bytes && self.lru.len() > 1 {
            let victim = self.lru.remove(0);
            if let Some(entry) = self.map.remove(&victim) {
                self.total_bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
    }

    fn touch(&mut self, key: &ScenarioKey) {
        self.lru.retain(|k| k != key);
        self.lru.push(*key);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently held (wire-encoded tallies plus key overhead).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> ScenarioKey {
        [tag; 32]
    }

    fn tally() -> Tally {
        let mut t = Tally::new(1, None, None);
        t.launched = 100;
        t
    }

    #[test]
    fn get_refreshes_recency_and_insert_evicts_oldest() {
        let one = wire::encode_tally(&tally()).len() + 32;
        let mut cache = ResultCache::new(2 * one + 1); // room for two entries
        cache.insert(key(1), tally(), 1, 100, 4);
        cache.insert(key(2), tally(), 1, 100, 4);
        assert_eq!(cache.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), tally(), 1, 100, 4);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn oversized_entry_still_caches_alone() {
        let mut cache = ResultCache::new(1); // smaller than any entry
        cache.insert(key(1), tally(), 1, 100, 4);
        assert_eq!(cache.len(), 1, "the newest entry is never self-evicted");
        cache.insert(key(2), tally(), 1, 100, 4);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn upgrading_an_entry_replaces_bytes_not_duplicates() {
        let mut cache = ResultCache::new(usize::MAX);
        cache.insert(key(1), tally(), 1, 100, 4);
        let before = cache.total_bytes();
        cache.insert(key(1), tally(), 2, 100, 4);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_bytes(), before, "same tally shape, same bytes");
        assert_eq!(cache.get(&key(1)).unwrap().chunks, 2);
        assert_eq!(cache.get(&key(1)).unwrap().photons_done(), 200);
    }
}
