//! The in-process simulation service: content-addressed caching with
//! incremental top-up, behind a bounded worker pool.
//!
//! # Why cached results can be upgraded
//!
//! `Tally::merge` left-folds, and a left fold is *prefix-extendable*:
//! `fold(c_0..c_n) == fold(fold(c_0..c_k), c_k, ..., c_{n-1})` holds bit
//! for bit (float addition is not associative, so two multi-chunk
//! partial folds merged together would differ in the last ulp — the
//! service never does that). The photon budget is therefore quantized
//! into fixed *chunks*: chunk `j` is a backend run of
//! [`ServiceOptions::chunk_photons`] photons split over
//! [`ServiceOptions::chunk_tasks`] tasks starting at RNG stream
//! `j * chunk_tasks` (`Scenario::task_offset`). A chunk's tally is a
//! pure function of `(physics, seed, j)` — every backend returns
//! bit-identical tallies for the same scenario — so the cached result
//! at `n` chunks is the same bytes no matter how many queries, cold or
//! top-up, it took to get there.
//!
//! # Concurrency
//!
//! Requests arrive from many threads (the daemon's executor pool, or
//! library callers). A per-key in-flight set (mutex + condvar) ensures
//! two clients asking for the same uncached scenario trace it once:
//! the second blocks until the first stores, then is served warm from
//! cache. Distinct keys trace concurrently, bounded by a counting
//! semaphore of [`ServiceOptions::workers`] backend runs. A query can
//! be abandoned cooperatively ([`SimulationService::query_with_cancel`]):
//! the cancel flag is checked before the permit and before every
//! chunk, and a cancelled fold is discarded whole — never cached — so
//! cache contents can never depend on how far an abandoned query got.

use crate::cache::ResultCache;
use crate::hash::{scenario_key, ScenarioKey};
use lumen_core::engine::{EngineError, Scenario};
use lumen_core::tally::Tally;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Tuning knobs for [`SimulationService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOptions {
    /// Backend spec resolved through `lumen_cluster::backend::from_spec`
    /// for every chunk run (`sequential`, `rayon [threads]`,
    /// `cluster [workers]`, `tcp <addr>`, ...).
    pub backend_spec: String,
    /// Photons per cache chunk. Requested budgets round **up** to whole
    /// chunks, and the actually-simulated budget is recorded in each
    /// response; larger chunks amortize per-run overhead, smaller ones
    /// quantize budgets (and top-ups) more finely.
    pub chunk_photons: u64,
    /// Task split inside one chunk — the intra-chunk parallelism handed
    /// to the backend. Part of the deterministic chunk decomposition:
    /// changing it changes which streams each chunk consumes, so it is
    /// fixed per service instance, not per request.
    pub chunk_tasks: u64,
    /// Byte budget for the result cache (wire-encoded tallies).
    pub max_cache_bytes: usize,
    /// Maximum concurrent backend runs across all requests.
    pub workers: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        Self {
            backend_spec: "rayon".into(),
            chunk_photons: 100_000,
            chunk_tasks: 64,
            max_cache_bytes: 64 * 1024 * 1024,
            workers: 2,
        }
    }
}

impl ServiceOptions {
    /// Builder-style backend spec.
    pub fn with_backend(mut self, spec: impl Into<String>) -> Self {
        self.backend_spec = spec.into();
        self
    }

    /// Builder-style chunk photon count.
    pub fn with_chunk_photons(mut self, chunk_photons: u64) -> Self {
        self.chunk_photons = chunk_photons;
        self
    }

    /// Builder-style intra-chunk task split.
    pub fn with_chunk_tasks(mut self, chunk_tasks: u64) -> Self {
        self.chunk_tasks = chunk_tasks;
        self
    }

    /// Builder-style cache byte budget.
    pub fn with_max_cache_bytes(mut self, max_cache_bytes: usize) -> Self {
        self.max_cache_bytes = max_cache_bytes;
        self
    }

    /// Builder-style worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        if self.chunk_photons == 0 || self.chunk_tasks == 0 {
            return Err(ServiceError::InvalidConfig(
                "chunk_photons and chunk_tasks must be >= 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(ServiceError::InvalidConfig("workers must be >= 1".into()));
        }
        // Resolve the spec once up front so a typo fails service
        // construction, not the first query.
        lumen_cluster::backend::from_spec(&self.backend_spec)
            .map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
        Ok(())
    }
}

/// How a query was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Nothing cached: every chunk was traced.
    Cold,
    /// Fully served from cache; no photon was traced.
    Warm,
    /// A cached prefix was extended with freshly traced chunks.
    TopUp,
}

impl Served {
    /// Stable name, used in logs and the load generator's JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Served::Cold => "cold",
            Served::Warm => "warm",
            Served::TopUp => "topup",
        }
    }

    /// Wire tag (see `crate::proto`).
    pub fn tag(self) -> u8 {
        match self {
            Served::Cold => 0,
            Served::Warm => 1,
            Served::TopUp => 2,
        }
    }

    /// Inverse of [`Served::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Served::Cold),
            1 => Some(Served::Warm),
            2 => Some(Served::TopUp),
            _ => None,
        }
    }
}

/// A served query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Canonical scenario hash the result is cached under.
    pub key: ScenarioKey,
    /// The merged tally at `photons_done` photons.
    pub tally: Tally,
    /// Photons the tally actually covers — at least the requested
    /// budget (budgets quantize up to whole chunks, and a warm hit may
    /// return a larger cached budget).
    pub photons_done: u64,
    /// How this reply was produced.
    pub served: Served,
}

/// Typed service failures.
#[derive(Debug)]
pub enum ServiceError {
    /// Bad scenario or service configuration.
    InvalidConfig(String),
    /// A backend failed while tracing chunks.
    Backend(String),
    /// Networking failed (client/server layers).
    Net(lumen_cluster::NetError),
    /// The remote daemon answered with a typed error frame.
    Remote(String),
    /// The query's cancel flag was raised (its client disconnected)
    /// before tracing finished; remaining chunks were skipped.
    Cancelled,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            ServiceError::Backend(reason) => write!(f, "backend failed: {reason}"),
            ServiceError::Net(e) => write!(f, "net: {e}"),
            ServiceError::Remote(reason) => write!(f, "daemon error: {reason}"),
            ServiceError::Cancelled => write!(f, "query cancelled before tracing finished"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<lumen_cluster::NetError> for ServiceError {
    fn from(e: lumen_cluster::NetError) -> Self {
        ServiceError::Net(e)
    }
}

/// Counters observable through [`SimulationService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Replies by kind.
    pub cold: u64,
    /// Fully-cached replies.
    pub warm: u64,
    /// Cache-extension replies.
    pub topup: u64,
    /// Chunks actually traced (the "work done" measure: concurrent
    /// same-key requests trace each chunk exactly once; chunks traced by
    /// a query that was later cancelled count too).
    pub chunks_traced: u64,
    /// Queries abandoned via their cancel flag (dead clients detected
    /// before or during tracing, their remaining chunks skipped).
    pub cancelled: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Live cache entries.
    pub entries: u64,
    /// Bytes the live entries hold.
    pub cached_bytes: u64,
}

/// Cache state + in-flight key set, guarded by one mutex so a miss can
/// atomically claim its key.
#[derive(Debug)]
struct State {
    cache: ResultCache,
    inflight: HashSet<ScenarioKey>,
}

#[derive(Debug, Default)]
struct Counts {
    queries: u64,
    cold: u64,
    warm: u64,
    topup: u64,
    chunks_traced: u64,
    cancelled: u64,
}

/// The persistent simulation service (in-process core; `crate::server`
/// exposes it over TCP).
#[derive(Debug)]
pub struct SimulationService {
    options: ServiceOptions,
    state: Mutex<State>,
    state_cv: Condvar,
    permits: Mutex<usize>,
    permits_cv: Condvar,
    counts: Mutex<Counts>,
}

/// RAII worker-pool permit.
struct Permit<'a> {
    service: &'a SimulationService,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut free = self.service.permits.lock().expect("worker pool");
        *free += 1;
        self.service.permits_cv.notify_one();
    }
}

impl SimulationService {
    /// Build a service, validating the options (including resolving the
    /// backend spec once).
    pub fn new(options: ServiceOptions) -> Result<Self, ServiceError> {
        options.validate()?;
        Ok(Self {
            state: Mutex::new(State {
                cache: ResultCache::new(options.max_cache_bytes),
                inflight: HashSet::new(),
            }),
            state_cv: Condvar::new(),
            permits: Mutex::new(options.workers),
            permits_cv: Condvar::new(),
            counts: Mutex::new(Counts::default()),
            options,
        })
    }

    /// The options the service was built with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Answer one scenario request: warm from cache, top-up, or cold.
    ///
    /// The request's `tasks` and `task_offset` are ignored — the service
    /// owns the chunk decomposition (they are not key-relevant either,
    /// see [`scenario_key`]). Only the physics, seed, and photon budget
    /// matter.
    pub fn query(&self, scenario: &Scenario) -> Result<QueryReply, ServiceError> {
        self.query_with_cancel(scenario, &AtomicBool::new(false))
    }

    /// [`SimulationService::query`] with a cancel flag, checked before
    /// the trace and between chunks. Raising it (the daemon does so the
    /// instant a querying client disconnects) abandons the remaining
    /// chunks with [`ServiceError::Cancelled`] instead of burning
    /// worker-pool budget on an answer nobody will read. Warm cache hits
    /// still serve — only tracing is cancellable work.
    pub fn query_with_cancel(
        &self,
        scenario: &Scenario,
        cancel: &AtomicBool,
    ) -> Result<QueryReply, ServiceError> {
        scenario.validate().map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
        let key = scenario_key(scenario);
        let want_chunks = scenario.photons.div_ceil(self.options.chunk_photons).max(1);
        self.options
            .chunk_tasks
            .checked_mul(want_chunks)
            .and_then(|streams| {
                self.options.chunk_photons.checked_mul(want_chunks).map(|_| streams)
            })
            .ok_or_else(|| {
                ServiceError::InvalidConfig("photon budget overflows the chunk ledger".into())
            })?;

        // Claim the key or wait for whoever holds it.
        let (mut acc, have_chunks) = {
            let mut st = self.state.lock().expect("service state");
            loop {
                if let Some(entry) = st.cache.get(&key) {
                    if entry.chunks >= want_chunks {
                        let reply = QueryReply {
                            key,
                            tally: entry.tally.clone(),
                            photons_done: entry.photons_done(),
                            served: Served::Warm,
                        };
                        drop(st);
                        self.note(Served::Warm);
                        return Ok(reply);
                    }
                }
                if !st.inflight.contains(&key) {
                    st.inflight.insert(key);
                    let base = match st.cache.get(&key) {
                        Some(entry) => (entry.tally.clone(), entry.chunks),
                        None => (scenario.simulation().new_tally(), 0),
                    };
                    break base;
                }
                st = self.state_cv.wait(st).expect("service state");
            }
        };

        // Trace the missing chunks outside the state lock, bounded by
        // the worker pool; always release the in-flight claim.
        let traced = self.trace_chunks(scenario, &mut acc, have_chunks, want_chunks, cancel);
        let mut st = self.state.lock().expect("service state");
        st.inflight.remove(&key);
        let outcome = match traced {
            Ok(()) => {
                st.cache.insert(
                    key,
                    acc.clone(),
                    want_chunks,
                    self.options.chunk_photons,
                    self.options.chunk_tasks,
                );
                let served = if have_chunks == 0 { Served::Cold } else { Served::TopUp };
                Ok(QueryReply {
                    key,
                    tally: acc,
                    photons_done: want_chunks * self.options.chunk_photons,
                    served,
                })
            }
            Err(e) => Err(e),
        };
        drop(st);
        self.state_cv.notify_all();
        match &outcome {
            Ok(reply) => self.note(reply.served),
            Err(ServiceError::Cancelled) => self.note_cancelled(),
            Err(_) => {}
        }
        outcome
    }

    /// Left-fold chunks `have..want` onto `acc` (see the module docs for
    /// why this is the only merge order that preserves bit-identity).
    /// The cancel flag is checked before every chunk, so a dead client
    /// costs at most one chunk of wasted tracing; a cancelled fold is
    /// discarded whole (never cached) so the outcome of a query can
    /// never depend on how far an abandoned one happened to get.
    fn trace_chunks(
        &self,
        scenario: &Scenario,
        acc: &mut Tally,
        have: u64,
        want: u64,
        cancel: &AtomicBool,
    ) -> Result<(), ServiceError> {
        if cancel.load(Ordering::Relaxed) {
            return Err(ServiceError::Cancelled);
        }
        let _permit = self.acquire_permit();
        let backend =
            lumen_cluster::backend::from_spec(&self.options.backend_spec).map_err(engine_error)?;
        for chunk in have..want {
            // Re-check between the cache-claim/permit wait and each
            // backend run: disconnects land mid-trace, not politely
            // before it.
            if cancel.load(Ordering::Relaxed) {
                return Err(ServiceError::Cancelled);
            }
            let piece = scenario
                .clone()
                .with_photons(self.options.chunk_photons)
                .with_tasks(self.options.chunk_tasks)
                .with_task_offset(chunk * self.options.chunk_tasks);
            let report = backend.run(&piece).map_err(engine_error)?;
            acc.merge(&report.result.tally);
            self.note_chunk();
        }
        Ok(())
    }

    fn acquire_permit(&self) -> Permit<'_> {
        let mut free = self.permits.lock().expect("worker pool");
        while *free == 0 {
            free = self.permits_cv.wait(free).expect("worker pool");
        }
        *free -= 1;
        Permit { service: self }
    }

    fn note(&self, served: Served) {
        let mut c = self.counts.lock().expect("service counts");
        c.queries += 1;
        match served {
            Served::Cold => c.cold += 1,
            Served::Warm => c.warm += 1,
            Served::TopUp => c.topup += 1,
        }
    }

    /// One chunk actually traced — counted as the work happens, so the
    /// ledger is accurate even for queries that later cancel or fail.
    fn note_chunk(&self) {
        self.counts.lock().expect("service counts").chunks_traced += 1;
    }

    fn note_cancelled(&self) {
        self.counts.lock().expect("service counts").cancelled += 1;
    }

    /// Snapshot the service counters and cache state.
    pub fn stats(&self) -> ServiceStats {
        let c = self.counts.lock().expect("service counts");
        let st = self.state.lock().expect("service state");
        ServiceStats {
            queries: c.queries,
            cold: c.cold,
            warm: c.warm,
            topup: c.topup,
            chunks_traced: c.chunks_traced,
            cancelled: c.cancelled,
            evictions: st.cache.evictions(),
            entries: st.cache.len() as u64,
            cached_bytes: st.cache.total_bytes() as u64,
        }
    }
}

fn engine_error(e: EngineError) -> ServiceError {
    match e {
        EngineError::InvalidConfig(reason) => ServiceError::InvalidConfig(reason),
        other => ServiceError::Backend(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn scenario(photons: u64) -> Scenario {
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
        .with_photons(photons)
        .with_seed(11)
    }

    fn service(chunk: u64) -> SimulationService {
        SimulationService::new(
            ServiceOptions::default()
                .with_backend("sequential")
                .with_chunk_photons(chunk)
                .with_chunk_tasks(4),
        )
        .expect("valid options")
    }

    #[test]
    fn repeat_query_is_warm_and_byte_identical() {
        let svc = service(1_000);
        let first = svc.query(&scenario(2_000)).unwrap();
        assert_eq!(first.served, Served::Cold);
        assert_eq!(first.photons_done, 2_000);
        let second = svc.query(&scenario(2_000)).unwrap();
        assert_eq!(second.served, Served::Warm);
        assert_eq!(second.tally, first.tally);
        assert_eq!(svc.stats().chunks_traced, 2);
    }

    #[test]
    fn smaller_budget_is_served_from_the_larger_cache_entry() {
        let svc = service(1_000);
        let big = svc.query(&scenario(3_000)).unwrap();
        let small = svc.query(&scenario(1_000)).unwrap();
        assert_eq!(small.served, Served::Warm);
        assert_eq!(small.tally, big.tally, "cached tally returned as-is");
        assert_eq!(small.photons_done, 3_000, "response records the cached budget");
    }

    #[test]
    fn topup_equals_cold_run_bit_for_bit() {
        let warm_path = service(1_000);
        let a = warm_path.query(&scenario(1_000)).unwrap();
        assert_eq!(a.served, Served::Cold);
        let b = warm_path.query(&scenario(4_000)).unwrap();
        assert_eq!(b.served, Served::TopUp);

        let cold_path = service(1_000);
        let c = cold_path.query(&scenario(4_000)).unwrap();
        assert_eq!(c.served, Served::Cold);
        assert_eq!(b.tally, c.tally, "top-up path and cold path give the same bits");
        assert_eq!(b.photons_done, c.photons_done);
    }

    #[test]
    fn budgets_quantize_up_to_whole_chunks() {
        let svc = service(1_000);
        let reply = svc.query(&scenario(1_500)).unwrap();
        assert_eq!(reply.photons_done, 2_000);
        assert_eq!(reply.tally.launched, 2_000);
    }

    #[test]
    fn different_seeds_do_not_share_entries() {
        let svc = service(1_000);
        let a = svc.query(&scenario(1_000)).unwrap();
        let b = svc.query(&scenario(1_000).with_seed(99)).unwrap();
        assert_eq!(b.served, Served::Cold);
        assert_ne!(a.key, b.key);
        assert_ne!(a.tally, b.tally);
    }

    #[test]
    fn invalid_scenario_is_a_typed_error() {
        let svc = service(1_000);
        let mut bad = scenario(1_000);
        bad.detector.radius = -1.0;
        assert!(matches!(svc.query(&bad), Err(ServiceError::InvalidConfig(_))));
    }

    #[test]
    fn bad_backend_spec_fails_construction() {
        let err = SimulationService::new(ServiceOptions::default().with_backend("quantum"));
        assert!(matches!(err, Err(ServiceError::InvalidConfig(_))));
    }
}
