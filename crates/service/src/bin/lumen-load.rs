//! `lumen-load` — load generator for the simulation service.
//!
//! Drives a daemon through three phases and records latency percentiles
//! per phase into `BENCH_service.json`:
//!
//! * **cold** — distinct seeds, so every request misses the cache and
//!   traces its full budget;
//! * **warm** — the same requests again, served straight from cache;
//! * **top-up** — the same keys at a doubled budget, extending each
//!   cached entry with only the missing chunks.
//!
//! By default an in-process daemon is spun up on an ephemeral port so
//! the tool is self-contained (the CI perf-smoke job runs it exactly
//! like that); point `--addr` at a running `lumend` to measure a real
//! deployment over the wire.

use lumen_core::engine::Scenario;
use lumen_core::{Detector, Source};
use lumen_service::{Served, ServiceClient, ServiceOptions, ServiceServer, SimulationService};
use lumen_tissue::presets::semi_infinite_phantom;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
lumen-load - latency load generator for the simulation service

USAGE:
    lumen-load [OPTIONS]

OPTIONS:
    --addr <ADDR>            measure a running lumend instead of an
                             in-process daemon on an ephemeral port
    --requests <N>           distinct scenarios per phase [default: 12]
    --photons <N>            cold-phase photon budget [default: 40000]
    --chunk-photons <N>      photons per cache chunk (in-process daemon)
                             [default: 10000]
    --backend <SPEC>         chunk backend (in-process daemon) [default: rayon]
    --out <PATH>             output path [default: BENCH_service.json]
    -h, --help               print this help
";

struct Args {
    addr: Option<String>,
    requests: u64,
    photons: u64,
    chunk_photons: u64,
    backend: String,
    out: String,
}

fn main() {
    match run() {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        addr: None,
        requests: 12,
        photons: 40_000,
        chunk_photons: 10_000,
        backend: "rayon".into(),
        out: "BENCH_service.json".into(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--addr" => args.addr = Some(value("--addr")?.to_string()),
            "--requests" => args.requests = parse(value("--requests")?, "--requests")?,
            "--photons" => args.photons = parse(value("--photons")?, "--photons")?,
            "--chunk-photons" => {
                args.chunk_photons = parse(value("--chunk-photons")?, "--chunk-photons")?;
            }
            "--backend" => args.backend = value("--backend")?.to_string(),
            "--out" => args.out = value("--out")?.to_string(),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.requests == 0 {
        return Err("--requests must be >= 1".into());
    }
    Ok(Some(args))
}

fn run() -> Result<(), String> {
    let Some(args) = parse_args()? else { return Ok(()) };

    // In-process daemon unless pointed at a live one.
    let server = match &args.addr {
        Some(_) => None,
        None => {
            let options = ServiceOptions::default()
                .with_backend(args.backend.clone())
                .with_chunk_photons(args.chunk_photons);
            let service = SimulationService::new(options).map_err(|e| e.to_string())?;
            Some(ServiceServer::bind("127.0.0.1:0", Arc::new(service)).map_err(|e| e.to_string())?)
        }
    };
    let addr = match (&args.addr, &server) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!("either --addr or an in-process server"),
    };
    let mut client = ServiceClient::connect(addr.as_str()).map_err(|e| e.to_string())?;

    let scenario = |seed: u64, photons: u64| {
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.37),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
        .with_photons(photons)
        .with_seed(1000 + seed)
    };

    let mut phases = Vec::new();
    for (name, photons, expect) in [
        ("cold", args.photons, Served::Cold),
        ("warm", args.photons, Served::Warm),
        ("topup", args.photons * 2, Served::TopUp),
    ] {
        let mut latencies_ms = Vec::with_capacity(args.requests as usize);
        for seed in 0..args.requests {
            let request = scenario(seed, photons);
            let start = Instant::now();
            let reply = client.query(&request).map_err(|e| format!("{name} query: {e}"))?;
            latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
            if reply.served != expect {
                return Err(format!(
                    "{name} phase seed {seed}: expected {} reply, daemon said {}",
                    expect.as_str(),
                    reply.served.as_str()
                ));
            }
            if reply.photons_done < photons {
                return Err(format!(
                    "{name} phase seed {seed}: {} photons done < requested {photons}",
                    reply.photons_done
                ));
            }
        }
        phases.push((name, latencies_ms));
    }
    drop(client);
    if let Some(server) = server {
        server.shutdown();
    }

    let json = render_json(&args, &phases);
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("{json}");
    println!("wrote {}", args.out);
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

/// Nearest-rank percentile over an unsorted sample, in the sample's unit.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn render_json(args: &Args, phases: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(&format!("  \"requests_per_phase\": {},\n", args.requests));
    out.push_str(&format!("  \"photons_cold\": {},\n", args.photons));
    out.push_str(&format!("  \"photons_topup\": {},\n", args.photons * 2));
    out.push_str(&format!("  \"chunk_photons\": {},\n", args.chunk_photons));
    out.push_str(&format!("  \"backend\": \"{}\",\n", args.backend));
    out.push_str(&format!("  \"in_process_daemon\": {},\n", args.addr.is_none()));
    out.push_str("  \"phases\": {\n");
    for (i, (name, latencies)) in phases.iter().enumerate() {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        out.push_str(&format!("    \"{name}\": {{\n"));
        out.push_str(&format!("      \"n\": {},\n", latencies.len()));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f64(percentile(latencies, 0.50))));
        out.push_str(&format!("      \"p90_ms\": {},\n", json_f64(percentile(latencies, 0.90))));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f64(percentile(latencies, 0.99))));
        out.push_str(&format!("      \"mean_ms\": {}\n", json_f64(mean)));
        out.push_str(if i + 1 == phases.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  }\n}\n");
    out
}
