//! `lumend` — the persistent simulation daemon.
//!
//! Binds an address, serves scenario queries from the content-addressed
//! result cache, and runs until killed. All logic lives in
//! `lumen_service::daemon` (shared with `lumen serve`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = lumen_service::daemon::run(&args) {
        eprintln!("error: {msg}");
        eprintln!("{}", lumen_service::daemon::USAGE);
        std::process::exit(2);
    }
}
