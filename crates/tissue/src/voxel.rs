//! Dense voxelized tissue: a 3-D grid of material indices over a palette.
//!
//! Where [`LayeredTissue`](crate::LayeredTissue) can only vary with depth,
//! [`VoxelTissue`] expresses arbitrary lateral inhomogeneity — tumour
//! inclusions, curved skull, CSF channels — as an `nx × ny × nz` grid of
//! `u16` indices into a palette of named materials. The grid's top face sits
//! on the tissue surface z = 0 (sources and detectors live there, exactly as
//! for layered models); x/y extent and voxel pitch are free.
//!
//! Boundary queries use Amanatides–Woo DDA ray traversal, **skipping voxel
//! faces where the material does not change**: a photon inside a homogeneous
//! blob of voxels streams in one step to the first face where the material
//! index differs (where Fresnel physics applies) or to the grid's outer
//! surface. Region indices handed to the transport loop are palette indices,
//! so per-region tallies aggregate by material.

use crate::error::GeometryError;
use crate::geometry::TissueGeometry;
use crate::model::BoundaryHit;
use lumen_photon::{Axis, DerivedOptics, OpticalProperties, Vec3};
use serde::{Deserialize, Serialize};

/// One palette entry: a named homogeneous material.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelMaterial {
    /// Human-readable name ("Grey matter", "Tumour", ...).
    pub name: String,
    /// Optical properties of the material.
    pub optics: OpticalProperties,
}

impl VoxelMaterial {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, optics: OpticalProperties) -> Self {
        Self { name: name.into(), optics }
    }
}

/// Hard cap on total voxel count (64 Mi cells ≈ 128 MiB of `u16`): keeps a
/// hostile wire message or config file from aborting the process on
/// allocation.
pub const MAX_CELLS: usize = 1 << 26;

/// Overflow-checked `nx·ny·nz`, bounded by [`MAX_CELLS`] — the single
/// guard shared by construction, the text parser, and the wire decoder,
/// so the cap cannot drift between trust boundaries.
pub fn checked_cell_count(nx: usize, ny: usize, nz: usize) -> Option<usize> {
    nx.checked_mul(ny).and_then(|v| v.checked_mul(nz)).filter(|&n| n <= MAX_CELLS)
}

/// Tolerance (in voxel units) when locating the voxel containing a point:
/// photons reflected at a face can land a few ulps outside the grid.
const FACE_EPS: f64 = 1e-9;

/// A dense voxel grid of materials occupying `z ∈ [0, nz·dz)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelTissue {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Lower x/y corner of the grid (mm); z always starts at the surface 0.
    x0: f64,
    y0: f64,
    /// Voxel edge lengths (mm).
    dx: f64,
    dy: f64,
    dz: f64,
    materials: Vec<VoxelMaterial>,
    /// Material index per voxel, x-fastest: `(iz·ny + iy)·nx + ix`.
    cells: Vec<u16>,
    /// Refractive index of the medium outside the grid.
    pub ambient_n: f64,
    /// Per-material transport constants, precomputed at construction (the
    /// palette is immutable after `new`, so this can never go stale).
    derived: Vec<DerivedOptics>,
    /// Cached `1/(dx, dy, dz)` for the interior fast-path bound (the pitch
    /// is immutable after `new`).
    inv_d: (f64, f64, f64),
}

impl VoxelTissue {
    /// Build a validated voxel tissue.
    ///
    /// `dims` is `(nx, ny, nz)`, `origin` the lower `(x, y)` corner, and
    /// `voxel_mm` the `(dx, dy, dz)` pitch. `cells` holds one palette index
    /// per voxel in x-fastest order and must have exactly `nx·ny·nz`
    /// entries, each `< materials.len()`.
    pub fn new(
        dims: (usize, usize, usize),
        origin: (f64, f64),
        voxel_mm: (f64, f64, f64),
        materials: Vec<VoxelMaterial>,
        cells: Vec<u16>,
        ambient_n: f64,
    ) -> Result<Self, GeometryError> {
        let (nx, ny, nz) = dims;
        let (x0, y0) = origin;
        let (dx, dy, dz) = voxel_mm;
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(GeometryError::Empty("voxel per axis"));
        }
        let n_cells = checked_cell_count(nx, ny, nz).ok_or_else(|| {
            GeometryError::BadGrid(format!("{nx}x{ny}x{nz} voxels exceed the {MAX_CELLS}-cell cap"))
        })?;
        for (name, d) in [("dx", dx), ("dy", dy), ("dz", dz)] {
            if !(d > 0.0 && d.is_finite()) {
                return Err(GeometryError::BadGrid(format!(
                    "voxel size {name} must be finite and positive, got {d}"
                )));
            }
        }
        if !(x0.is_finite() && y0.is_finite()) {
            return Err(GeometryError::BadGrid(format!("origin ({x0}, {y0}) must be finite")));
        }
        if !(ambient_n >= 1.0 && ambient_n.is_finite()) {
            return Err(GeometryError::BadAmbientIndex(ambient_n));
        }
        if materials.is_empty() {
            return Err(GeometryError::Empty("material"));
        }
        if materials.len() > usize::from(u16::MAX) + 1 {
            return Err(GeometryError::BadGrid(format!(
                "palette of {} materials exceeds the u16 index space",
                materials.len()
            )));
        }
        for m in &materials {
            m.optics
                .validate()
                .map_err(|e| GeometryError::BadOptics { region: m.name.clone(), reason: e })?;
        }
        if cells.len() != n_cells {
            return Err(GeometryError::BadGrid(format!(
                "{} cells provided for a {nx}x{ny}x{nz} grid ({n_cells} expected)",
                cells.len()
            )));
        }
        if let Some(bad) = cells.iter().find(|&&c| usize::from(c) >= materials.len()) {
            return Err(GeometryError::BadGrid(format!(
                "cell refers to material {bad} but the palette has {} entries",
                materials.len()
            )));
        }
        let derived = materials.iter().map(|m| m.optics.derive()).collect();
        let inv_d = (1.0 / dx, 1.0 / dy, 1.0 / dz);
        Ok(Self { nx, ny, nz, x0, y0, dx, dy, dz, materials, cells, ambient_n, derived, inv_d })
    }

    /// Build a grid by evaluating `material` at every voxel centre.
    pub fn from_fn(
        dims: (usize, usize, usize),
        origin: (f64, f64),
        voxel_mm: (f64, f64, f64),
        materials: Vec<VoxelMaterial>,
        ambient_n: f64,
        mut material: impl FnMut(Vec3) -> u16,
    ) -> Result<Self, GeometryError> {
        let (nx, ny, nz) = dims;
        let n_cells = checked_cell_count(nx, ny, nz)
            .ok_or_else(|| GeometryError::BadGrid("grid exceeds the cell cap".into()))?;
        let (x0, y0) = origin;
        let (dx, dy, dz) = voxel_mm;
        let mut cells = Vec::with_capacity(n_cells);
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let centre = Vec3::new(
                        x0 + (ix as f64 + 0.5) * dx,
                        y0 + (iy as f64 + 0.5) * dy,
                        (iz as f64 + 0.5) * dz,
                    );
                    cells.push(material(centre));
                }
            }
        }
        Self::new(dims, origin, voxel_mm, materials, cells, ambient_n)
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Voxel pitch `(dx, dy, dz)` in mm.
    pub fn voxel_mm(&self) -> (f64, f64, f64) {
        (self.dx, self.dy, self.dz)
    }

    /// Lower `(x, y)` corner of the grid (mm).
    pub fn origin(&self) -> (f64, f64) {
        (self.x0, self.y0)
    }

    /// Axis-aligned bounds: lower corner (z = 0) and upper corner.
    pub fn bounds(&self) -> (Vec3, Vec3) {
        (
            Vec3::new(self.x0, self.y0, 0.0),
            Vec3::new(
                self.x0 + self.nx as f64 * self.dx,
                self.y0 + self.ny as f64 * self.dy,
                self.nz as f64 * self.dz,
            ),
        )
    }

    /// The material palette.
    pub fn materials(&self) -> &[VoxelMaterial] {
        &self.materials
    }

    /// Raw cell data, x-fastest.
    pub fn cells(&self) -> &[u16] {
        &self.cells
    }

    /// Material index of voxel `(ix, iy, iz)`.
    #[inline]
    pub fn material_at(&self, ix: usize, iy: usize, iz: usize) -> u16 {
        self.cells[(iz * self.ny + iy) * self.nx + ix]
    }

    /// Centre of voxel `(ix, iy, iz)` (mm).
    pub fn centre(&self, ix: usize, iy: usize, iz: usize) -> Vec3 {
        Vec3::new(
            self.x0 + (ix as f64 + 0.5) * self.dx,
            self.y0 + (iy as f64 + 0.5) * self.dy,
            (iz as f64 + 0.5) * self.dz,
        )
    }

    /// Voxel index along one axis for coordinate `p`, with direction-aware
    /// tie-breaking on faces and an ε-clamp for floating-point overshoot.
    fn axis_cell(p: f64, lo: f64, d: f64, n: usize, dir: f64) -> Option<usize> {
        let f = (p - lo) / d;
        let mut i = f.floor();
        if f == i && dir < 0.0 {
            // Exactly on a face, moving toward lower indices: the photon
            // belongs to the voxel it is entering.
            i -= 1.0;
        }
        if i < 0.0 {
            if f > -FACE_EPS {
                i = 0.0;
            } else {
                return None;
            }
        } else if i >= n as f64 {
            if f < n as f64 + FACE_EPS {
                i = (n - 1) as f64;
            } else {
                return None;
            }
        }
        Some(i as usize)
    }

    /// The voxel containing `pos` for a photon travelling along `dir`, or
    /// `None` outside the grid.
    pub fn voxel_of(&self, pos: Vec3, dir: Vec3) -> Option<(usize, usize, usize)> {
        Some((
            Self::axis_cell(pos.x, self.x0, self.dx, self.nx, dir.x)?,
            Self::axis_cell(pos.y, self.y0, self.dy, self.ny, dir.y)?,
            Self::axis_cell(pos.z, 0.0, self.dz, self.nz, dir.z)?,
        ))
    }

    /// DDA setup for one axis: distance to the first face crossing, the
    /// per-voxel crossing increment, and the index step.
    fn axis_setup(p: f64, lo: f64, d: f64, i: usize, dirc: f64) -> (f64, f64, isize) {
        if dirc > 0.0 {
            let face = lo + (i as f64 + 1.0) * d;
            (((face - p) / dirc).max(0.0), d / dirc, 1)
        } else if dirc < 0.0 {
            let face = lo + i as f64 * d;
            (((face - p) / dirc).max(0.0), d / -dirc, -1)
        } else {
            (f64::INFINITY, f64::INFINITY, 0)
        }
    }
}

impl TissueGeometry for VoxelTissue {
    #[inline]
    fn region_count(&self) -> usize {
        self.materials.len()
    }

    fn region_name(&self, region: usize) -> &str {
        &self.materials[region].name
    }

    #[inline]
    fn optics(&self, region: usize) -> &OpticalProperties {
        &self.materials[region].optics
    }

    #[inline]
    fn derived(&self, region: usize) -> &DerivedOptics {
        &self.derived[region]
    }

    #[inline]
    fn ambient_n(&self) -> f64 {
        self.ambient_n
    }

    /// Perpendicular gap from `pos` to the nearest face of its containing
    /// voxel, minimised over the three axes. The DDA's first *material*
    /// face is at least as far as the first *cell* face, and no unit
    /// direction closes a perpendicular gap faster than 1:1, so this lower
    /// bound lets the engine skip the whole traversal for interior steps.
    /// Returns `<= 0` on faces and outside the grid (no fast path there).
    #[inline]
    fn min_boundary_distance(&self, pos: Vec3, _region: usize) -> f64 {
        let gap = |p: f64, lo: f64, d: f64, inv_d: f64, n: usize| -> f64 {
            let f = (p - lo) * inv_d;
            if f <= 0.0 || f >= n as f64 {
                return 0.0;
            }
            let i = f.floor();
            // Distances to the two faces of cell `i`, in mm.
            let below = p - (lo + i * d);
            let above = (lo + (i + 1.0) * d) - p;
            below.min(above)
        };
        gap(pos.x, self.x0, self.dx, self.inv_d.0, self.nx)
            .min(gap(pos.y, self.y0, self.dy, self.inv_d.1, self.ny))
            .min(gap(pos.z, 0.0, self.dz, self.inv_d.2, self.nz))
    }

    fn entry_region(&self, pos: Vec3) -> Option<usize> {
        let (ix, iy, iz) = self.voxel_of(Vec3::new(pos.x, pos.y, 0.0), Vec3::PLUS_Z)?;
        Some(usize::from(self.material_at(ix, iy, iz)))
    }

    /// Amanatides–Woo traversal from `pos` along `dir`, returning the first
    /// face where the material index differs from `region` (Fresnel
    /// happens there) or where the ray leaves the grid. Faces between
    /// same-material voxels are skipped, so homogeneous runs cost one call.
    fn boundary_hit(&self, pos: Vec3, dir: Vec3, region: usize) -> BoundaryHit {
        let Some((mut ix, mut iy, mut iz)) = self.voxel_of(pos, dir) else {
            // Floating-point overshoot has already carried the photon out of
            // the grid: report an immediate exit. The normal must be the
            // axis actually violated — a wrong axis would make the surface
            // physics reflect the wrong component and strand the photon
            // outside the grid.
            let (lo, hi) = self.bounds();
            let mut axis = Axis::Z;
            let mut worst = f64::MIN;
            for (a, p, l, h, d) in [
                (Axis::X, pos.x, lo.x, hi.x, self.dx),
                (Axis::Y, pos.y, lo.y, hi.y, self.dy),
                (Axis::Z, pos.z, lo.z, hi.z, self.dz),
            ] {
                // How far outside this axis' slab, in voxel units.
                let outside = (l - p).max(p - h) / d;
                if outside > worst {
                    worst = outside;
                    axis = a;
                }
            }
            return BoundaryHit {
                distance: 0.0,
                next_region: None,
                is_top_surface: axis == Axis::Z && pos.z <= 0.0,
                axis,
            };
        };
        let (mut tx, dtx, sx) = Self::axis_setup(pos.x, self.x0, self.dx, ix, dir.x);
        let (mut ty, dty, sy) = Self::axis_setup(pos.y, self.y0, self.dy, iy, dir.y);
        let (mut tz, dtz, sz) = Self::axis_setup(pos.z, 0.0, self.dz, iz, dir.z);
        loop {
            // Next face crossing; ties break x → y → z, deterministically.
            let (axis, t) = if tx <= ty && tx <= tz {
                (Axis::X, tx)
            } else if ty <= tz {
                (Axis::Y, ty)
            } else {
                (Axis::Z, tz)
            };
            let exited = match axis {
                Axis::X => {
                    let ni = ix as isize + sx;
                    tx += dtx;
                    if ni < 0 || ni >= self.nx as isize {
                        true
                    } else {
                        ix = ni as usize;
                        false
                    }
                }
                Axis::Y => {
                    let ni = iy as isize + sy;
                    ty += dty;
                    if ni < 0 || ni >= self.ny as isize {
                        true
                    } else {
                        iy = ni as usize;
                        false
                    }
                }
                Axis::Z => {
                    let ni = iz as isize + sz;
                    tz += dtz;
                    if ni < 0 || ni >= self.nz as isize {
                        true
                    } else {
                        iz = ni as usize;
                        false
                    }
                }
            };
            if exited {
                return BoundaryHit {
                    distance: t,
                    next_region: None,
                    is_top_surface: axis == Axis::Z && sz < 0,
                    axis,
                };
            }
            let m = usize::from(self.material_at(ix, iy, iz));
            if m != region {
                return BoundaryHit {
                    distance: t,
                    next_region: Some(m),
                    is_top_surface: false,
                    axis,
                };
            }
        }
    }

    fn validate(&self) -> Result<(), GeometryError> {
        // Construction enforces every invariant, and the finite grid means
        // even fully transparent media cannot stream forever.
        Ok(())
    }
}

// --- Text format ---------------------------------------------------------
//
// A small self-describing format so voxel phantoms can be checked into a
// repo and loaded by the CLI (`geometry = voxel <path>`):
//
// ```text
// # comment
// voxels 4 4 2
// size 0.5 0.5 0.5
// origin -1 -1
// ambient 1.0
// material Background 0.01 10 0.9 1.4
// material Inclusion  0.30 10 0.9 1.4
// cells
// 16*0
// 12*0 1 3*0
// ```
//
// `cells` tokens are palette indices, optionally run-length encoded as
// `count*index`, x-fastest (x, then y, then z), exactly nx·ny·nz of them.

/// Material names are single whitespace-free tokens in the text format:
/// spaces become `_`, and the characters that would corrupt the format
/// (`_` itself, `#` comments, `%`) are percent-escaped, so
/// `parse_text(to_text(t)) == t` for any name without exotic whitespace.
fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            '_' => out.push_str("%5F"),
            '#' => out.push_str("%23"),
            c if c.is_whitespace() => out.push('_'),
            c => out.push(c),
        }
    }
    out
}

fn decode_name(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        match c {
            '_' => out.push(' '),
            '%' => {
                let code: String = chars.by_ref().take(2).collect();
                match code.as_str() {
                    "25" => out.push('%'),
                    "5F" => out.push('_'),
                    "23" => out.push('#'),
                    other => {
                        out.push('%');
                        out.push_str(other);
                    }
                }
            }
            c => out.push(c),
        }
    }
    out
}

impl VoxelTissue {
    /// Serialise to the text format (run-length encoded cells).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# lumen voxel tissue");
        let _ = writeln!(s, "voxels {} {} {}", self.nx, self.ny, self.nz);
        let _ = writeln!(s, "size {} {} {}", self.dx, self.dy, self.dz);
        let _ = writeln!(s, "origin {} {}", self.x0, self.y0);
        let _ = writeln!(s, "ambient {}", self.ambient_n);
        for m in &self.materials {
            let o = &m.optics;
            let _ = writeln!(
                s,
                "material {} {} {} {} {}",
                encode_name(&m.name),
                o.mu_a,
                o.mu_s,
                o.g,
                o.n
            );
        }
        let _ = writeln!(s, "cells");
        let mut run: Option<(u16, usize)> = None;
        let mut tokens: Vec<String> = Vec::new();
        for &c in self.cells.iter() {
            match run {
                Some((v, n)) if v == c => run = Some((v, n + 1)),
                Some((v, n)) => {
                    tokens.push(if n > 1 { format!("{n}*{v}") } else { v.to_string() });
                    run = Some((c, 1));
                }
                None => run = Some((c, 1)),
            }
        }
        if let Some((v, n)) = run {
            tokens.push(if n > 1 { format!("{n}*{v}") } else { v.to_string() });
        }
        for chunk in tokens.chunks(16) {
            let _ = writeln!(s, "{}", chunk.join(" "));
        }
        s
    }

    /// Parse the text format. Every structural problem is a
    /// [`GeometryError::Parse`] with a line number; the assembled grid then
    /// passes through [`VoxelTissue::new`] validation.
    pub fn parse_text(text: &str) -> Result<Self, GeometryError> {
        fn err(line: usize, reason: impl Into<String>) -> GeometryError {
            GeometryError::Parse { line, reason: reason.into() }
        }
        fn nums(line_no: usize, rest: &str, want: usize) -> Result<Vec<f64>, GeometryError> {
            let vals: Result<Vec<f64>, _> =
                rest.split_whitespace().map(|t| t.parse::<f64>()).collect();
            let vals = vals.map_err(|_| err(line_no, format!("expected {want} numbers")))?;
            if vals.len() != want {
                return Err(err(line_no, format!("expected {want} numbers, got {}", vals.len())));
            }
            Ok(vals)
        }

        let mut dims: Option<(usize, usize, usize)> = None;
        let mut size: Option<(f64, f64, f64)> = None;
        let mut origin = (0.0, 0.0);
        let mut ambient = 1.0;
        let mut materials: Vec<VoxelMaterial> = Vec::new();
        let mut cells: Vec<u16> = Vec::new();
        let mut in_cells = false;
        let mut expected_cells = 0usize;

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if in_cells {
                for token in line.split_whitespace() {
                    let (count, value) = match token.split_once('*') {
                        Some((n, v)) => (
                            n.parse::<usize>()
                                .map_err(|_| err(line_no, format!("bad run length `{token}`")))?,
                            v.parse::<u16>()
                                .map_err(|_| err(line_no, format!("bad cell index `{token}`")))?,
                        ),
                        None => (
                            1,
                            token
                                .parse::<u16>()
                                .map_err(|_| err(line_no, format!("bad cell index `{token}`")))?,
                        ),
                    };
                    // `count` comes straight from the file; compare without
                    // `cells.len() + count`, which a hostile run length
                    // could overflow.
                    if count > expected_cells - cells.len() {
                        return Err(err(
                            line_no,
                            format!("more than the expected {expected_cells} cells"),
                        ));
                    }
                    cells.resize(cells.len() + count, value);
                }
                continue;
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            match key {
                "voxels" => {
                    let v = nums(line_no, rest, 3)?;
                    if v.iter().any(|&n| n < 1.0 || n.fract() != 0.0 || n > MAX_CELLS as f64) {
                        return Err(err(line_no, "voxel counts must be positive integers"));
                    }
                    let (nx, ny, nz) = (v[0] as usize, v[1] as usize, v[2] as usize);
                    // Bound the product too, before `cells` sizing can
                    // overflow or allocate: same cap the wire decoder uses.
                    if checked_cell_count(nx, ny, nz).is_none() {
                        return Err(err(
                            line_no,
                            format!("{nx}x{ny}x{nz} voxels exceed the {MAX_CELLS}-cell cap"),
                        ));
                    }
                    dims = Some((nx, ny, nz));
                }
                "size" => {
                    let v = nums(line_no, rest, 3)?;
                    size = Some((v[0], v[1], v[2]));
                }
                "origin" => {
                    let v = nums(line_no, rest, 2)?;
                    origin = (v[0], v[1]);
                }
                "ambient" => {
                    ambient = nums(line_no, rest, 1)?[0];
                }
                "material" => {
                    let mut parts = rest.split_whitespace();
                    let name = decode_name(
                        parts.next().ok_or_else(|| err(line_no, "material needs a name"))?,
                    );
                    let vals: Result<Vec<f64>, _> = parts.map(|t| t.parse::<f64>()).collect();
                    let vals =
                        vals.map_err(|_| err(line_no, "material needs `name mu_a mu_s g n`"))?;
                    if vals.len() != 4 {
                        return Err(err(line_no, "material needs `name mu_a mu_s g n`"));
                    }
                    materials.push(VoxelMaterial::new(
                        name,
                        OpticalProperties { mu_a: vals[0], mu_s: vals[1], g: vals[2], n: vals[3] },
                    ));
                }
                "cells" => {
                    let (nx, ny, nz) =
                        dims.ok_or_else(|| err(line_no, "`voxels` must precede `cells`"))?;
                    expected_cells = nx * ny * nz;
                    in_cells = true;
                }
                other => return Err(err(line_no, format!("unknown directive `{other}`"))),
            }
        }

        let dims = dims.ok_or_else(|| err(0, "missing `voxels` directive"))?;
        let size = size.ok_or_else(|| err(0, "missing `size` directive"))?;
        if !in_cells {
            return Err(err(0, "missing `cells` block"));
        }
        if cells.len() != expected_cells {
            return Err(err(
                0,
                format!("cells block has {} entries, expected {expected_cells}", cells.len()),
            ));
        }
        Self::new(dims, origin, size, materials, cells, ambient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_mat() -> Vec<VoxelMaterial> {
        vec![
            VoxelMaterial::new("A", OpticalProperties::new(0.01, 10.0, 0.9, 1.4)),
            VoxelMaterial::new("B", OpticalProperties::new(0.02, 20.0, 0.9, 1.5)),
        ]
    }

    /// 4×4×4 grid, 0.5 mm pitch, centred on the origin: lower half (z) is
    /// material 0, deeper half is material 1 — a voxelized two-layer slab.
    fn slab() -> VoxelTissue {
        VoxelTissue::from_fn((4, 4, 4), (-1.0, -1.0), (0.5, 0.5, 0.5), two_mat(), 1.0, |c| {
            if c.z < 1.0 {
                0
            } else {
                1
            }
        })
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = slab();
        assert_eq!(t.dims(), (4, 4, 4));
        assert_eq!(t.region_count(), 2);
        assert_eq!(t.region_name(1), "B");
        assert_eq!(t.material_at(0, 0, 0), 0);
        assert_eq!(t.material_at(3, 3, 3), 1);
        let (lo, hi) = t.bounds();
        assert_eq!(lo, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(hi, Vec3::new(1.0, 1.0, 2.0));
        assert_eq!(t.centre(0, 0, 0), Vec3::new(-0.75, -0.75, 0.25));
    }

    #[test]
    fn rejects_bad_grids() {
        let mk = |dims, cells: Vec<u16>| {
            VoxelTissue::new(dims, (0.0, 0.0), (1.0, 1.0, 1.0), two_mat(), cells, 1.0)
        };
        assert!(matches!(mk((0, 1, 1), vec![]), Err(GeometryError::Empty(_))));
        assert!(matches!(mk((1, 1, 1), vec![]), Err(GeometryError::BadGrid(_))));
        assert!(matches!(mk((1, 1, 1), vec![7]), Err(GeometryError::BadGrid(_))));
        assert!(matches!(
            VoxelTissue::new((1, 1, 1), (0.0, 0.0), (0.0, 1.0, 1.0), two_mat(), vec![0], 1.0),
            Err(GeometryError::BadGrid(_))
        ));
        assert!(matches!(
            VoxelTissue::new((1, 1, 1), (0.0, 0.0), (1.0, 1.0, 1.0), vec![], vec![0], 1.0),
            Err(GeometryError::Empty(_))
        ));
        assert!(matches!(
            VoxelTissue::new((1, 1, 1), (0.0, 0.0), (1.0, 1.0, 1.0), two_mat(), vec![0], 0.5),
            Err(GeometryError::BadAmbientIndex(_))
        ));
        // Oversized grids fail fast without allocating.
        assert!(matches!(
            VoxelTissue::new(
                (1 << 20, 1 << 20, 1 << 20),
                (0.0, 0.0),
                (1.0, 1.0, 1.0),
                two_mat(),
                vec![],
                1.0
            ),
            Err(GeometryError::BadGrid(_))
        ));
    }

    #[test]
    fn entry_region_and_lateral_misses() {
        let t = slab();
        assert_eq!(t.entry_region(Vec3::ZERO), Some(0));
        assert_eq!(t.entry_region(Vec3::new(-0.99, 0.99, 0.0)), Some(0));
        assert_eq!(t.entry_region(Vec3::new(1.5, 0.0, 0.0)), None);
        assert_eq!(t.entry_region(Vec3::new(0.0, -1.5, 0.0)), None);
    }

    #[test]
    fn dda_skips_same_material_faces() {
        let t = slab();
        // Straight down from the surface: first material change is at
        // z = 1.0 (two 0.5 mm voxels of material 0 crossed in one call).
        let hit = t.boundary_hit(Vec3::new(0.1, 0.1, 0.0), Vec3::PLUS_Z, 0);
        assert!((hit.distance - 1.0).abs() < 1e-12, "distance {}", hit.distance);
        assert_eq!(hit.next_region, Some(1));
        assert_eq!(hit.axis, Axis::Z);
        assert!(!hit.is_top_surface);
    }

    #[test]
    fn dda_exits_through_faces() {
        let t = slab();
        // Up and out through the top surface.
        let up = t.boundary_hit(Vec3::new(0.1, 0.1, 0.25), -Vec3::PLUS_Z, 0);
        assert!((up.distance - 0.25).abs() < 1e-12);
        assert_eq!(up.next_region, None);
        assert!(up.is_top_surface);
        assert_eq!(up.axis, Axis::Z);
        // Sideways through the +x wall: same material all the way.
        let side = t.boundary_hit(Vec3::new(0.1, 0.1, 0.25), Vec3::new(1.0, 0.0, 0.0), 0);
        assert!((side.distance - 0.9).abs() < 1e-12, "distance {}", side.distance);
        assert_eq!(side.next_region, None);
        assert!(!side.is_top_surface);
        assert_eq!(side.axis, Axis::X);
        // Down and out through the bottom (region 1 below z = 1).
        let down = t.boundary_hit(Vec3::new(0.1, 0.1, 1.75), Vec3::PLUS_Z, 1);
        assert!((down.distance - 0.25).abs() < 1e-12);
        assert_eq!(down.next_region, None);
        assert!(!down.is_top_surface);
    }

    #[test]
    fn oblique_traversal_reports_first_material_change() {
        let t = slab();
        let dir = Vec3::new(0.6, 0.0, 0.8);
        let hit = t.boundary_hit(Vec3::new(-0.9, 0.1, 0.0), dir, 0);
        // Material changes at z = 1.0 → t = 1.0 / 0.8 = 1.25; x moves by
        // 0.75 to -0.15, still inside.
        assert!((hit.distance - 1.25).abs() < 1e-12, "distance {}", hit.distance);
        assert_eq!(hit.next_region, Some(1));
        assert_eq!(hit.axis, Axis::Z);
    }

    #[test]
    fn mismatched_region_self_heals() {
        // A photon that transmitted at z = 1.0 but (by floating point)
        // landed a hair *before* the face is in a material-0 voxel while
        // its region already says 1. The next traversal must not re-fire
        // the same interface: it compares against `region`, so the first
        // crossing (into real material 1) is silently skipped.
        let t = slab();
        let pos = Vec3::new(0.1, 0.1, 1.0 - 1e-15);
        let hit = t.boundary_hit(pos, Vec3::PLUS_Z, 1);
        assert_eq!(hit.next_region, None, "should exit the bottom, not re-Fresnel");
        assert!(hit.distance > 0.9, "distance {}", hit.distance);
    }

    #[test]
    fn face_position_tie_breaking() {
        let t = slab();
        // Exactly on the z = 1.0 face: moving down belongs to the deeper
        // voxel, moving up to the shallower one.
        assert_eq!(t.voxel_of(Vec3::new(0.1, 0.1, 1.0), Vec3::PLUS_Z), Some((2, 2, 2)));
        assert_eq!(t.voxel_of(Vec3::new(0.1, 0.1, 1.0), -Vec3::PLUS_Z), Some((2, 2, 1)));
        // Tiny overshoot outside the grid is clamped back in.
        assert_eq!(t.voxel_of(Vec3::new(0.1, 0.1, -1e-18), Vec3::PLUS_Z), Some((2, 2, 0)));
        // A genuine escape is not.
        assert_eq!(t.voxel_of(Vec3::new(0.1, 0.1, -0.1), Vec3::PLUS_Z), None);
    }

    #[test]
    fn out_of_grid_overshoot_reports_the_violated_axis() {
        let t = slab();
        // Stranded beyond the +x wall: the exit normal must be X, so the
        // engine's reflection (if any) pushes the photon back toward the
        // grid instead of flipping z in place.
        let dir = Vec3::new(0.1, 0.0, 1.0).renormalize();
        let hit = t.boundary_hit(Vec3::new(1.0 + 1e-6, 0.1, 0.5), dir, 0);
        assert_eq!(hit.distance, 0.0);
        assert_eq!(hit.next_region, None);
        assert_eq!(hit.axis, Axis::X);
        assert!(!hit.is_top_surface);
        // Stranded above the top surface: Z, flagged as the top.
        let up = t.boundary_hit(Vec3::new(0.1, 0.1, -1e-6), -Vec3::PLUS_Z, 0);
        assert_eq!(up.axis, Axis::Z);
        assert!(up.is_top_surface);
    }

    #[test]
    fn text_round_trip() {
        let t = slab();
        let text = t.to_text();
        let parsed = VoxelTissue::parse_text(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn awkward_material_names_round_trip() {
        // Underscores, comment characters, and escape characters in names
        // must survive to_text -> parse_text unchanged.
        let materials = vec![
            VoxelMaterial::new("grey_matter", OpticalProperties::new(0.01, 10.0, 0.9, 1.4)),
            VoxelMaterial::new("tumour#2", OpticalProperties::new(0.1, 10.0, 0.9, 1.4)),
            VoxelMaterial::new("50% lipid", OpticalProperties::new(0.02, 5.0, 0.8, 1.45)),
        ];
        let t =
            VoxelTissue::new((1, 1, 3), (0.0, 0.0), (1.0, 1.0, 1.0), materials, vec![0, 1, 2], 1.0)
                .unwrap();
        let parsed = VoxelTissue::parse_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn hostile_text_dimensions_fail_before_allocation() {
        // Each axis passes the per-axis cap, but the product overflows: the
        // parser must return a typed error, not panic or allocate.
        let n = MAX_CELLS;
        let hostile =
            format!("voxels {n} {n} {n}\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4\ncells\n0");
        assert!(matches!(VoxelTissue::parse_text(&hostile), Err(GeometryError::Parse { .. })));
        // A hostile run length that would overflow `cells.len() + count`.
        let rle = format!(
            "voxels 2 1 1\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4\ncells\n1*0 {}*0",
            u64::MAX
        );
        assert!(matches!(VoxelTissue::parse_text(&rle), Err(GeometryError::Parse { .. })));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(matches!(
            VoxelTissue::parse_text("bogus 1 2 3"),
            Err(GeometryError::Parse { line: 1, .. })
        ));
        let missing_cells = "voxels 1 1 1\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4";
        assert!(matches!(VoxelTissue::parse_text(missing_cells), Err(GeometryError::Parse { .. })));
        let too_many = "voxels 1 1 1\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4\ncells\n0 0";
        assert!(matches!(
            VoxelTissue::parse_text(too_many),
            Err(GeometryError::Parse { line: 5, .. })
        ));
        let bad_rle = "voxels 2 1 1\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4\ncells\nx*0";
        assert!(matches!(
            VoxelTissue::parse_text(bad_rle),
            Err(GeometryError::Parse { line: 5, .. })
        ));
    }

    #[test]
    fn parse_validates_assembled_grid() {
        // Cell index out of palette range: passes parsing, fails `new`.
        let bad = "voxels 1 1 1\nsize 1 1 1\nmaterial A 0.01 10 0.9 1.4\ncells\n3";
        assert!(matches!(VoxelTissue::parse_text(bad), Err(GeometryError::BadGrid(_))));
    }

    #[test]
    fn traversal_terminates_everywhere() {
        // Fire rays from every voxel centre in 26 directions; every call
        // must return a finite distance (the grid is finite).
        let t = slab();
        let mut dirs = Vec::new();
        for dx in [-1.0, 0.0, 1.0] {
            for dy in [-1.0, 0.0, 1.0] {
                for dz in [-1.0, 0.0, 1.0] {
                    if dx != 0.0 || dy != 0.0 || dz != 0.0 {
                        dirs.push(Vec3::new(dx, dy, dz).renormalize());
                    }
                }
            }
        }
        for iz in 0..4 {
            for iy in 0..4 {
                for ix in 0..4 {
                    let c = t.centre(ix, iy, iz);
                    let region = usize::from(t.material_at(ix, iy, iz));
                    for &dir in &dirs {
                        let hit = t.boundary_hit(c, dir, region);
                        assert!(hit.distance.is_finite());
                        assert!(hit.distance >= 0.0);
                    }
                }
            }
        }
    }
}
