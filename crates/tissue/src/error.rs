//! Typed geometry-construction errors.
//!
//! Constructors used to return `Result<_, String>`; callers that want to
//! branch on the failure kind (the CLI, the wire decoder, the engine) now
//! get a real enum, and `lumen_core::engine::EngineError` has a `From` impl
//! so geometry failures flow into `EngineError::InvalidConfig` with `?`.

/// Why a tissue geometry could not be built (or is unusable for transport).
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// The geometry has no regions at all (no layers, materials, or cells).
    Empty(&'static str),
    /// Ambient refractive index must be finite and >= 1.
    BadAmbientIndex(f64),
    /// The layer stack is inconsistent (gap, wrong surface start,
    /// semi-infinite layer not last).
    BadLayerStack(String),
    /// A region's optical properties failed validation.
    BadOptics {
        /// Region (layer or material) name.
        region: String,
        /// Underlying optics complaint.
        reason: String,
    },
    /// The voxel grid shape or cell data is inconsistent.
    BadGrid(String),
    /// A voxel-grid text file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::Empty(what) => write!(f, "geometry needs at least one {what}"),
            GeometryError::BadAmbientIndex(n) => {
                write!(f, "ambient index must be finite >= 1, got {n}")
            }
            GeometryError::BadLayerStack(reason) => write!(f, "{reason}"),
            GeometryError::BadOptics { region, reason } => write!(f, "region '{region}': {reason}"),
            GeometryError::BadGrid(reason) => write!(f, "voxel grid: {reason}"),
            GeometryError::Parse { line, reason } => {
                write!(f, "voxel file line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

impl From<GeometryError> for String {
    /// Legacy bridge for APIs that still report stringly errors
    /// (e.g. `Simulation::validate`).
    fn from(e: GeometryError) -> String {
        e.to_string()
    }
}
