//! # lumen-tissue — tissue geometry (layered and voxelized) and presets
//!
//! The reproduced paper models the head as a stack of horizontal layers
//! (Table 1: scalp, skull, CSF, grey matter, white matter), each a
//! homogeneous slab with its own optical properties. This crate provides:
//!
//! * [`TissueGeometry`] — the trait the transport engine is generic over:
//!   region lookup, boundary-distance queries (with the face's normal
//!   axis), and far-side refractive indices;
//! * [`Layer`] / [`LayeredTissue`] — the 1-D stack: validated construction,
//!   layer lookup by depth, analytic plane-boundary queries;
//! * [`VoxelTissue`] — a dense 3-D grid of material-palette indices with
//!   Amanatides–Woo DDA traversal, for lateral inhomogeneity (tumour
//!   inclusions, curved anatomy) no layer stack can express;
//! * [`Geometry`] — the closed enum of the above, used wherever a geometry
//!   value is stored or shipped (scenarios, CLI configs, the cluster wire);
//! * [`GeometryError`] — typed construction/validation errors;
//! * [`presets`] — the paper's models (the Table 1 adult head, the
//!   homogeneous white matter of Fig 3, a neonatal variant after Fukui et
//!   al., the paper's reference \[1\]) plus [`presets::voxelized`] and a
//!   voxel head-with-inclusion phantom.

pub mod error;
pub mod geometry;
pub mod layer;
pub mod model;
pub mod presets;
pub mod voxel;

pub use error::GeometryError;
pub use geometry::{Geometry, TissueGeometry};
pub use layer::Layer;
pub use lumen_photon::OpticalProperties;
pub use model::{BoundaryHit, LayeredTissue};
pub use voxel::{VoxelMaterial, VoxelTissue};
