//! # lumen-tissue — layered tissue geometry and presets
//!
//! The reproduced paper models the head as a stack of horizontal layers
//! (Table 1: scalp, skull, CSF, grey matter, white matter), each a
//! homogeneous slab with its own optical properties. This crate provides:
//!
//! * [`Layer`] — one slab: name, z-extent, [`OpticalProperties`];
//! * [`LayeredTissue`] — the stack, with validated construction, layer
//!   lookup by depth, and boundary-distance queries used by the transport
//!   engine's hop/boundary logic;
//! * [`presets`] — the paper's models: the Table 1 adult head, the
//!   homogeneous white-matter medium of Fig 3, and a neonatal variant after
//!   Fukui et al. (the paper's reference \[1\]).

pub mod layer;
pub mod model;
pub mod presets;

pub use layer::Layer;
pub use lumen_photon::OpticalProperties;
pub use model::{BoundaryHit, LayeredTissue};
