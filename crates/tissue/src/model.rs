//! The layered tissue stack and its geometric queries.

use crate::error::GeometryError;
use crate::layer::Layer;
use lumen_photon::{Axis, DerivedOptics, OpticalProperties, Vec3};
use serde::{Deserialize, Serialize};

/// Which boundary a travelling photon will meet first inside its region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryHit {
    /// Distance along the direction of travel to the boundary (mm).
    pub distance: f64,
    /// Region index on the far side, or `None` when the photon would exit
    /// the tissue (above the top surface, below a finite stack, or out of a
    /// voxel grid's lateral extent).
    pub next_region: Option<usize>,
    /// True when the boundary is the external top surface (z = 0).
    pub is_top_surface: bool,
    /// Normal axis of the boundary: always [`Axis::Z`] for layered stacks;
    /// voxel faces can be x- or y-normal too.
    pub axis: Axis,
}

/// A stack of horizontal tissue layers occupying z ≥ 0, with an ambient
/// medium (typically air, n = 1) above the surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayeredTissue {
    layers: Vec<Layer>,
    /// Refractive index of the medium above z = 0 (air by default).
    pub ambient_n: f64,
    /// Per-layer transport constants, precomputed at construction so the
    /// stepping loop never re-derives μt/albedo per interaction. Layers are
    /// immutable after `new`, so this can never go stale.
    derived: Vec<DerivedOptics>,
}

impl LayeredTissue {
    /// Build a validated stack. Layers must be contiguous from z = 0
    /// downward, non-empty, and only the last may be semi-infinite.
    pub fn new(layers: Vec<Layer>, ambient_n: f64) -> Result<Self, GeometryError> {
        if layers.is_empty() {
            return Err(GeometryError::Empty("layer"));
        }
        if !(ambient_n >= 1.0 && ambient_n.is_finite()) {
            return Err(GeometryError::BadAmbientIndex(ambient_n));
        }
        if layers[0].z_top != 0.0 {
            return Err(GeometryError::BadLayerStack(format!(
                "first layer must start at the surface z=0, starts at {}",
                layers[0].z_top
            )));
        }
        for pair in layers.windows(2) {
            if pair[0].is_semi_infinite() {
                return Err(GeometryError::BadLayerStack(format!(
                    "layer '{}' is semi-infinite but not last",
                    pair[0].name
                )));
            }
            if (pair[0].z_bottom - pair[1].z_top).abs() > 1e-9 {
                return Err(GeometryError::BadLayerStack(format!(
                    "gap between layer '{}' (ends {}) and '{}' (starts {})",
                    pair[0].name, pair[0].z_bottom, pair[1].name, pair[1].z_top
                )));
            }
        }
        for layer in &layers {
            layer
                .optics
                .validate()
                .map_err(|e| GeometryError::BadOptics { region: layer.name.clone(), reason: e })?;
        }
        let derived = layers.iter().map(|l| l.optics.derive()).collect();
        Ok(Self { layers, ambient_n, derived })
    }

    /// Convenience: stack layers from `(name, thickness, optics)` triples
    /// starting at the surface.
    ///
    /// ```
    /// use lumen_tissue::{LayeredTissue, OpticalProperties};
    /// let skin = OpticalProperties::new(0.02, 20.0, 0.9, 1.4);
    /// let fat = OpticalProperties::new(0.01, 12.0, 0.9, 1.4);
    /// let model = LayeredTissue::stack(
    ///     vec![
    ///         ("skin".into(), 1.5, skin),
    ///         ("fat".into(), f64::INFINITY, fat),
    ///     ],
    ///     1.0, // air above
    /// ).unwrap();
    /// assert_eq!(model.layer_at(0.5), Some(0));
    /// assert_eq!(model.layer_at(3.0), Some(1));
    /// ```
    pub fn stack(
        specs: Vec<(String, f64, OpticalProperties)>,
        ambient_n: f64,
    ) -> Result<Self, GeometryError> {
        let mut z = 0.0;
        let mut layers = Vec::with_capacity(specs.len());
        for (name, thickness, optics) in specs {
            layers.push(Layer::new(name, z, thickness, optics));
            z += thickness;
        }
        Self::new(layers, ambient_n)
    }

    /// A single semi-infinite homogeneous medium.
    pub fn homogeneous(name: impl Into<String>, optics: OpticalProperties, ambient_n: f64) -> Self {
        Self::new(vec![Layer::new(name, 0.0, f64::INFINITY, optics)], ambient_n)
            .expect("homogeneous model is always valid")
    }

    /// The layers, top to bottom.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the model has no layers (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total finite depth of the stack; infinite if the last layer is
    /// semi-infinite.
    pub fn total_depth(&self) -> f64 {
        self.layers.last().map(|l| l.z_bottom).unwrap_or(0.0)
    }

    /// Index of the layer containing depth `z`, or `None` outside [0, depth).
    pub fn layer_at(&self, z: f64) -> Option<usize> {
        if z < 0.0 {
            return None;
        }
        // Linear scan: head models have ≤ 5 layers, and the engine caches
        // the index between boundary crossings anyway.
        self.layers.iter().position(|l| l.contains(z))
    }

    /// Optical properties of layer `idx`.
    #[inline]
    pub fn optics(&self, idx: usize) -> &OpticalProperties {
        &self.layers[idx].optics
    }

    /// Precomputed transport constants of layer `idx`.
    #[inline]
    pub fn derived(&self, idx: usize) -> &DerivedOptics {
        &self.derived[idx]
    }

    /// Direction-independent lower bound on the distance from `pos` to any
    /// boundary of layer `idx`: the smaller perpendicular gap to the
    /// layer's two planes. A unit direction's |dz/dt| ≤ 1, so no ray can
    /// reach a plane sooner than its perpendicular gap. Infinite below a
    /// semi-infinite bottom; negative when `pos` has drifted outside the
    /// layer (callers must treat that as "no bound").
    #[inline]
    pub fn min_boundary_distance(&self, pos: Vec3, idx: usize) -> f64 {
        let layer = &self.layers[idx];
        (layer.z_bottom - pos.z).min(pos.z - layer.z_top)
    }

    /// Refractive index on the far side of the boundary a photon in layer
    /// `idx` is crossing: the adjacent layer's index, or the ambient medium.
    pub fn neighbour_n(&self, idx: usize, moving_up: bool) -> f64 {
        if moving_up {
            if idx == 0 {
                self.ambient_n
            } else {
                self.layers[idx - 1].optics.n
            }
        } else if idx + 1 < self.layers.len() {
            self.layers[idx + 1].optics.n
        } else {
            // Below a finite stack: treat as ambient (photon transmits out).
            self.ambient_n
        }
    }

    /// Distance from `pos` travelling along unit `dir` to the first
    /// boundary plane of layer `layer_idx`, with the successor layer index.
    ///
    /// Horizontal travel (`dir.z == 0`) never meets a horizontal boundary:
    /// returns an infinite hit.
    #[inline]
    pub fn boundary_hit(&self, pos: Vec3, dir: Vec3, layer_idx: usize) -> BoundaryHit {
        let layer = &self.layers[layer_idx];
        if dir.z > 0.0 {
            // Moving deeper: next plane is the layer bottom.
            let distance = (layer.z_bottom - pos.z) / dir.z;
            let next = if layer_idx + 1 < self.layers.len() { Some(layer_idx + 1) } else { None };
            BoundaryHit {
                distance: distance.max(0.0),
                next_region: next,
                is_top_surface: false,
                axis: Axis::Z,
            }
        } else if dir.z < 0.0 {
            // Moving up: next plane is the layer top.
            let distance = (layer.z_top - pos.z) / dir.z;
            let next = if layer_idx > 0 { Some(layer_idx - 1) } else { None };
            BoundaryHit {
                distance: distance.max(0.0),
                next_region: next,
                is_top_surface: layer_idx == 0,
                axis: Axis::Z,
            }
        } else {
            BoundaryHit {
                distance: f64::INFINITY,
                next_region: None,
                is_top_surface: false,
                axis: Axis::Z,
            }
        }
    }

    /// Total one-way optical depth of the finite part of the stack.
    pub fn cumulative_optical_depth(&self) -> f64 {
        self.layers.iter().filter(|l| !l.is_semi_infinite()).map(|l| l.optical_thickness()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(mu_a: f64, mu_s: f64) -> OpticalProperties {
        OpticalProperties::new(mu_a, mu_s, 0.9, 1.4)
    }

    fn two_layer() -> LayeredTissue {
        LayeredTissue::stack(
            vec![
                ("A".into(), 2.0, props(0.01, 10.0)),
                ("B".into(), f64::INFINITY, props(0.02, 20.0)),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn stack_builds_contiguous_layers() {
        let t = two_layer();
        assert_eq!(t.len(), 2);
        assert_eq!(t.layers()[0].z_bottom, 2.0);
        assert_eq!(t.layers()[1].z_top, 2.0);
        assert!(t.layers()[1].is_semi_infinite());
    }

    #[test]
    fn layer_lookup() {
        let t = two_layer();
        assert_eq!(t.layer_at(0.0), Some(0));
        assert_eq!(t.layer_at(1.999), Some(0));
        assert_eq!(t.layer_at(2.0), Some(1));
        assert_eq!(t.layer_at(1e9), Some(1));
        assert_eq!(t.layer_at(-0.1), None);
    }

    #[test]
    fn rejects_gap() {
        let layers = vec![
            Layer::new("A", 0.0, 1.0, props(0.01, 10.0)),
            Layer::new("B", 1.5, 1.0, props(0.01, 10.0)),
        ];
        assert!(LayeredTissue::new(layers, 1.0).is_err());
    }

    #[test]
    fn rejects_float_start() {
        let layers = vec![Layer::new("A", 0.5, 1.0, props(0.01, 10.0))];
        assert!(LayeredTissue::new(layers, 1.0).is_err());
    }

    #[test]
    fn rejects_mid_stack_semi_infinite() {
        let layers = vec![
            Layer::new("A", 0.0, f64::INFINITY, props(0.01, 10.0)),
            Layer::new("B", 1.0, 1.0, props(0.01, 10.0)),
        ];
        assert!(LayeredTissue::new(layers, 1.0).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(LayeredTissue::new(vec![], 1.0).is_err());
    }

    #[test]
    fn boundary_hit_downward() {
        let t = two_layer();
        let hit = t.boundary_hit(Vec3::new(0.0, 0.0, 0.5), Vec3::PLUS_Z, 0);
        assert!((hit.distance - 1.5).abs() < 1e-12);
        assert_eq!(hit.next_region, Some(1));
        assert!(!hit.is_top_surface);
    }

    #[test]
    fn boundary_hit_oblique() {
        let t = two_layer();
        let dir = Vec3::new(0.6, 0.0, 0.8);
        let hit = t.boundary_hit(Vec3::new(0.0, 0.0, 0.0), dir, 0);
        assert!((hit.distance - 2.0 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn boundary_hit_upward_to_surface() {
        let t = two_layer();
        let hit = t.boundary_hit(Vec3::new(0.0, 0.0, 0.5), -Vec3::PLUS_Z, 0);
        assert!((hit.distance - 0.5).abs() < 1e-12);
        assert_eq!(hit.next_region, None);
        assert!(hit.is_top_surface);
    }

    #[test]
    fn boundary_hit_horizontal_is_infinite() {
        let t = two_layer();
        let hit = t.boundary_hit(Vec3::new(0.0, 0.0, 0.5), Vec3::new(1.0, 0.0, 0.0), 0);
        assert_eq!(hit.distance, f64::INFINITY);
    }

    #[test]
    fn neighbour_indices() {
        let t = two_layer();
        assert_eq!(t.neighbour_n(0, true), 1.0); // ambient above
        assert_eq!(t.neighbour_n(0, false), 1.4); // layer B below
        assert_eq!(t.neighbour_n(1, true), 1.4); // layer A above
    }

    #[test]
    fn semi_infinite_bottom_never_exits_below() {
        let t = two_layer();
        let hit = t.boundary_hit(Vec3::new(0.0, 0.0, 5.0), Vec3::PLUS_Z, 1);
        assert_eq!(hit.distance, f64::INFINITY);
        assert_eq!(hit.next_region, None);
    }

    #[test]
    fn homogeneous_model() {
        let t = LayeredTissue::homogeneous("wm", props(0.014, 91.0), 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.layer_at(100.0), Some(0));
        assert_eq!(t.total_depth(), f64::INFINITY);
    }

    #[test]
    fn cumulative_optical_depth_ignores_infinite_layer() {
        let t = two_layer();
        assert!((t.cumulative_optical_depth() - 2.0 * 10.01).abs() < 1e-9);
    }
}
