//! Tissue models from the reproduced paper.
//!
//! Table 1 of the paper tabulates, for each tissue of the adult head, the
//! transport (reduced) scattering coefficient μs′ and the absorption
//! coefficient μa in mm⁻¹, plus a thickness column. The thickness column
//! mixes conventions (scalp/skull given as 0.3–1 cm and 0.5–1 cm ranges;
//! CSF "2" and grey matter "4" correspond to the 2 mm / 4 mm of the
//! underlying Okada & Delpy head model the paper cites). The defaults below
//! use the mid-range scalp/skull values and the Okada & Delpy CSF/grey
//! thicknesses; all are overridable via [`AdultHeadConfig`].
//!
//! Anisotropy: the paper tabulates only μs′ = μs (1 − g). We follow the
//! NIR-tissue convention g = 0.9 (n = 1.4) for all scattering layers and
//! recover μs = μs′ / (1 − g); for the low-scattering CSF the same applies.
//! Since transport through a medium is governed by (μa, μs′) under the
//! similarity relation, the choice of g does not change the macroscopic
//! distributions the paper reports.

use crate::error::GeometryError;
use crate::model::LayeredTissue;
use crate::voxel::{VoxelMaterial, VoxelTissue};
use lumen_photon::{OpticalProperties, Vec3};
use serde::{Deserialize, Serialize};

/// Standard tissue refractive index in the NIR.
pub const TISSUE_N: f64 = 1.4;
/// Standard anisotropy factor used to expand the Table 1 μs′ values.
pub const TISSUE_G: f64 = 0.9;
/// Ambient (air) refractive index above the scalp.
pub const AIR_N: f64 = 1.0;

/// Table 1, row "Scalp": μs′ = 1.9 mm⁻¹, μa = 0.018 mm⁻¹.
pub fn scalp_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.018, 1.9, TISSUE_G, TISSUE_N)
}

/// Table 1, row "Skull": μs′ = 1.6 mm⁻¹, μa = 0.016 mm⁻¹.
pub fn skull_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.016, 1.6, TISSUE_G, TISSUE_N)
}

/// Table 1, row "CSF": μs′ = 0.25 mm⁻¹, μa = 0.004 mm⁻¹ — the low-
/// scattering layer "sandwiched" between highly scattering tissue.
pub fn csf_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.004, 0.25, TISSUE_G, TISSUE_N)
}

/// Table 1, row "Grey matter": μs′ = 2.2 mm⁻¹, μa = 0.036 mm⁻¹.
pub fn grey_matter_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.036, 2.2, TISSUE_G, TISSUE_N)
}

/// Table 1, row "White matter": μs′ = 9.1 mm⁻¹, μa = 0.014 mm⁻¹.
pub fn white_matter_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.014, 9.1, TISSUE_G, TISSUE_N)
}

/// Layer thicknesses for the adult-head stack (mm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdultHeadConfig {
    pub scalp_mm: f64,
    pub skull_mm: f64,
    pub csf_mm: f64,
    pub grey_mm: f64,
}

impl Default for AdultHeadConfig {
    /// Mid-range scalp (6.5 mm within the paper's 3–10 mm), mid-range skull
    /// (7.5 mm within 5–10 mm), Okada & Delpy CSF (2 mm) and grey (4 mm).
    fn default() -> Self {
        Self { scalp_mm: 6.5, skull_mm: 7.5, csf_mm: 2.0, grey_mm: 4.0 }
    }
}

impl AdultHeadConfig {
    /// Thinnest stack consistent with Table 1's ranges.
    pub fn thin() -> Self {
        Self { scalp_mm: 3.0, skull_mm: 5.0, csf_mm: 2.0, grey_mm: 4.0 }
    }

    /// Thickest stack consistent with Table 1's ranges.
    pub fn thick() -> Self {
        Self { scalp_mm: 10.0, skull_mm: 10.0, csf_mm: 2.0, grey_mm: 4.0 }
    }

    /// Depth at which white matter begins (mm).
    pub fn white_matter_depth(&self) -> f64 {
        self.scalp_mm + self.skull_mm + self.csf_mm + self.grey_mm
    }

    /// Depth at which the CSF begins (mm).
    pub fn csf_depth(&self) -> f64 {
        self.scalp_mm + self.skull_mm
    }
}

/// The five-layer adult head model of Table 1: scalp, skull, CSF, grey
/// matter, and semi-infinite white matter, with air above the scalp.
pub fn adult_head(config: AdultHeadConfig) -> LayeredTissue {
    LayeredTissue::stack(
        vec![
            ("Scalp".into(), config.scalp_mm, scalp_optics()),
            ("Skull".into(), config.skull_mm, skull_optics()),
            ("CSF".into(), config.csf_mm, csf_optics()),
            ("Grey matter".into(), config.grey_mm, grey_matter_optics()),
            ("White matter".into(), f64::INFINITY, white_matter_optics()),
        ],
        AIR_N,
    )
    .expect("adult head preset is always valid")
}

/// The homogeneous white-matter medium used for the paper's Fig 3
/// verification ("1 billion photons through a homogeneous tissue (white
/// matter)"; the detected paths form the expected banana shape).
pub fn homogeneous_white_matter() -> LayeredTissue {
    LayeredTissue::homogeneous("White matter", white_matter_optics(), AIR_N)
}

/// A neonatal head variant after Fukui, Ajichi & Okada (the paper's
/// reference \[1\]): substantially thinner superficial layers, which is why
/// neonatal NIRS probes deeper brain tissue than adult probes do.
pub fn neonatal_head() -> LayeredTissue {
    LayeredTissue::stack(
        vec![
            ("Scalp".into(), 2.0, scalp_optics()),
            ("Skull".into(), 2.0, skull_optics()),
            ("CSF".into(), 1.5, csf_optics()),
            ("Grey matter".into(), 4.0, grey_matter_optics()),
            ("White matter".into(), f64::INFINITY, white_matter_optics()),
        ],
        AIR_N,
    )
    .expect("neonatal head preset is always valid")
}

/// A generic single-layer phantom with user-supplied properties — handy in
/// tests and for comparing against published semi-infinite benchmarks.
pub fn semi_infinite_phantom(mu_a: f64, mu_s: f64, g: f64, n: f64) -> LayeredTissue {
    LayeredTissue::homogeneous("Phantom", OpticalProperties::new(mu_a, mu_s, g, n), AIR_N)
}

/// Voxelize a layered stack: an `(2·half_width)² × depth` grid at pitch
/// `dx`, each voxel taking the material of the layer containing its centre.
/// The palette has one material per layer (same indices), so per-region
/// tallies remain directly comparable with the layered run.
///
/// `depth_mm` may extend into a semi-infinite bottom layer but must not
/// exceed a finite stack's total depth.
pub fn voxelized(
    tissue: &LayeredTissue,
    dx: f64,
    half_width_mm: f64,
    depth_mm: f64,
) -> Result<VoxelTissue, GeometryError> {
    if !(dx > 0.0 && half_width_mm > 0.0 && depth_mm > 0.0) {
        return Err(GeometryError::BadGrid(format!(
            "voxelized() needs positive pitch/extent, got dx={dx}, \
             half_width={half_width_mm}, depth={depth_mm}"
        )));
    }
    if depth_mm > tissue.total_depth() {
        return Err(GeometryError::BadGrid(format!(
            "depth {depth_mm} mm exceeds the {} mm layered stack",
            tissue.total_depth()
        )));
    }
    let n_lateral = (2.0 * half_width_mm / dx).ceil() as usize;
    let nz = (depth_mm / dx).ceil() as usize;
    // Centre the (possibly rounded-up) lateral extent on the origin.
    let origin = -(n_lateral as f64) * dx / 2.0;
    let materials: Vec<VoxelMaterial> =
        tissue.layers().iter().map(|l| VoxelMaterial::new(l.name.clone(), l.optics)).collect();
    VoxelTissue::from_fn(
        (n_lateral, n_lateral, nz),
        (origin, origin),
        (dx, dx, dx),
        materials,
        tissue.ambient_n,
        // Ceil-rounding can push the last voxel centre past a finite
        // stack's bottom even though `depth_mm` itself is legal; that
        // sliver (at most dx/2) inherits the bottom layer.
        |centre| tissue.layer_at(centre.z).unwrap_or(tissue.len() - 1) as u16,
    )
}

/// Optics of a strongly absorbing tumour-like inclusion (10× grey-matter
/// absorption, grey-matter scattering).
pub fn inclusion_optics() -> OpticalProperties {
    OpticalProperties::from_reduced_scattering(0.36, 2.2, TISSUE_G, TISSUE_N)
}

/// The adult-head phantom with a spherical absorbing inclusion — the
/// lateral inhomogeneity a layered model cannot express. The head stack is
/// voxelized at pitch `dx` over ±`half_width_mm` laterally and `depth_mm`
/// deep; voxels whose centre lies within `radius_mm` of `centre` become the
/// extra "Inclusion" material (palette index = number of head layers).
pub fn head_with_inclusion(
    config: AdultHeadConfig,
    dx: f64,
    half_width_mm: f64,
    depth_mm: f64,
    centre: Vec3,
    radius_mm: f64,
) -> Result<VoxelTissue, GeometryError> {
    let head = adult_head(config);
    let base = voxelized(&head, dx, half_width_mm, depth_mm)?;
    let mut materials = base.materials().to_vec();
    let inclusion_idx = materials.len() as u16;
    materials.push(VoxelMaterial::new("Inclusion", inclusion_optics()));
    let (nx, ny, nz) = base.dims();
    let mut cells = base.cells().to_vec();
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                if base.centre(ix, iy, iz).distance(centre) <= radius_mm {
                    cells[(iz * ny + iy) * nx + ix] = inclusion_idx;
                }
            }
        }
    }
    VoxelTissue::new(base.dims(), base.origin(), base.voxel_mm(), materials, cells, head.ambient_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact Table 1 values must round-trip through the presets.
    #[test]
    fn table1_reduced_scattering_values() {
        assert!((scalp_optics().mu_s_prime() - 1.9).abs() < 1e-12);
        assert!((skull_optics().mu_s_prime() - 1.6).abs() < 1e-12);
        assert!((csf_optics().mu_s_prime() - 0.25).abs() < 1e-12);
        assert!((grey_matter_optics().mu_s_prime() - 2.2).abs() < 1e-12);
        assert!((white_matter_optics().mu_s_prime() - 9.1).abs() < 1e-12);
    }

    #[test]
    fn table1_absorption_values() {
        assert_eq!(scalp_optics().mu_a, 0.018);
        assert_eq!(skull_optics().mu_a, 0.016);
        assert_eq!(csf_optics().mu_a, 0.004);
        assert_eq!(grey_matter_optics().mu_a, 0.036);
        assert_eq!(white_matter_optics().mu_a, 0.014);
    }

    #[test]
    fn csf_is_least_scattering_layer() {
        // The paper: "The CSF layer ... has very low scattering properties".
        let layers = [
            scalp_optics(),
            skull_optics(),
            csf_optics(),
            grey_matter_optics(),
            white_matter_optics(),
        ];
        let csf = csf_optics().mu_s_prime();
        for (i, l) in layers.iter().enumerate() {
            if i != 2 {
                assert!(l.mu_s_prime() > csf);
            }
        }
    }

    #[test]
    fn white_matter_is_most_scattering() {
        let wm = white_matter_optics().mu_s_prime();
        for o in [scalp_optics(), skull_optics(), csf_optics(), grey_matter_optics()] {
            assert!(wm > o.mu_s_prime());
        }
    }

    #[test]
    fn adult_head_has_five_layers_in_order() {
        let head = adult_head(AdultHeadConfig::default());
        let names: Vec<&str> = head.layers().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["Scalp", "Skull", "CSF", "Grey matter", "White matter"]);
        assert!(head.layers().last().unwrap().is_semi_infinite());
    }

    #[test]
    fn adult_head_depth_bookkeeping() {
        let cfg = AdultHeadConfig::default();
        let head = adult_head(cfg);
        assert_eq!(head.layer_at(cfg.csf_depth() + 0.1), Some(2));
        assert_eq!(head.layer_at(cfg.white_matter_depth() + 0.1), Some(4));
        assert!((cfg.white_matter_depth() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn thin_and_thick_configs_bracket_default() {
        let d = AdultHeadConfig::default();
        let t = AdultHeadConfig::thin();
        let k = AdultHeadConfig::thick();
        assert!(t.white_matter_depth() < d.white_matter_depth());
        assert!(d.white_matter_depth() < k.white_matter_depth());
    }

    #[test]
    fn neonatal_layers_are_thinner() {
        let neo = neonatal_head();
        let adult = adult_head(AdultHeadConfig::default());
        // Superficial (scalp+skull) thickness comparison.
        let neo_sup = neo.layers()[0].thickness() + neo.layers()[1].thickness();
        let adult_sup = adult.layers()[0].thickness() + adult.layers()[1].thickness();
        assert!(neo_sup < adult_sup);
    }

    #[test]
    fn homogeneous_white_matter_is_single_layer() {
        let m = homogeneous_white_matter();
        assert_eq!(m.len(), 1);
        assert_eq!(m.optics(0).mu_a, 0.014);
    }

    #[test]
    fn phantom_builder() {
        let m = semi_infinite_phantom(0.1, 10.0, 0.9, 1.4);
        assert_eq!(m.optics(0).mu_s, 10.0);
        assert_eq!(m.ambient_n, 1.0);
    }
}
