//! The geometry abstraction the transport engine is generic over.
//!
//! The photon stepping loop only ever asks a tissue model five questions:
//! how many regions are there, what are region `r`'s optics, which region
//! does a photon enter at the surface, where is the next boundary along a
//! ray, and what refractive index sits on the far side of that boundary.
//! [`TissueGeometry`] is exactly that interface; [`LayeredTissue`] (1-D
//! slabs) and [`VoxelTissue`] (dense 3-D material grids) both implement it,
//! and the engine monomorphizes the hot loop per implementation — layered
//! scenarios pay nothing for the abstraction (the golden-tally harness
//! pins them bit-for-bit).
//!
//! [`Geometry`] is the closed enum of shipped implementations used wherever
//! a *value* has to be stored, serialized, or sent over the cluster wire
//! (`Scenario`, the CLI config, `lumen_cluster::wire`).

use crate::error::GeometryError;
use crate::model::{BoundaryHit, LayeredTissue};
use crate::voxel::VoxelTissue;
use lumen_photon::{DerivedOptics, OpticalProperties, Vec3};
use serde::{Deserialize, Serialize};

/// Geometric queries the transport loop needs, answered by any tissue
/// model.
///
/// Regions are dense indices `0..region_count()`: layer indices for a
/// layered stack, material-palette indices for a voxel grid. Per-region
/// tallies (absorption, partial pathlengths) are keyed by them.
pub trait TissueGeometry {
    /// Number of distinct regions (layers or palette materials).
    fn region_count(&self) -> usize;

    /// Human-readable name of region `region` (for reports).
    fn region_name(&self, region: usize) -> &str;

    /// Optical properties of region `region`.
    fn optics(&self, region: usize) -> &OpticalProperties;

    /// Precomputed transport constants of region `region` — what the hot
    /// loop reads instead of re-deriving μt, μa/μt, and the albedo per
    /// interaction. Implementations build the table once at construction;
    /// every field is bit-identical to the inline expression it replaces
    /// (see [`DerivedOptics`]).
    fn derived(&self, region: usize) -> &DerivedOptics;

    /// Refractive index of the ambient medium above the z = 0 surface.
    fn ambient_n(&self) -> f64;

    /// Region a photon enters at surface position `pos` (z = 0) travelling
    /// straight down, or `None` when the surface point lies outside the
    /// geometry's lateral extent (possible only for finite voxel grids).
    fn entry_region(&self, pos: Vec3) -> Option<usize>;

    /// First boundary along `dir` from `pos` for a photon currently in
    /// `region`: distance, far-side region, and the boundary's normal axis.
    fn boundary_hit(&self, pos: Vec3, dir: Vec3, region: usize) -> BoundaryHit;

    /// A cheap, direction-independent lower bound on
    /// [`boundary_hit`](Self::boundary_hit)'s distance from `pos` inside
    /// `region`, or any value `<= 0` when no useful bound exists (the
    /// default). The engine skips the full boundary query — and its
    /// division by the direction cosine — whenever the sampled step is at
    /// most *half* this bound; the factor-2 margin strictly dominates the
    /// rounding error of the exact distance computation, so the fast and
    /// slow paths always make the same interact-vs-boundary decision.
    #[inline]
    fn min_boundary_distance(&self, pos: Vec3, region: usize) -> f64 {
        let _ = (pos, region);
        0.0
    }

    /// Refractive index on the far side of `hit` for a photon in `region`:
    /// the next region's index, or the ambient medium when the photon is
    /// exiting the tissue.
    fn neighbour_n(&self, region: usize, hit: &BoundaryHit) -> f64 {
        let _ = region;
        match hit.next_region {
            Some(next) => self.optics(next).n,
            None => self.ambient_n(),
        }
    }

    /// Transport-level validation beyond construction invariants (e.g. a
    /// layered stack's semi-infinite bottom must not be transparent, or a
    /// photon could stream forever).
    fn validate(&self) -> Result<(), GeometryError>;
}

impl TissueGeometry for LayeredTissue {
    #[inline]
    fn region_count(&self) -> usize {
        self.len()
    }

    fn region_name(&self, region: usize) -> &str {
        &self.layers()[region].name
    }

    #[inline]
    fn optics(&self, region: usize) -> &OpticalProperties {
        LayeredTissue::optics(self, region)
    }

    #[inline]
    fn derived(&self, region: usize) -> &DerivedOptics {
        LayeredTissue::derived(self, region)
    }

    #[inline]
    fn ambient_n(&self) -> f64 {
        self.ambient_n
    }

    fn entry_region(&self, _pos: Vec3) -> Option<usize> {
        // Layers span the whole x-y plane: entry is always the top layer.
        self.layer_at(0.0)
    }

    #[inline]
    fn boundary_hit(&self, pos: Vec3, dir: Vec3, region: usize) -> BoundaryHit {
        LayeredTissue::boundary_hit(self, pos, dir, region)
    }

    #[inline]
    fn min_boundary_distance(&self, pos: Vec3, region: usize) -> f64 {
        LayeredTissue::min_boundary_distance(self, pos, region)
    }

    fn validate(&self) -> Result<(), GeometryError> {
        let last = self.layers().last().expect("validated non-empty");
        if last.is_semi_infinite() && last.optics.is_transparent() {
            return Err(GeometryError::BadOptics {
                region: last.name.clone(),
                reason: "the semi-infinite bottom layer cannot be transparent".into(),
            });
        }
        Ok(())
    }
}

/// The closed set of shipped tissue geometries — what a [`Scenario`]
/// (`lumen_core::engine`) stores and the cluster wire format ships.
///
/// [`From`] impls let every pre-voxel call site keep passing a bare
/// [`LayeredTissue`]: `Simulation::new(tissue, ...)` and
/// `Scenario::new(tissue, ...)` accept `impl Into<Geometry>`.
///
/// [`Scenario`]: ../lumen_core/engine/struct.Scenario.html
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// 1-D stack of horizontal slabs (the paper's head models).
    Layered(LayeredTissue),
    /// Dense 3-D voxel grid with a material palette.
    Voxel(VoxelTissue),
}

impl From<LayeredTissue> for Geometry {
    fn from(t: LayeredTissue) -> Self {
        Geometry::Layered(t)
    }
}

impl From<VoxelTissue> for Geometry {
    fn from(t: VoxelTissue) -> Self {
        Geometry::Voxel(t)
    }
}

macro_rules! dispatch {
    ($self:ident, $g:ident => $body:expr) => {
        match $self {
            Geometry::Layered($g) => $body,
            Geometry::Voxel($g) => $body,
        }
    };
}

impl Geometry {
    /// Number of regions — see [`TissueGeometry::region_count`].
    pub fn region_count(&self) -> usize {
        dispatch!(self, g => g.region_count())
    }

    /// Alias for [`Self::region_count`], mirroring `LayeredTissue::len`.
    pub fn len(&self) -> usize {
        self.region_count()
    }

    /// True when the geometry has no regions (unconstructible).
    pub fn is_empty(&self) -> bool {
        self.region_count() == 0
    }

    /// Name of region `region`.
    pub fn region_name(&self, region: usize) -> &str {
        dispatch!(self, g => g.region_name(region))
    }

    /// Optics of region `region`.
    pub fn optics(&self, region: usize) -> &OpticalProperties {
        dispatch!(self, g => TissueGeometry::optics(g, region))
    }

    /// Precomputed transport constants of region `region`.
    pub fn derived(&self, region: usize) -> &DerivedOptics {
        dispatch!(self, g => TissueGeometry::derived(g, region))
    }

    /// Ambient refractive index above the surface.
    pub fn ambient_n(&self) -> f64 {
        dispatch!(self, g => TissueGeometry::ambient_n(g))
    }

    /// Entry region at surface position `pos`.
    pub fn entry_region(&self, pos: Vec3) -> Option<usize> {
        dispatch!(self, g => g.entry_region(pos))
    }

    /// First boundary along a ray — see [`TissueGeometry::boundary_hit`].
    pub fn boundary_hit(&self, pos: Vec3, dir: Vec3, region: usize) -> BoundaryHit {
        dispatch!(self, g => TissueGeometry::boundary_hit(g, pos, dir, region))
    }

    /// Direction-independent boundary-distance lower bound — see
    /// [`TissueGeometry::min_boundary_distance`].
    pub fn min_boundary_distance(&self, pos: Vec3, region: usize) -> f64 {
        dispatch!(self, g => TissueGeometry::min_boundary_distance(g, pos, region))
    }

    /// Far-side refractive index — see [`TissueGeometry::neighbour_n`].
    pub fn neighbour_n(&self, region: usize, hit: &BoundaryHit) -> f64 {
        dispatch!(self, g => TissueGeometry::neighbour_n(g, region, hit))
    }

    /// Transport-level validation — see [`TissueGeometry::validate`].
    pub fn validate(&self) -> Result<(), GeometryError> {
        dispatch!(self, g => TissueGeometry::validate(g))
    }

    /// The layered model, if this is one.
    pub fn as_layered(&self) -> Option<&LayeredTissue> {
        match self {
            Geometry::Layered(t) => Some(t),
            Geometry::Voxel(_) => None,
        }
    }

    /// The voxel model, if this is one.
    pub fn as_voxel(&self) -> Option<&VoxelTissue> {
        match self {
            Geometry::Voxel(t) => Some(t),
            Geometry::Layered(_) => None,
        }
    }

    /// Short kind name for reports and config round-trips.
    pub fn kind(&self) -> &'static str {
        match self {
            Geometry::Layered(_) => "layered",
            Geometry::Voxel(_) => "voxel",
        }
    }
}

impl TissueGeometry for Geometry {
    fn region_count(&self) -> usize {
        Geometry::region_count(self)
    }

    fn region_name(&self, region: usize) -> &str {
        Geometry::region_name(self, region)
    }

    fn optics(&self, region: usize) -> &OpticalProperties {
        Geometry::optics(self, region)
    }

    fn derived(&self, region: usize) -> &DerivedOptics {
        Geometry::derived(self, region)
    }

    fn ambient_n(&self) -> f64 {
        Geometry::ambient_n(self)
    }

    fn entry_region(&self, pos: Vec3) -> Option<usize> {
        Geometry::entry_region(self, pos)
    }

    fn boundary_hit(&self, pos: Vec3, dir: Vec3, region: usize) -> BoundaryHit {
        Geometry::boundary_hit(self, pos, dir, region)
    }

    fn min_boundary_distance(&self, pos: Vec3, region: usize) -> f64 {
        Geometry::min_boundary_distance(self, pos, region)
    }

    fn neighbour_n(&self, region: usize, hit: &BoundaryHit) -> f64 {
        Geometry::neighbour_n(self, region, hit)
    }

    fn validate(&self) -> Result<(), GeometryError> {
        Geometry::validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{adult_head, AdultHeadConfig};
    use lumen_photon::Axis;

    #[test]
    fn layered_trait_answers_match_inherent_api() {
        let head = adult_head(AdultHeadConfig::default());
        assert_eq!(TissueGeometry::region_count(&head), head.len());
        assert_eq!(TissueGeometry::region_name(&head, 2), "CSF");
        assert_eq!(TissueGeometry::ambient_n(&head), head.ambient_n);
        assert_eq!(TissueGeometry::entry_region(&head, Vec3::ZERO), Some(0));
        let hit = TissueGeometry::boundary_hit(&head, Vec3::new(0.0, 0.0, 1.0), Vec3::PLUS_Z, 0);
        assert_eq!(hit.axis, Axis::Z);
        assert_eq!(hit.next_region, Some(1));
    }

    #[test]
    fn neighbour_n_default_matches_layered_rule() {
        let head = adult_head(AdultHeadConfig::default());
        // Downward crossing out of layer 0 → layer 1's index.
        let down = TissueGeometry::boundary_hit(&head, Vec3::new(0.0, 0.0, 1.0), Vec3::PLUS_Z, 0);
        assert_eq!(TissueGeometry::neighbour_n(&head, 0, &down), head.neighbour_n(0, false));
        // Upward crossing out of layer 0 → ambient.
        let up = TissueGeometry::boundary_hit(&head, Vec3::new(0.0, 0.0, 1.0), -Vec3::PLUS_Z, 0);
        assert_eq!(TissueGeometry::neighbour_n(&head, 0, &up), head.neighbour_n(0, true));
        // Upward crossing out of layer 3 → layer 2's index.
        let up3 = TissueGeometry::boundary_hit(&head, Vec3::new(0.0, 0.0, 17.0), -Vec3::PLUS_Z, 3);
        assert_eq!(TissueGeometry::neighbour_n(&head, 3, &up3), head.neighbour_n(3, true));
    }

    #[test]
    fn enum_dispatch_and_conversions() {
        let head = adult_head(AdultHeadConfig::default());
        let g: Geometry = head.clone().into();
        assert_eq!(g.kind(), "layered");
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        assert_eq!(g.region_name(4), "White matter");
        assert_eq!(g.optics(4).mu_a, head.optics(4).mu_a);
        assert!(g.as_layered().is_some());
        assert!(g.as_voxel().is_none());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn transparent_semi_infinite_bottom_fails_transport_validation() {
        let t = LayeredTissue::homogeneous("void", OpticalProperties::transparent(1.0), 1.0);
        assert!(matches!(TissueGeometry::validate(&t), Err(GeometryError::BadOptics { .. })));
    }
}
