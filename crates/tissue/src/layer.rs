//! A single horizontal tissue slab.

use lumen_photon::OpticalProperties;
use serde::{Deserialize, Serialize};

/// One homogeneous slab of the layered medium.
///
/// Layers span `[z_top, z_bottom)` in mm, with z increasing into the
/// tissue. A semi-infinite bottom layer has `z_bottom = f64::INFINITY`
/// (Table 1 gives no thickness for white matter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable tissue name ("Scalp", "CSF", ...).
    pub name: String,
    /// Upper boundary depth (mm, inclusive).
    pub z_top: f64,
    /// Lower boundary depth (mm, exclusive); may be infinite.
    pub z_bottom: f64,
    /// Optical properties of the slab.
    pub optics: OpticalProperties,
}

impl Layer {
    /// Construct a layer; `thickness` may be `f64::INFINITY` for the final
    /// semi-infinite slab.
    pub fn new(
        name: impl Into<String>,
        z_top: f64,
        thickness: f64,
        optics: OpticalProperties,
    ) -> Self {
        assert!(z_top >= 0.0 && z_top.is_finite(), "layer top must be finite, >= 0");
        assert!(thickness > 0.0, "layer thickness must be positive");
        Self { name: name.into(), z_top, z_bottom: z_top + thickness, optics }
    }

    /// Slab thickness in mm (infinite for the terminal layer).
    #[inline]
    pub fn thickness(&self) -> f64 {
        self.z_bottom - self.z_top
    }

    /// Whether the given depth lies inside this layer.
    #[inline]
    pub fn contains(&self, z: f64) -> bool {
        z >= self.z_top && z < self.z_bottom
    }

    /// True if this layer extends to infinite depth.
    #[inline]
    pub fn is_semi_infinite(&self) -> bool {
        self.z_bottom.is_infinite()
    }

    /// Number of transport mean free paths across the slab — a quick gauge
    /// of how opaque it is (infinite for semi-infinite layers).
    pub fn optical_thickness(&self) -> f64 {
        self.thickness() * self.optics.mu_t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optics() -> OpticalProperties {
        OpticalProperties::new(0.018, 19.0, 0.9, 1.4)
    }

    #[test]
    fn construction_and_extent() {
        let l = Layer::new("Scalp", 0.0, 3.0, optics());
        assert_eq!(l.thickness(), 3.0);
        assert!(l.contains(0.0));
        assert!(l.contains(2.999));
        assert!(!l.contains(3.0));
        assert!(!l.contains(-0.1));
        assert!(!l.is_semi_infinite());
    }

    #[test]
    fn semi_infinite_layer() {
        let l = Layer::new("White matter", 24.0, f64::INFINITY, optics());
        assert!(l.is_semi_infinite());
        assert!(l.contains(1e12));
        assert_eq!(l.optical_thickness(), f64::INFINITY);
    }

    #[test]
    fn optical_thickness() {
        let l = Layer::new("Scalp", 0.0, 3.0, optics());
        assert!((l.optical_thickness() - 3.0 * (0.018 + 19.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "thickness must be positive")]
    fn zero_thickness_rejected() {
        let _ = Layer::new("bad", 0.0, 0.0, optics());
    }
}
