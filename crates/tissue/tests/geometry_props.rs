//! Property tests for the voxel DDA traversal and the layered↔voxel
//! correspondence. Runs in the fast loop.

use lumen_photon::Vec3;
use lumen_tissue::presets::{adult_head, voxelized, AdultHeadConfig};
use lumen_tissue::{LayeredTissue, OpticalProperties, TissueGeometry, VoxelMaterial, VoxelTissue};
use proptest::prelude::*;

/// A 6×5×4 grid with an irregular checker of three materials, pitch
/// (0.4, 0.5, 0.6), origin (-1.2, -1.25) — deliberately anisotropic so
/// axis mix-ups cannot cancel out.
fn checker() -> VoxelTissue {
    let materials = vec![
        VoxelMaterial::new("A", OpticalProperties::new(0.01, 10.0, 0.9, 1.4)),
        VoxelMaterial::new("B", OpticalProperties::new(0.02, 20.0, 0.8, 1.5)),
        VoxelMaterial::new("C", OpticalProperties::new(0.05, 5.0, 0.0, 1.33)),
    ];
    VoxelTissue::from_fn((6, 5, 4), (-1.2, -1.25), (0.4, 0.5, 0.6), materials, 1.0, |c| {
        let ix = ((c.x + 1.2) / 0.4) as usize;
        let iy = ((c.y + 1.25) / 0.5) as usize;
        let iz = (c.z / 0.6) as usize;
        ((ix + 2 * iy + iz) % 3) as u16
    })
    .unwrap()
}

/// Walk a ray through the grid via repeated `boundary_hit` calls, exactly
/// as the transport loop does, collecting each hop.
fn walk(t: &VoxelTissue, mut pos: Vec3, dir: Vec3) -> Vec<(f64, Option<usize>)> {
    let mut region = t
        .voxel_of(pos, dir)
        .map(|(ix, iy, iz)| usize::from(t.material_at(ix, iy, iz)))
        .expect("walk starts inside the grid");
    let mut hops = Vec::new();
    for _ in 0..1000 {
        let hit = t.boundary_hit(pos, dir, region);
        hops.push((hit.distance, hit.next_region));
        pos += dir * hit.distance;
        match hit.next_region {
            Some(next) => region = next,
            None => return hops,
        }
    }
    panic!("ray failed to leave a finite grid within 1000 material changes");
}

proptest! {
    /// The DDA never yields positions outside the grid (within face
    /// tolerance) and every ray eventually exits.
    #[test]
    fn dda_never_escapes_the_grid(
        fx in 0.02f64..0.98, fy in 0.02f64..0.98, fz in 0.02f64..0.98,
        ux in -1.0f64..1.0, uy in -1.0f64..1.0, uz in -1.0f64..1.0,
    ) {
        prop_assume!(ux != 0.0 || uy != 0.0 || uz != 0.0);
        let t = checker();
        let (lo, hi) = t.bounds();
        let start = Vec3::new(
            lo.x + fx * (hi.x - lo.x),
            lo.y + fy * (hi.y - lo.y),
            lo.z + fz * (hi.z - lo.z),
        );
        let dir = Vec3::new(ux, uy, uz).renormalize();
        let mut pos = start;
        let eps = 1e-9;
        for (distance, next) in walk(&t, start, dir) {
            pos += dir * distance;
            if next.is_some() {
                // Interior hits stay inside the bounds.
                prop_assert!(pos.x >= lo.x - eps && pos.x <= hi.x + eps, "x = {}", pos.x);
                prop_assert!(pos.y >= lo.y - eps && pos.y <= hi.y + eps, "y = {}", pos.y);
                prop_assert!(pos.z >= lo.z - eps && pos.z <= hi.z + eps, "z = {}", pos.z);
            }
        }
    }

    /// Per-call distances are non-negative and finite, and the cumulative
    /// boundary distances along a ray are monotonically non-decreasing.
    #[test]
    fn dda_distances_are_monotone(
        fx in 0.02f64..0.98, fy in 0.02f64..0.98, fz in 0.02f64..0.98,
        ux in -1.0f64..1.0, uy in -1.0f64..1.0, uz in -1.0f64..1.0,
    ) {
        prop_assume!(ux != 0.0 || uy != 0.0 || uz != 0.0);
        let t = checker();
        let (lo, hi) = t.bounds();
        let start = Vec3::new(
            lo.x + fx * (hi.x - lo.x),
            lo.y + fy * (hi.y - lo.y),
            lo.z + fz * (hi.z - lo.z),
        );
        let dir = Vec3::new(ux, uy, uz).renormalize();
        let mut cumulative = 0.0;
        let mut previous = 0.0;
        for (distance, _) in walk(&t, start, dir) {
            prop_assert!(distance.is_finite() && distance >= 0.0, "distance {distance}");
            cumulative += distance;
            prop_assert!(cumulative >= previous);
            previous = cumulative;
        }
        // The whole walk cannot exceed the grid diagonal (plus tolerance).
        prop_assert!(cumulative <= (hi - lo).norm() + 1e-6, "walked {cumulative}");
    }

    /// `voxelized(stack, dx)` assigns every voxel the material of the layer
    /// containing its centre — palette indices equal layer indices.
    #[test]
    fn voxelized_agrees_with_layer_at_every_centre(
        dx in 0.3f64..2.0,
        scalp in 3.0f64..10.0,
        skull in 5.0f64..10.0,
    ) {
        let cfg = AdultHeadConfig { scalp_mm: scalp, skull_mm: skull, ..Default::default() };
        let head = adult_head(cfg);
        let grid = voxelized(&head, dx, 8.0, 30.0).unwrap();
        let (nx, ny, nz) = grid.dims();
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let centre = grid.centre(ix, iy, iz);
                    let expect = head.layer_at(centre.z).expect("inside the stack");
                    prop_assert_eq!(usize::from(grid.material_at(ix, iy, iz)), expect);
                }
            }
        }
        // And the palettes line up name-for-name.
        for (i, layer) in head.layers().iter().enumerate() {
            prop_assert_eq!(grid.region_name(i), layer.name.as_str());
        }
    }
}

#[test]
fn voxelized_depth_beyond_finite_stack_is_an_error() {
    let slab = LayeredTissue::stack(
        vec![("only".into(), 5.0, OpticalProperties::new(0.1, 10.0, 0.9, 1.4))],
        1.0,
    )
    .unwrap();
    assert!(voxelized(&slab, 0.5, 5.0, 5.0).is_ok());
    assert!(voxelized(&slab, 0.5, 5.0, 6.0).is_err());
    assert!(voxelized(&slab, -0.5, 5.0, 5.0).is_err());
    // A pitch that does not divide the depth is still legal: ceil-rounding
    // pushes the deepest voxel centre past the stack bottom (z = 5.0 at
    // dx = 0.4), and that sliver inherits the bottom layer.
    let rounded = voxelized(&slab, 0.4, 5.0, 5.0).unwrap();
    let (_, _, nz) = rounded.dims();
    assert_eq!(nz, 13);
    assert_eq!(rounded.material_at(0, 0, nz - 1), 0);
}

#[test]
fn walk_region_sequence_matches_cell_materials() {
    // A straight-down walk through the checker visits exactly the material
    // run-length sequence of the column of voxels it traverses.
    let t = checker();
    let dir = Vec3::PLUS_Z;
    let start = Vec3::new(0.1, 0.1, 0.0);
    let (ix, iy, _) = t.voxel_of(start, dir).unwrap();
    let column: Vec<usize> =
        (0..t.dims().2).map(|iz| usize::from(t.material_at(ix, iy, iz))).collect();
    let mut expected_changes: Vec<Option<usize>> = Vec::new();
    let mut current = column[0];
    for &m in &column[1..] {
        if m != current {
            expected_changes.push(Some(m));
            current = m;
        }
    }
    expected_changes.push(None); // bottom exit
    let got: Vec<Option<usize>> = walk(&t, start, dir).iter().map(|&(_, n)| n).collect();
    assert_eq!(got, expected_changes);
}
