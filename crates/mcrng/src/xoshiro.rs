//! xoshiro256++ 1.0 — Blackman & Vigna's all-purpose 64-bit generator.
//!
//! Chosen for the transport engine because it is extremely fast (a handful
//! of ALU ops per draw), passes BigCrush, and — critically for the
//! distributed design — supports `jump()` / `long_jump()` polynomial jumps
//! so the master can hand each task a provably disjoint substream.

use crate::{McRng, SplitMix64};

/// xoshiro256++ generator (256 bits of state, period 2^256 − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Construct from a full 256-bit state.
    ///
    /// The all-zero state is the one invalid state (it is a fixed point);
    /// it is remapped to a fixed non-zero state derived from SplitMix64(0).
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Seed via SplitMix64 state expansion, as recommended by the authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        sm.fill(&mut s);
        // SplitMix64 output is equidistributed; the probability of an
        // all-zero expansion is 2^-256, but guard anyway.
        if s == [0; 4] {
            s = [Self::JUMP[0], Self::JUMP[1], Self::JUMP[2], Self::JUMP[3]];
        }
        Self { s }
    }

    /// Current internal state (for serialization/checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    const JUMP: [u64; 4] =
        [0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c];

    const LONG_JUMP: [u64; 4] =
        [0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635];

    fn apply_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.step();
            }
        }
        self.s = acc;
    }

    /// Advance 2^128 steps. Carves the period into 2^128 non-overlapping
    /// sequences of length 2^128; one `jump` per parallel worker.
    pub fn jump(&mut self) {
        self.apply_jump(&Self::JUMP);
    }

    /// Advance 2^192 steps: 2^64 non-overlapping blocks of 2^192 draws each.
    /// The stream factory uses this to index task substreams.
    pub fn long_jump(&mut self) {
        self.apply_jump(&Self::LONG_JUMP);
    }
}

impl McRng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl rand::RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the canonical C implementation with state
    /// {1, 2, 3, 4}.
    #[test]
    fn matches_reference_vector() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.step(), e);
        }
    }

    #[test]
    fn zero_state_is_remapped() {
        let rng = Xoshiro256PlusPlus::from_state([0; 4]);
        assert_ne!(rng.state(), [0; 4]);
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let base = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut a = base;
        let mut b = base;
        b.jump();
        // The first 10k draws of the jumped stream must not be identical to
        // the base stream (they are 2^128 steps apart).
        let firsts: Vec<u64> = (0..10_000).map(|_| a.step()).collect();
        let seconds: Vec<u64> = (0..10_000).map(|_| b.step()).collect();
        assert_ne!(firsts, seconds);
    }

    #[test]
    fn jump_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(9);
        a.jump();
        b.jump();
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(9);
        a.jump();
        b.long_jump();
        assert_ne!(a.state(), b.state());
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a = Xoshiro256PlusPlus::seed_from_u64(123);
        let b = Xoshiro256PlusPlus::seed_from_u64(123);
        let c = Xoshiro256PlusPlus::seed_from_u64(124);
        assert_eq!(a.state(), b.state());
        assert_ne!(a.state(), c.state());
    }

    #[test]
    fn mean_of_uniform_draws_is_near_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        // Standard error ~ 1/sqrt(12 n) ≈ 0.0009; allow 5 sigma.
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }
}
