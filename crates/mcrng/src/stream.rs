//! Substream management for distributed/parallel execution.
//!
//! The DataManager assigns each simulation task a `stream index`. Results
//! must be identical whether the tasks run on 1 worker or 150, so each index
//! must map to an independent generator deterministically. Two constructions
//! are provided:
//!
//! * [`StreamFactory::stream`] — *hash seeding*: the experiment seed and the
//!   stream index are mixed through SplitMix64 into a fresh xoshiro state.
//!   O(1) per stream, statistically independent (the probability of any
//!   overlap between two 2^64-draw streams in a 2^256 period is negligible).
//! * [`StreamFactory::jumped_stream`] — *polynomial-jump seeding*: stream
//!   `k` is the base generator advanced by `k` long-jumps (2^192 steps),
//!   which makes disjointness a theorem instead of a probability. O(k), so
//!   suitable for modest stream counts; the engine uses hash seeding by
//!   default and exposes this for verification.

use crate::{SplitMix64, Xoshiro256PlusPlus};

/// Deterministic factory mapping `(seed, stream_index)` to generators.
///
/// ```
/// use mcrng::{McRng, StreamFactory};
/// let factory = StreamFactory::new(42);
/// let mut a = factory.stream(0);
/// let mut b = factory.stream(0); // same index => same stream
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = factory.stream(1); // different index => independent stream
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamFactory {
    seed: u64,
}

impl StreamFactory {
    /// A factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The experiment seed this factory derives streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Independent generator for stream `index` via hash seeding.
    pub fn stream(&self, index: u64) -> Xoshiro256PlusPlus {
        // Mix seed and index through two rounds of SplitMix so that
        // neighbouring indices land in unrelated states.
        let mut outer = SplitMix64::new(self.seed);
        let base = outer.next() ^ index.wrapping_mul(SplitMix64::GAMMA);
        let mut inner = SplitMix64::new(base);
        let mut s = [0u64; 4];
        inner.fill(&mut s);
        Xoshiro256PlusPlus::from_state(s)
    }

    /// Generator for stream `index` via `index` long-jumps from the base
    /// state. Guaranteed non-overlapping for up to 2^64 streams of up to
    /// 2^192 draws each.
    pub fn jumped_stream(&self, index: u64) -> Xoshiro256PlusPlus {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        for _ in 0..index {
            rng.long_jump();
        }
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McRng;

    #[test]
    fn same_index_same_stream() {
        let f = StreamFactory::new(77);
        let mut a = f.stream(5);
        let mut b = f.stream(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_indices_differ() {
        let f = StreamFactory::new(77);
        let mut a = f.stream(5);
        let mut b = f.stream(6);
        let av: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamFactory::new(1).stream(0);
        let mut b = StreamFactory::new(2).stream(0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn jumped_streams_are_distinct() {
        let f = StreamFactory::new(123);
        let s0 = f.jumped_stream(0).state();
        let s1 = f.jumped_stream(1).state();
        let s2 = f.jumped_stream(2).state();
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
    }

    #[test]
    fn jumped_stream_matches_manual_long_jumps() {
        let f = StreamFactory::new(55);
        let mut manual = Xoshiro256PlusPlus::seed_from_u64(55);
        manual.long_jump();
        manual.long_jump();
        assert_eq!(f.jumped_stream(2).state(), manual.state());
    }

    #[test]
    fn stream_outputs_look_uniform() {
        // Coarse chi-square over 16 buckets across many streams' first draw:
        // guards against a factory that maps many indices into nearby states.
        let f = StreamFactory::new(2026);
        let mut counts = [0usize; 16];
        let n = 4096;
        for i in 0..n {
            let x = f.stream(i).next_u64();
            counts[(x >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 15 dof; p=0.001 critical value ≈ 37.7.
        assert!(chi2 < 37.7, "chi2 = {chi2}, counts = {counts:?}");
    }
}
