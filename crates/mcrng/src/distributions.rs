//! Samplers used by the photon-transport kernels.
//!
//! All functions are generic over [`McRng`] and allocation-free; they are the
//! only places in the codebase where physics meets randomness, which keeps
//! statistical behaviour auditable in one module.

use crate::McRng;

/// Sample an exponentially distributed dimensionless step length
/// `s = -ln(ξ)` with `ξ ∈ (0, 1)`.
///
/// The physical step is `s / μt` where `μt = μa + μs` is the interaction
/// coefficient; the division is left to the caller because the medium can
/// change mid-flight at layer boundaries (MCML's "unfinished step" rule).
#[inline]
pub fn sample_exponential<R: McRng>(rng: &mut R) -> f64 {
    -rng.next_f64_open().ln()
}

/// Sample the cosine of the polar scattering angle from the
/// Henyey–Greenstein phase function with anisotropy `g ∈ (-1, 1)`.
///
/// `g = 0` is isotropic scattering (uniform cosine); `g → 1` forward
/// scattering; `g → -1` back-scattering — matching the footnote in the
/// paper's Table 1.
#[inline]
pub fn henyey_greenstein_cos<R: McRng>(rng: &mut R, g: f64) -> f64 {
    debug_assert!((-1.0..=1.0).contains(&g));
    if g.abs() < 1e-6 {
        // Isotropic limit: cos θ uniform on [-1, 1].
        return 2.0 * rng.next_f64() - 1.0;
    }
    let xi = rng.next_f64();
    let frac = (1.0 - g * g) / (1.0 - g + 2.0 * g * xi);
    let cos_theta = (1.0 + g * g - frac * frac) / (2.0 * g);
    cos_theta.clamp(-1.0, 1.0)
}

/// Sample a uniform azimuthal angle `ψ ∈ [0, 2π)` and return `(cos ψ, sin ψ)`.
///
/// Uses [`f64::sin_cos`], which lowers to one glibc `sincos` call on this
/// target (verified at the symbol level) instead of separate `sin` and
/// `cos` calls, and returns the same bits as the separate calls — the
/// golden-tally harness pins this. The measured win is modest (~1%): the
/// two calls share no data dependency, so out-of-order execution already
/// overlapped most of the second call's latency.
#[inline]
pub fn uniform_azimuth<R: McRng>(rng: &mut R) -> (f64, f64) {
    let psi = 2.0 * std::f64::consts::PI * rng.next_f64();
    let (sin, cos) = psi.sin_cos();
    (cos, sin)
}

/// Uniform point on a disc of the given radius, returned as `(x, y)`.
/// Used for the paper's *uniform* source footprint.
#[inline]
pub fn uniform_disc<R: McRng>(rng: &mut R, radius: f64) -> (f64, f64) {
    let r = radius * rng.next_f64().sqrt();
    let (c, s) = uniform_azimuth(rng);
    (r * c, r * s)
}

/// Pair of independent standard normal deviates via Box–Muller.
/// Used for the paper's *Gaussian* source footprint.
#[inline]
pub fn gaussian_pair<R: McRng>(rng: &mut R) -> (f64, f64) {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Uniformly distributed unit vector on the sphere, `(x, y, z)`.
/// Useful for isotropic point sources and for tests.
#[inline]
pub fn uniform_sphere<R: McRng>(rng: &mut R) -> (f64, f64, f64) {
    let z = 2.0 * rng.next_f64() - 1.0;
    let rho = (1.0 - z * z).max(0.0).sqrt();
    let (c, s) = uniform_azimuth(rng);
    (rho * c, rho * s, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_is_one() {
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_is_positive_and_finite() {
        let mut r = rng();
        for _ in 0..100_000 {
            let s = sample_exponential(&mut r);
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    fn hg_mean_cosine_equals_g() {
        // The defining property of Henyey–Greenstein: E[cos θ] = g.
        let mut r = rng();
        for &g in &[-0.7, -0.3, 0.0, 0.3, 0.7, 0.9] {
            let n = 200_000;
            let mean: f64 =
                (0..n).map(|_| henyey_greenstein_cos(&mut r, g)).sum::<f64>() / n as f64;
            assert!((mean - g).abs() < 0.01, "g = {g}, mean = {mean}");
        }
    }

    #[test]
    fn hg_cosine_in_range() {
        let mut r = rng();
        for &g in &[-0.99, -0.5, 0.0, 0.5, 0.9, 0.99] {
            for _ in 0..10_000 {
                let c = henyey_greenstein_cos(&mut r, g);
                assert!((-1.0..=1.0).contains(&c), "g={g}, cos={c}");
            }
        }
    }

    #[test]
    fn azimuth_is_on_unit_circle() {
        let mut r = rng();
        for _ in 0..10_000 {
            let (c, s) = uniform_azimuth(&mut r);
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disc_points_within_radius_and_uniform() {
        let mut r = rng();
        let radius = 2.5;
        let n = 100_000;
        let mut inside_half_radius = 0usize;
        for _ in 0..n {
            let (x, y) = uniform_disc(&mut r, radius);
            let d2 = x * x + y * y;
            assert!(d2 <= radius * radius + 1e-9);
            if d2 <= (radius / 2.0) * (radius / 2.0) {
                inside_half_radius += 1;
            }
        }
        // Uniform density ⇒ quarter of the points inside half the radius.
        let frac = inside_half_radius as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn gaussian_pair_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut r);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sum2 / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn sphere_vectors_are_unit_and_balanced() {
        let mut r = rng();
        let n = 100_000;
        let mut zsum = 0.0;
        for _ in 0..n {
            let (x, y, z) = uniform_sphere(&mut r);
            assert!((x * x + y * y + z * z - 1.0).abs() < 1e-9);
            zsum += z;
        }
        assert!((zsum / n as f64).abs() < 0.01);
    }
}
