//! # mcrng — deterministic, splittable RNG for parallel Monte Carlo
//!
//! The distributed platform in the reproduced paper hands out photon batches
//! to an unbounded number of clients. For the results to be reproducible and
//! statistically sound, every batch must draw from a random stream that is
//! (a) deterministic given the experiment seed and batch index, and
//! (b) guaranteed not to overlap any other batch's stream.
//!
//! This crate provides:
//!
//! * [`SplitMix64`] — a tiny stateless-seedable generator used to expand a
//!   single `u64` seed into the 256-bit state of the main generator.
//! * [`Xoshiro256PlusPlus`] — the workhorse generator, with `jump()`
//!   (2^128 steps) and `long_jump()` (2^192 steps) so non-overlapping
//!   substreams can be carved out for each worker/batch.
//! * [`StreamFactory`] — maps `(seed, stream_index)` to an independent
//!   generator; the engine uses one stream per task so results are identical
//!   regardless of how many workers execute the tasks or in what order.
//! * [`distributions`] — the samplers photon transport needs: uniform open
//!   and half-open floats, exponential step lengths, Henyey–Greenstein
//!   scattering cosines, and uniform azimuth/disc/Gaussian beam offsets.
//!
//! The generators implement [`rand::RngCore`] so they interoperate with the
//! wider `rand` ecosystem where convenient, but all hot-path sampling goes
//! through the inherent methods to keep the compiler's inlining decisions
//! local.

pub mod distributions;
pub mod splitmix;
pub mod stream;
pub mod xoshiro;

pub use distributions::{
    gaussian_pair, henyey_greenstein_cos, sample_exponential, uniform_azimuth, uniform_disc,
};
pub use splitmix::SplitMix64;
pub use stream::StreamFactory;
pub use xoshiro::Xoshiro256PlusPlus;

/// Minimal interface the transport kernels require from a generator.
///
/// Implemented by both [`Xoshiro256PlusPlus`] and [`SplitMix64`] so tests can
/// substitute either; the engine is generic over `McRng`.
pub trait McRng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform in the half-open interval `[0, 1)`.
    ///
    /// Uses the 53 high bits so every value is exactly representable and the
    /// distribution is unbiased.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53-bit mantissa construction: (x >> 11) * 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the open interval `(0, 1)`, suitable for `ln()` without
    /// producing `-inf`.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform in `[0, 1]` (closed). Used where MCML's tables use closed
    /// intervals; the endpoint probability is negligible but the intent is
    /// documented by the name.
    #[inline]
    fn next_f64_closed(&mut self) -> f64 {
        self.next_u64() as f64 * (1.0 / u64::MAX as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_open_never_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 100, 1_000_000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_hits_every_residue_for_small_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
