//! SplitMix64: Steele, Lea & Flood's fast 64-bit generator.
//!
//! Used here for two jobs: expanding a single `u64` experiment seed into the
//! 256-bit state of [`crate::Xoshiro256PlusPlus`] (the construction
//! recommended by the xoshiro authors), and as a cheap stand-in generator in
//! tests.

use crate::McRng;

/// SplitMix64 generator. One `u64` of state; every seed gives a full-period
/// (2^64) sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment; the Weyl sequence step.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Create a generator from a raw seed. Any value is acceptable,
    /// including zero.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advance and return the next output.
    #[allow(clippy::should_implement_trait)] // named after the reference C `next()`
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fill a slice with successive outputs (state expansion helper).
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next();
        }
    }
}

impl McRng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl rand::RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the public-domain C implementation
    /// (seed = 1234567).
    #[test]
    fn matches_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next(), e);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn fill_is_equivalent_to_repeated_next() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let mut buf = [0u64; 7];
        a.fill(&mut buf);
        for &x in &buf {
            assert_eq!(x, b.next());
        }
    }

    #[test]
    fn rngcore_fill_bytes_handles_unaligned_tail() {
        use rand::RngCore;
        let mut a = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        // First 8 bytes must equal the first output in LE order.
        let mut b = SplitMix64::new(5);
        assert_eq!(&buf[..8], &b.next().to_le_bytes());
    }
}
