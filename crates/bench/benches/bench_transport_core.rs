//! Micro-benchmarks of the transport kernels: RNG draw rates, the
//! hop/drop/spin primitives, and single-photon traces in each preset
//! medium. These are the numbers that calibrate `JobSpec::flops_per_photon`
//! for the cluster simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_core::sim::Scratch;
use lumen_core::{Detector, Simulation, Source};
use lumen_photon::{spin, Photon, Vec3};
use lumen_tissue::presets::{adult_head, homogeneous_white_matter};
use mcrng::{henyey_greenstein_cos, McRng, SplitMix64, Xoshiro256PlusPlus};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xoshiro256pp_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("splitmix64_u64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("xoshiro_f64", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        b.iter(|| black_box(rng.next_f64()))
    });
    group.bench_function("hg_cosine_g09", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        b.iter(|| black_box(henyey_greenstein_cos(&mut rng, 0.9)))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements(1));
    group.bench_function("spin_g09", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
        b.iter(|| {
            spin(&mut p, 0.9, &mut rng);
            black_box(p.dir)
        })
    });
    group.finish();
}

fn bench_single_photon(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_photon_trace");
    group.throughput(Throughput::Elements(1));

    let wm = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(6.0, 1.0));
    group.bench_function("white_matter", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut tally = wm.new_tally();
        let mut scratch = Scratch::default();
        b.iter(|| black_box(wm.trace_photon(&mut rng, &mut tally, &mut scratch, None)))
    });

    let head =
        Simulation::new(adult_head(Default::default()), Source::Delta, Detector::new(30.0, 3.0));
    group.bench_function("adult_head", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut tally = head.new_tally();
        let mut scratch = Scratch::default();
        b.iter(|| black_box(head.trace_photon(&mut rng, &mut tally, &mut scratch, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_rng, bench_kernels, bench_single_photon);
criterion_main!(benches);
