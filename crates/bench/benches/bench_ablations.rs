//! Criterion benches for the design-choice ablations (A1, A2): boundary
//! mode cost and scheduler planning cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::fig3_scenario;
use lumen_cluster::scheduler::RateProportional;
use lumen_cluster::{GaScheduler, Scheduler, StaticChunking};
use lumen_core::engine::{Backend, Rayon, Scenario};
use lumen_core::BoundaryMode;
use std::hint::black_box;

fn bench_boundary_modes(c: &mut Criterion) {
    let photons: u64 = 20_000;
    let mut group = c.benchmark_group("ablation_boundary_mode");
    group.throughput(Throughput::Elements(photons));
    group.sample_size(10);
    for (label, mode) in
        [("probabilistic", BoundaryMode::Probabilistic), ("classical", BoundaryMode::Classical)]
    {
        let mut sim = fig3_scenario(6.0, 20);
        sim.options.boundary_mode = mode;
        let scenario = Scenario::from_simulation(&sim, photons, 9).with_tasks(32);
        group.bench_function(label, |b| {
            b.iter(|| Rayon::default().run(black_box(&scenario)).expect("valid scenario"))
        });
    }
    group.finish();
}

fn bench_scheduler_planning(c: &mut Criterion) {
    let rates = lumen_cluster::table2_pool().machine_rates();
    let n_tasks = 2_000;
    let mut group = c.benchmark_group("ablation_scheduler_planning");
    group.bench_function("static_chunking", |b| {
        b.iter(|| StaticChunking.plan(black_box(n_tasks), &rates, 1))
    });
    group.bench_function("rate_proportional", |b| {
        b.iter(|| RateProportional.plan(black_box(n_tasks), &rates, 1))
    });
    group.sample_size(10);
    group.bench_function("genetic_algorithm", |b| {
        b.iter(|| GaScheduler::default().plan(black_box(n_tasks), &rates, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_boundary_modes, bench_scheduler_planning);
criterion_main!(benches);
