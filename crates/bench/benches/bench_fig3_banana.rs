//! Criterion bench for experiment F3: photon throughput in the
//! homogeneous white-matter banana scenario, with and without the 50³
//! path grid, plus the analysis pipeline (projection + threshold +
//! metrics).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_analysis::{banana_metrics, threshold_fraction, Projection2D};
use lumen_bench::{fig3_scenario, run_scenario};
use lumen_core::engine::{Backend, Rayon, Scenario};
use lumen_core::Simulation;
use std::hint::black_box;

fn bench_transport(c: &mut Criterion) {
    let photons: u64 = 20_000;
    let mut group = c.benchmark_group("fig3_transport");
    group.throughput(Throughput::Elements(photons));
    group.sample_size(10);

    let with_grid = Scenario::from_simulation(&fig3_scenario(6.0, 50), photons, 1).with_tasks(32);
    group.bench_function("with_50cubed_grid", |b| {
        b.iter(|| Rayon::default().run(black_box(&with_grid)).expect("valid scenario"))
    });

    let mut plain: Simulation = fig3_scenario(6.0, 50);
    plain.options.path_grid = None;
    let without_grid = Scenario::from_simulation(&plain, photons, 1).with_tasks(32);
    group.bench_function("without_grid", |b| {
        b.iter(|| Rayon::default().run(black_box(&without_grid)).expect("valid scenario"))
    });
    group.finish();
}

fn bench_analysis_pipeline(c: &mut Criterion) {
    let sim = fig3_scenario(6.0, 50);
    let res = run_scenario(&sim, 100_000, 3);
    let grid = res.tally.path_grid.as_ref().unwrap().clone();
    c.bench_function("fig3_analysis_pipeline", |b| {
        b.iter(|| {
            let mut proj = Projection2D::from_grid(black_box(&grid));
            threshold_fraction(&mut proj, 0.05);
            banana_metrics(&proj, 6.0)
        })
    });
}

criterion_group!(benches, bench_transport, bench_analysis_pipeline);
criterion_main!(benches);
