//! Criterion bench for experiment F4: photon throughput in the layered
//! adult-head model, compared against the homogeneous baseline — layer
//! bookkeeping and CSF crossings are the extra cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::{fig3_scenario, fig4_scenario};
use lumen_core::ParallelConfig;
use std::hint::black_box;

fn bench_head_model(c: &mut Criterion) {
    let photons: u64 = 20_000;
    let mut group = c.benchmark_group("fig4_head_model");
    group.throughput(Throughput::Elements(photons));
    group.sample_size(10);

    let head = fig4_scenario(30.0, 50);
    group.bench_function("five_layer_head", |b| {
        b.iter(|| {
            lumen_core::run_parallel(
                black_box(&head),
                photons,
                ParallelConfig { seed: 2, tasks: 32 },
            )
        })
    });

    let homogeneous = fig3_scenario(30.0, 50);
    group.bench_function("homogeneous_baseline", |b| {
        b.iter(|| {
            lumen_core::run_parallel(
                black_box(&homogeneous),
                photons,
                ParallelConfig { seed: 2, tasks: 32 },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_head_model);
criterion_main!(benches);
