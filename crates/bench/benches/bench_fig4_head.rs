//! Criterion bench for experiment F4: photon throughput in the layered
//! adult-head model, compared against the homogeneous baseline — layer
//! bookkeeping and CSF crossings are the extra cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::{fig3_scenario, fig4_scenario};
use lumen_core::engine::{Backend, Rayon, Scenario};
use std::hint::black_box;

fn bench_head_model(c: &mut Criterion) {
    let photons: u64 = 20_000;
    let mut group = c.benchmark_group("fig4_head_model");
    group.throughput(Throughput::Elements(photons));
    group.sample_size(10);

    let head = Scenario::from_simulation(&fig4_scenario(30.0, 50), photons, 2).with_tasks(32);
    group.bench_function("five_layer_head", |b| {
        b.iter(|| Rayon::default().run(black_box(&head)).expect("valid scenario"))
    });

    let homogeneous =
        Scenario::from_simulation(&fig3_scenario(30.0, 50), photons, 2).with_tasks(32);
    group.bench_function("homogeneous_baseline", |b| {
        b.iter(|| Rayon::default().run(black_box(&homogeneous)).expect("valid scenario"))
    });
    group.finish();
}

criterion_group!(benches, bench_head_model);
criterion_main!(benches);
