//! Criterion bench for experiment T2: the discrete-event simulator on the
//! Table 2 heterogeneous pool (40 000 task events per run) and on a large
//! synthetic pool, plus the threaded master/worker executor.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_cluster::{
    AvailabilityModel, ClusterSim, FailurePlan, JobSpec, NetworkModel, ThreadedCluster,
};
use lumen_core::engine::{Backend, Scenario};
use lumen_core::{Detector, Source};
use lumen_tissue::presets::semi_infinite_phantom;
use std::hint::black_box;

fn bench_des_table2(c: &mut Criterion) {
    let sim = ClusterSim {
        pool: lumen_cluster::table2_pool(),
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 150,
    };
    let job = JobSpec::paper_job();
    c.bench_function("table2_des_run", |b| b.iter(|| black_box(&sim).run(black_box(&job))));
}

fn bench_threaded_executor(c: &mut Criterion) {
    let scenario = Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(20_000)
    .with_tasks(16)
    .with_seed(5);
    let mut group = c.benchmark_group("threaded_executor");
    group.sample_size(10);
    group.bench_function("4workers_16tasks_20k_photons", |b| {
        let backend = ThreadedCluster::new(4);
        b.iter(|| backend.run(black_box(&scenario)).expect("valid scenario"))
    });
    group.bench_function("4workers_with_10pct_failures", |b| {
        let backend = ThreadedCluster::new(4).with_failure_plan(FailurePlan::Random { rate: 0.1 });
        b.iter(|| backend.run(black_box(&scenario)).expect("valid scenario"))
    });
    group.finish();
}

criterion_group!(benches, bench_des_table2, bench_threaded_executor);
criterion_main!(benches);
