//! Micro-benchmarks of `Simulation::trace_photon` on the throughput preset
//! matrix — the per-photon cost the `throughput` binary aggregates, split
//! by geometry so layered (analytic slab boundaries) and voxel (DDA
//! traversal) hot paths are tracked separately.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumen_bench::throughput_presets;
use lumen_core::sim::Scratch;
use mcrng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_trace_photon(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_photon");
    group.throughput(Throughput::Elements(1));
    for (name, scenario) in throughput_presets() {
        let sim = scenario.simulation();
        group.bench_function(name, |b| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(scenario.seed);
            let mut tally = sim.new_tally();
            let mut scratch = Scratch::default();
            b.iter(|| black_box(sim.trace_photon(&mut rng, &mut tally, &mut scratch, None)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_photon);
criterion_main!(benches);
