//! Criterion bench for experiment F2: thread-scaling of the transport
//! engine (the real-hardware analogue of the paper's Fig 2) and the cost
//! of the cluster DES itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumen_bench::fig3_scenario;
use lumen_cluster::{speedup_curve, AvailabilityModel, JobSpec, NetworkModel};
use lumen_core::engine::{Backend, Rayon, Scenario};
use std::hint::black_box;

fn bench_thread_scaling(c: &mut Criterion) {
    let sim = fig3_scenario(6.0, 20);
    let photons: u64 = 20_000;
    let scenario = Scenario::from_simulation(&sim, photons, 7).with_tasks(64);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    let mut group = c.benchmark_group("fig2_thread_scaling");
    group.throughput(Throughput::Elements(photons));
    group.sample_size(10);
    let mut k = 1;
    while k <= cores {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            // Build the pool once; the backend then runs on it via install.
            let pool = rayon::ThreadPoolBuilder::new().num_threads(k).build().unwrap();
            b.iter(|| {
                pool.install(|| Rayon::default().run(black_box(&scenario)).expect("valid scenario"))
            });
        });
        k *= 2;
    }
    group.finish();
}

fn bench_des_speedup_curve(c: &mut Criterion) {
    let job = JobSpec::paper_job();
    c.bench_function("fig2_des_curve_1_to_60", |b| {
        b.iter(|| {
            speedup_curve(
                black_box(&job),
                &[1, 15, 30, 45, 60],
                NetworkModel::lan_2006(),
                AvailabilityModel::DEDICATED,
                2006,
            )
        })
    });
}

criterion_group!(benches, bench_thread_scaling, bench_des_speedup_curve);
criterion_main!(benches);
