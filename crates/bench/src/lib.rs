//! # lumen-bench — experiment harness
//!
//! Shared scenario builders used by both the experiment binaries
//! (`src/bin/*`, one per table/figure of the paper) and the Criterion
//! benches (`benches/*`). Keeping the scenario definitions here guarantees
//! the binaries and the benches measure the same configurations.

use lumen_core::engine::{Backend, Rayon, Scenario};
use lumen_core::{
    Detector, GridSpec, Simulation, SimulationOptions, SimulationResult, Source, Vec3,
};
use lumen_tissue::presets::{adult_head, homogeneous_white_matter, voxelized, AdultHeadConfig};

/// The Fig 3 scenario: laser (delta) source into homogeneous white matter,
/// detector at `separation` mm, path grid at the paper's 50³ granularity.
pub fn fig3_scenario(separation: f64, granularity: usize) -> Simulation {
    let tissue = homogeneous_white_matter();
    let margin = separation; // grid covers a separation-wide margin each side
    let spec = GridSpec::cubic(
        granularity,
        Vec3::new(-margin, -margin, 0.0),
        Vec3::new(separation + margin, margin, separation * 1.5),
    );
    let options = SimulationOptions { path_grid: Some(spec), ..Default::default() };
    Simulation::new(tissue, Source::Delta, Detector::new(separation, separation * 0.15))
        .with_options(options)
}

/// The Fig 4 scenario: the Table 1 adult-head model with a 50³ path grid
/// covering all five layers down into the white matter.
pub fn fig4_scenario(separation: f64, granularity: usize) -> Simulation {
    let config = AdultHeadConfig::default();
    let tissue = adult_head(config);
    let depth = config.white_matter_depth() + 10.0;
    let margin = separation * 0.75;
    let spec = GridSpec::cubic(
        granularity,
        Vec3::new(-margin, -margin, 0.0),
        Vec3::new(separation + margin, margin, depth),
    );
    let options = SimulationOptions { path_grid: Some(spec), ..Default::default() };
    Simulation::new(tissue, Source::Delta, Detector::new(separation, separation * 0.15))
        .with_options(options)
}

/// The source-footprint scenario (S1): same medium/detector as Fig 3 but a
/// configurable source.
pub fn footprint_scenario(source: Source, separation: f64, granularity: usize) -> Simulation {
    let mut sim = fig3_scenario(separation, granularity);
    sim.source = source;
    sim
}

/// Run a simulation with the library's production backend (`engine::Rayon`
/// over a `Scenario` with the default 64-task split).
pub fn run_scenario(sim: &Simulation, photons: u64, seed: u64) -> SimulationResult {
    Rayon::default()
        .run(&Scenario::from_simulation(sim, photons, seed))
        .expect("valid scenario")
        .result
}

/// The same run as [`run_scenario`] but with an explicit task count —
/// what the experiment binaries use when they need the split itself.
pub fn run_scenario_tasks(
    sim: &Simulation,
    photons: u64,
    seed: u64,
    tasks: u64,
) -> SimulationResult {
    Rayon::default()
        .run(&Scenario::from_simulation(sim, photons, seed).with_tasks(tasks))
        .expect("valid scenario")
        .result
}

/// Format a separator-joined table row (the binaries print paper-style
/// tables to stdout).
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// The preset matrix the `throughput` binary and the `bench_trace_photon`
/// Criterion bench measure — one layered head (the BENCH trajectory's
/// reference scenario, see `docs/PERFORMANCE.md`), one homogeneous slab
/// dominated by the scattering kernels, and one voxel grid exercising the
/// DDA traversal. Budgets and seeds are fixed here so every recorded
/// `BENCH_throughput.json` point measures the same work.
pub fn throughput_presets() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "adult_head_default",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_seed(42),
        ),
        (
            "white_matter",
            Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
                .with_seed(3),
        ),
        (
            "voxel_head",
            Scenario::new(
                voxelized(&adult_head(AdultHeadConfig::default()), 1.0, 8.0, 25.0)
                    .expect("head voxelizes"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_seed(42),
        ),
    ]
}

/// Look up a named scenario — the out-of-band experiment agreement the
/// networked server and clients must share (the original platform shipped
/// Java bytecode instead). Names: `white_matter`, `adult_head`, `banana`.
pub fn scenario_by_name(name: &str) -> Option<Simulation> {
    match name {
        "white_matter" => Some(Simulation::new(
            lumen_tissue::presets::homogeneous_white_matter(),
            Source::Delta,
            Detector::new(6.0, 1.0),
        )),
        "adult_head" => Some(Simulation::new(
            adult_head(AdultHeadConfig::default()),
            Source::Delta,
            Detector::ring(30.0, 2.0),
        )),
        "banana" => Some(fig3_scenario(6.0, 50)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_validate() {
        assert!(fig3_scenario(6.0, 20).validate().is_ok());
        assert!(fig4_scenario(30.0, 20).validate().is_ok());
        assert!(footprint_scenario(Source::Gaussian { radius: 1.0 }, 6.0, 20).validate().is_ok());
    }

    #[test]
    fn fig3_grid_covers_source_and_detector() {
        let sim = fig3_scenario(6.0, 50);
        let spec = sim.options.path_grid.unwrap();
        assert!(spec.min.x < 0.0 && spec.max.x > 6.0);
        assert!(spec.index_of(Vec3::ZERO).is_some());
        assert!(spec.index_of(Vec3::new(6.0, 0.0, 0.5)).is_some());
    }

    #[test]
    fn fig4_grid_reaches_white_matter() {
        let sim = fig4_scenario(30.0, 50);
        let spec = sim.options.path_grid.unwrap();
        let wm_depth = AdultHeadConfig::default().white_matter_depth();
        assert!(spec.max.z > wm_depth);
    }

    #[test]
    fn quick_run_detects_photons() {
        let sim = fig3_scenario(3.0, 20);
        let res = run_scenario(&sim, 20_000, 1);
        assert!(res.tally.detected > 0);
        assert!(res.tally.path_grid.as_ref().unwrap().total() > 0.0);
    }
}
