//! Experiment F4 — the paper's Fig 4: photon paths through the layered
//! adult-head model of Table 1.
//!
//! "Most of the photons are reflected before they enter the CSF, however
//! some do penetrate all the way into the white matter tissue, which is of
//! most interest to researchers."
//!
//! Run: `cargo run --release -p lumen-bench --bin fig4_head_model [photons]`

use lumen_analysis::{render_ascii, threshold_fraction, Projection2D};
use lumen_bench::{fig4_scenario, run_scenario};
use lumen_tissue::presets::AdultHeadConfig;

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    let separation = 30.0; // mm, inside the paper's 20-60 mm optode range
    let granularity = 50;
    let cfg = AdultHeadConfig::default();

    println!("== Fig 4: photon paths through the Table 1 adult head model ==");
    println!("photons: {photons}, source-detector separation: {separation} mm\n");

    println!("-- Table 1 model --");
    println!(
        "{:<14} | {:>10} | {:>12} | {:>10}",
        "layer", "depth (mm)", "mu_s' (1/mm)", "mu_a (1/mm)"
    );
    let sim = fig4_scenario(separation, granularity);
    let layers = sim.tissue.as_layered().expect("fig4 uses the layered head model").layers();
    for l in layers {
        println!(
            "{:<14} | {:>4.1}-{:<5} | {:>12.2} | {:>10.3}",
            l.name,
            l.z_top,
            if l.is_semi_infinite() { "inf".to_string() } else { format!("{:.1}", l.z_bottom) },
            l.optics.mu_s_prime(),
            l.optics.mu_a
        );
    }

    let res = run_scenario(&sim, photons, 4);

    println!("\n-- outcomes per launched photon --");
    println!("specular reflectance:  {:.4}", res.specular_reflectance());
    println!("diffuse reflectance:   {:.4}", res.diffuse_reflectance());
    println!("absorbed fraction:     {:.4}", res.absorbed_fraction());
    println!("detected photons:      {}", res.tally.detected);

    println!("\n-- absorbed weight by layer (fraction of launched) --");
    for (layer, frac) in layers.iter().zip(res.absorbed_fraction_by_layer()) {
        println!("{:<14} {:>8.5}", layer.name, frac);
    }

    println!("\n-- detected photons reaching each layer --");
    for (i, layer) in layers.iter().enumerate() {
        println!("{:<14} {:>7.2}%", layer.name, res.detected_reached_layer_fraction(i) * 100.0);
    }
    println!(
        "\nCSF starts at {:.1} mm, white matter at {:.1} mm; \
         mean detected penetration {:.1} mm, max {:.1} mm",
        cfg.csf_depth(),
        cfg.white_matter_depth(),
        res.mean_penetration_depth(),
        res.max_penetration_depth()
    );

    if let Some(grid) = res.tally.path_grid.as_ref() {
        let mut proj = Projection2D::from_grid(grid);
        threshold_fraction(&mut proj, 0.02);
        println!("\n-- detected-path density, x-z plane (depth downward) --");
        print!("{}", render_ascii(&crop(&proj, 70, 35)));
        let out = std::path::Path::new("fig4_head_model.pgm");
        if lumen_analysis::write_pgm(&proj, out).is_ok() {
            println!("\nfull-resolution field written to {}", out.display());
        }
    }
}

/// Average-pool for terminal rendering.
fn crop(p: &Projection2D, nx: usize, nz: usize) -> Projection2D {
    let fx = (p.nx as f64 / nx as f64).max(1.0);
    let fz = (p.nz as f64 / nz as f64).max(1.0);
    let out_nx = (p.nx as f64 / fx).ceil() as usize;
    let out_nz = (p.nz as f64 / fz).ceil() as usize;
    let mut values = vec![0.0; out_nx * out_nz];
    for iz in 0..p.nz {
        for ix in 0..p.nx {
            let ox = ((ix as f64 / fx) as usize).min(out_nx - 1);
            let oz = ((iz as f64 / fz) as usize).min(out_nz - 1);
            values[oz * out_nx + ox] += p.at(ix, iz);
        }
    }
    Projection2D {
        nx: out_nx,
        nz: out_nz,
        x_min: p.x_min,
        x_max: p.x_max,
        z_min: p.z_min,
        z_max: p.z_max,
        values,
    }
}
