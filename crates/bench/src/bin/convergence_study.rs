//! Convergence study — why the paper needs 10⁹ photons.
//!
//! "To generate useful results billions of photon paths must be
//! simulated." This binary measures the relative error of the detected
//! signal as a function of photon count (batch-means over independent
//! task streams), confirms the 1/√N law, and extrapolates the photon
//! count needed for 1 % precision at a 30 mm NIRS spacing.
//!
//! Run: `cargo run --release -p lumen-bench --bin convergence_study`

use lumen_analysis::convergence::{batch_means, photons_for_relative_error};
use lumen_bench::run_scenario_tasks;
use lumen_core::{Detector, Simulation, Source};
use lumen_tissue::presets::{adult_head, AdultHeadConfig};
use mcrng::StreamFactory;

fn main() {
    println!("== convergence of the detected signal (adult head, 30 mm ring) ==\n");

    let sim = Simulation::new(
        adult_head(AdultHeadConfig::default()),
        Source::Delta,
        Detector::ring(30.0, 2.0),
    );

    println!("{:>12} | {:>12} | {:>12} | {:>10}", "photons", "detected", "signal/ph", "rel error");
    let mut last: Option<(u64, f64)> = None;
    for exp in [14u32, 15, 16, 17, 18] {
        let photons = 1u64 << exp;
        let batches = 16u64;
        // Per-batch signals from independent streams.
        let factory = StreamFactory::new(99);
        let per_batch: Vec<f64> = (0..batches)
            .map(|b| {
                let mut rng = factory.stream(b);
                let mut tally = sim.new_tally();
                sim.run_stream(photons / batches, &mut rng, &mut tally, None);
                tally.detected_weight / (photons / batches) as f64
            })
            .collect();
        let est = batch_means(&per_batch).expect("batches >= 2");
        let detected_total = run_scenario_tasks(&sim, photons, 99, batches).tally.detected;
        println!(
            "{:>12} | {:>12} | {:>12.3e} | {:>9.2}%",
            photons,
            detected_total,
            est.mean,
            est.relative_error * 100.0
        );
        last = Some((photons, est.relative_error));
    }

    if let Some((photons, rel)) = last {
        if rel.is_finite() && rel > 0.0 {
            let needed = photons_for_relative_error(photons, rel, 0.01);
            println!(
                "\n1/sqrt(N) extrapolation: ~{:.1e} photons for a 1% signal error",
                needed as f64
            );
            println!(
                "-> the paper's 10^9-photon runs are the right order for \
                 percent-level NIRS calibration"
            );
        }
    }
}
