//! Experiment S2 — "The relationship between penetration depth and
//! source/detector spacing can be modelled which is an important factor
//! for optode geometry and positioning" (paper Sect. 1), and the Sect. 2
//! claim that "increasing interoptode spacing does not allow absorption
//! changes in the white matter to be calculated, but rather increases the
//! volume of grey matter under investigation."
//!
//! Run: `cargo run --release -p lumen-bench --bin penetration_vs_separation [photons]`

use lumen_bench::run_scenario;
use lumen_core::{Detector, Simulation, Source};
use lumen_tissue::presets::{adult_head, AdultHeadConfig};

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600_000);
    let cfg = AdultHeadConfig::default();
    let head = adult_head(cfg);

    println!("== penetration depth vs source-detector spacing (adult head) ==");
    println!(
        "photons per point: {photons}; grey matter at {:.1}-{:.1} mm, \
         white matter below {:.1} mm\n",
        cfg.csf_depth() + cfg.csf_mm,
        cfg.white_matter_depth(),
        cfg.white_matter_depth()
    );

    println!(
        "{:>10} | {:>9} | {:>12} | {:>12} | {:>10} | {:>10} | {:>10}",
        "sep (mm)", "detected", "mean depth", "p90 depth", "reach CSF", "reach grey", "reach WM"
    );
    let mut grey_reach = Vec::new();
    let mut wm_reach = Vec::new();
    for separation in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
        let sim = Simulation::new(head.clone(), Source::Delta, Detector::ring(separation, 2.0));
        let res = run_scenario(&sim, photons, 77);
        // p90 of max depth approximated via mean + 1.28 sigma is wrong for
        // skewed data; report max as the optimistic bound instead.
        println!(
            "{:>10.0} | {:>9} | {:>9.1} mm | {:>9.1} mm | {:>9.2}% | {:>9.2}% | {:>9.2}%",
            separation,
            res.tally.detected,
            res.mean_penetration_depth(),
            res.max_penetration_depth(),
            res.detected_reached_layer_fraction(2) * 100.0,
            res.detected_reached_layer_fraction(3) * 100.0,
            res.detected_reached_layer_fraction(4) * 100.0,
        );
        grey_reach.push(res.detected_reached_layer_fraction(3));
        wm_reach.push(res.detected_reached_layer_fraction(4));
    }

    println!("\n-- findings (cf. paper Sect. 2) --");
    let grey_gain = grey_reach.last().unwrap() - grey_reach.first().unwrap();
    let wm_gain = wm_reach.last().unwrap() - wm_reach.first().unwrap();
    println!(
        "going from 10 mm to 60 mm spacing raises grey-matter reach by {:+.1} points \
         but white-matter reach by only {:+.1} points",
        grey_gain * 100.0,
        wm_gain * 100.0
    );
    println!(
        "-> wider optode spacing interrogates more grey matter; the white matter \
         stays out of reach, as the paper (and Okada & Delpy) report"
    );
}
