//! Experiment A3 — the CSF effect (the paper's Sect. 2, after Okada &
//! Delpy): "the cerebrospinal fluid, a layer of low scattering properties
//! 'sandwiched' between highly scattering tissue ... has a significant
//! effect on light propagation" — it confines penetration to the shallow
//! grey matter.
//!
//! We run the adult head as specified (with the low-scattering CSF) and a
//! control where the CSF is replaced by a grey-matter-like scatterer, and
//! compare where detected photons travel.
//!
//! Run: `cargo run --release -p lumen-bench --bin ablation_csf [photons]`

use lumen_bench::run_scenario;
use lumen_core::{Detector, Simulation, Source};
use lumen_tissue::presets::{adult_head, grey_matter_optics, AdultHeadConfig};
use lumen_tissue::{Layer, LayeredTissue};

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let cfg = AdultHeadConfig::default();
    let separation = 30.0;

    println!("== A3: effect of the low-scattering CSF layer (adult head, {separation} mm) ==");
    println!("photons per arm: {photons}\n");

    let with_csf = adult_head(cfg);
    let without_csf = replace_csf_with_scatterer(&with_csf);

    println!(
        "{:<22} | {:>9} | {:>12} | {:>12} | {:>10} | {:>10}",
        "model", "detected", "mean path", "mean depth", "reach grey", "reach WM"
    );
    let mut depths = Vec::new();
    for (label, tissue) in [("with CSF (paper)", with_csf), ("CSF -> scatterer", without_csf)] {
        let sim = Simulation::new(tissue, Source::Delta, Detector::ring(separation, 2.0));
        let res = run_scenario(&sim, photons, 33);
        println!(
            "{:<22} | {:>9} | {:>9.0} mm | {:>9.1} mm | {:>9.2}% | {:>9.2}%",
            label,
            res.tally.detected,
            res.mean_detected_pathlength(),
            res.mean_penetration_depth(),
            res.detected_reached_layer_fraction(3) * 100.0,
            res.detected_reached_layer_fraction(4) * 100.0,
        );
        depths.push((label, res.mean_penetration_depth()));
    }

    println!("\n-- finding --");
    println!(
        "the low-scattering CSF channels light laterally at the top of the brain, \
         reshaping the sensitive volume relative to a fully scattering stack \
         (with CSF: {:.1} mm mean depth; scatterer control: {:.1} mm)",
        depths[0].1, depths[1].1
    );
}

/// The head model with the CSF row swapped for grey-matter-like optics.
fn replace_csf_with_scatterer(head: &LayeredTissue) -> LayeredTissue {
    let layers: Vec<Layer> = head
        .layers()
        .iter()
        .map(|l| {
            if l.name == "CSF" {
                Layer {
                    name: "CSF-as-scatterer".into(),
                    z_top: l.z_top,
                    z_bottom: l.z_bottom,
                    optics: grey_matter_optics(),
                }
            } else {
                l.clone()
            }
        })
        .collect();
    LayeredTissue::new(layers, head.ambient_n).expect("control model is valid")
}
