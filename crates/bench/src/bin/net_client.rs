//! Standalone compute client — the paper's `Algorithm` process on a
//! non-dedicated PC.
//!
//! Run: `cargo run --release -p lumen-bench --bin net_client -- \
//!        [addr=127.0.0.1:7878] [scenario=white_matter] [seed=42]`
//!
//! The scenario and seed must match the server's (the experiment
//! definition is the out-of-band contract).

use lumen_bench::scenario_by_name;

fn arg(n: usize, default: &str) -> String {
    std::env::args().nth(n).unwrap_or_else(|| default.to_string())
}

fn main() {
    let addr = arg(1, "127.0.0.1:7878");
    let scenario = arg(2, "white_matter");
    let seed: u64 = arg(3, "42").parse().expect("seed");

    let sim =
        scenario_by_name(&scenario).unwrap_or_else(|| panic!("unknown scenario '{scenario}'"));
    println!("lumen client connecting to {addr} (scenario={scenario})...");
    match lumen_cluster::run_client(&addr, &sim, seed) {
        Ok(n) => println!("shut down after completing {n} task(s)"),
        Err(e) => eprintln!("client error: {e}"),
    }
}
