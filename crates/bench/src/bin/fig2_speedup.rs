//! Experiment F2 — regenerate the paper's Fig 2: speedup with varying
//! numbers of homogeneous processors.
//!
//! Two curves are produced:
//!
//! 1. **Simulated cluster** (the paper's setting): the discrete-event
//!    simulator runs the 10⁹-photon job on 1–60 homogeneous P4-class
//!    machines over a 2006 LAN. This is the curve comparable to Fig 2,
//!    including the ≥97 % efficiency at 60 processors.
//! 2. **Real threads** (this machine): the actual Monte Carlo engine runs
//!    a fixed photon budget on 1..=num_cpus rayon threads, demonstrating
//!    the same near-linear scaling on physical hardware.
//!
//! Run: `cargo run --release -p lumen-bench --bin fig2_speedup`

use lumen_bench::fig3_scenario;
use lumen_cluster::{speedup_curve, AvailabilityModel, JobSpec, NetworkModel};
use lumen_core::engine::{Backend, Rayon, Scenario};
use std::time::Instant;

fn main() {
    println!("== Fig 2: speedup with varying numbers of homogeneous processors ==\n");

    // --- Curve 1: simulated 2006 cluster, paper-scale job ---
    let job = JobSpec::paper_job();
    let ks = [1usize, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60];
    let points =
        speedup_curve(&job, &ks, NetworkModel::lan_2006(), AvailabilityModel::DEDICATED, 2006);
    println!("-- simulated cluster (10^9 photons, P4 2.4GHz class machines) --");
    println!("{:>4} | {:>12} | {:>8} | {:>10}", "k", "time (s)", "speedup", "efficiency");
    for p in &points {
        println!(
            "{:>4} | {:>12.1} | {:>8.2} | {:>9.1}%",
            p.k,
            p.time_s,
            p.speedup,
            p.efficiency * 100.0
        );
    }
    let last = points.last().expect("non-empty curve");
    println!(
        "\npaper: >97% efficiency at 60 processors; simulated: {:.1}% at {}\n",
        last.efficiency * 100.0,
        last.k
    );

    // --- Curve 2: real threads on this machine ---
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let sim = fig3_scenario(6.0, 50);
    let photons: u64 = 200_000;
    println!("-- real rayon threads on this machine ({cores} cores, {photons} photons) --");
    println!("{:>8} | {:>10} | {:>8} | {:>10}", "threads", "time (s)", "speedup", "efficiency");
    let scenario = Scenario::from_simulation(&sim, photons, 7).with_tasks((cores as u64) * 8);
    let mut t1 = None;
    let mut k = 1usize;
    while k <= cores {
        // Build the pool before starting the clock so thread-spawn cost
        // is not charged to the measurement.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(k).build().expect("thread pool");
        let started = Instant::now();
        let res = pool.install(|| Rayon::default().run(&scenario)).expect("valid scenario");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(res.launched(), photons);
        let base = *t1.get_or_insert(secs);
        let speedup = base / secs;
        println!(
            "{:>8} | {:>10.3} | {:>8.2} | {:>9.1}%",
            k,
            secs,
            speedup,
            speedup / k as f64 * 100.0
        );
        k *= 2;
    }
}
