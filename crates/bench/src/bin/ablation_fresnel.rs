//! Experiment A2 — boundary-handling ablation: "refraction and internal
//! reflection (classical physics or probabilistic methods)".
//!
//! Runs the same scenario under both boundary modes and compares the
//! physical observables; they must agree in distribution (the modes are
//! both unbiased estimators of the same transport problem), while the
//! classical mode shows lower variance in the detected signal.
//!
//! Run: `cargo run --release -p lumen-bench --bin ablation_fresnel [photons]`

use lumen_bench::{fig3_scenario, run_scenario_tasks};
use lumen_core::BoundaryMode;

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500_000);
    println!("== A2: classical vs probabilistic boundary handling ==");
    println!("scenario: Fig 3 white matter, {photons} photons per mode\n");

    println!(
        "{:<15} | {:>12} | {:>14} | {:>12} | {:>10}",
        "mode", "detected wt", "diffuse refl", "absorbed", "detections"
    );

    let mut per_mode = Vec::new();
    for mode in [BoundaryMode::Probabilistic, BoundaryMode::Classical] {
        let mut sim = fig3_scenario(6.0, 20);
        sim.options.boundary_mode = mode;
        // Estimate variance across independent sub-runs.
        let replicates = 8;
        let mut signals = Vec::with_capacity(replicates);
        let mut last = None;
        for r in 0..replicates {
            let res = run_scenario_tasks(&sim, photons / replicates as u64, 100 + r as u64, 16);
            signals.push(res.detected_weight_per_photon());
            last = Some(res);
        }
        let res = last.expect("at least one replicate");
        let mean: f64 = signals.iter().sum::<f64>() / signals.len() as f64;
        let var: f64 =
            signals.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / signals.len() as f64;
        println!(
            "{:<15} | {:>12.3e} | {:>14.4} | {:>12.4} | {:>10}",
            match mode {
                BoundaryMode::Probabilistic => "probabilistic",
                BoundaryMode::Classical => "classical",
            },
            mean,
            res.diffuse_reflectance(),
            res.absorbed_fraction(),
            res.tally.detected
        );
        per_mode.push((mode, mean, var));
    }

    let (_, mp, vp) = per_mode[0];
    let (_, mc, vc) = per_mode[1];
    println!("\n-- findings --");
    println!(
        "detected signal agrees across modes: {:.1}% relative difference",
        ((mp - mc).abs() / mp.max(1e-300)) * 100.0
    );
    if vc > 0.0 {
        println!(
            "variance ratio probabilistic/classical: {:.2} (classical splits weight \
             deterministically at the surface, reducing detection-noise)",
            vp / vc
        );
    }
}
