//! `throughput` — the perf-trajectory recorder.
//!
//! Runs the shared preset matrix ([`lumen_bench::throughput_presets`])
//! across the `sequential`, `rayon`, `cluster`, and `tcp` backends,
//! measures photons per wall-clock second, and writes
//! `BENCH_throughput.json` — one point on the repository's performance
//! trajectory. Every perf PR reruns this binary and records before/after
//! numbers in `docs/PERFORMANCE.md`; CI runs it on a reduced budget
//! (non-gating) and uploads the JSON as an artifact.
//!
//! ```text
//! throughput [--photons N] [--repeats K] [--backends a,b,..]
//!            [--presets a,b,..] [--out PATH]
//! ```
//!
//! Defaults: 200k photons, 3 repeats (best wall time wins), all presets,
//! `sequential,rayon,fast,fast-rayon,cluster,tcp,tcp16` backends, output
//! `BENCH_throughput.json` in the current directory. The `fast` and
//! `fast-rayon` legs run the same sequential/rayon engines with the
//! scenario's precision tier set to `Fast` (the batched SoA kernel), so
//! the exact-vs-fast ratio per preset is the tier ablation recorded in
//! `docs/PERFORMANCE.md`. The `tcp` legs run
//! the real elastic wire runtime loopback: the server binds an ephemeral
//! port and in-process `run_client` loops connect to it, so the recorded
//! number includes framing, tally serialization, and the lease
//! bookkeeping. `tcp` is the historical two-client point; `tcpN` (any
//! N ≥ 1, e.g. `tcp16`) fans N clients at the single poll loop — the
//! multi-client point that shows what connection multiplexing buys.
//! The JSON is hand-rolled because the workspace's offline `serde` shim
//! does not serialize.

use lumen_bench::throughput_presets;
use lumen_core::engine::Scenario;
use lumen_core::Precision;
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// In-process client loops the plain `tcp` leg runs (the historical
/// configuration, kept so the trajectory stays comparable across PRs).
const TCP_CLIENTS: usize = 2;

struct Args {
    photons: u64,
    repeats: usize,
    backends: Vec<String>,
    presets: Vec<String>,
    out: String,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            photons: 200_000,
            repeats: 3,
            backends: vec![
                "sequential".into(),
                "rayon".into(),
                "fast".into(),
                "fast-rayon".into(),
                "cluster".into(),
                "tcp".into(),
                "tcp16".into(),
            ],
            presets: throughput_presets().iter().map(|(n, _)| n.to_string()).collect(),
            out: "BENCH_throughput.json".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--photons" => {
                    args.photons =
                        value("--photons")?.parse().map_err(|e| format!("--photons: {e}"))?
                }
                "--repeats" => {
                    args.repeats =
                        value("--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?
                }
                "--backends" => {
                    args.backends =
                        value("--backends")?.split(',').map(|s| s.trim().to_string()).collect()
                }
                "--presets" => {
                    args.presets =
                        value("--presets")?.split(',').map(|s| s.trim().to_string()).collect()
                }
                "--out" => args.out = value("--out")?,
                "--help" | "-h" => {
                    println!(
                        "throughput [--photons N] [--repeats K] [--backends a,b,..] \
                         [--presets a,b,..] [--out PATH]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if args.photons == 0 || args.repeats == 0 {
            return Err("--photons and --repeats must be positive".into());
        }
        Ok(args)
    }
}

/// Query count per timed reweight sweep.
const REWEIGHT_QUERIES: usize = 1024;

/// The measured `reweight_qps` leg: how fast a stored archive answers
/// (μa′, μs′) queries without re-tracing.
struct ReweightCell {
    preset: String,
    photons: u64,
    archive_entries: usize,
    queries: usize,
    wall_seconds: Vec<f64>,
    best_wall_seconds: f64,
    queries_per_second: f64,
}

/// Record a detected-only archive for `scenario` and time a deterministic
/// sweep of [`REWEIGHT_QUERIES`] perturbed-property queries against it.
/// The sweep scales μa by 0.7–1.3 and μs by 0.9–1.1 across queries, the
/// band the reweight estimator is validated for.
fn measure_reweight(
    name: &str,
    scenario: &Scenario,
    repeats: usize,
) -> Result<ReweightCell, String> {
    use lumen_core::{RecordOptions, Reweight};

    let mut recording = scenario.clone();
    recording.options.archive = Some(RecordOptions { detected_only: true });
    let report = lumen_cluster::backend::from_spec("rayon")
        .map_err(|e| e.to_string())?
        .run(&recording)
        .map_err(|e| e.to_string())?;
    let archive = report.result.tally.archive.clone().ok_or("recording run returned no archive")?;
    let entries = archive.len();
    if entries == 0 {
        return Err(format!("archive for `{name}` recorded zero detections"));
    }
    let reweight = Reweight::new(archive);

    let queries: Vec<Vec<lumen_core::OpticalProperties>> = (0..REWEIGHT_QUERIES)
        .map(|q| {
            let t = q as f64 / (REWEIGHT_QUERIES - 1) as f64;
            let (fa, fs) = (0.7 + 0.6 * t, 0.9 + 0.2 * t);
            reweight
                .archive
                .base
                .iter()
                .map(|o| lumen_core::OpticalProperties::new(o.mu_a * fa, o.mu_s * fs, o.g, o.n))
                .collect()
        })
        .collect();

    let mut walls = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        // The batch API fans the sweep across the rayon pool; each
        // query's report is bit-identical to a sequential `query` call
        // (pinned by `archive_props::batch_sweep_matches_sequential_per_query`),
        // so going wide changes the wall-clock and nothing else.
        let started = Instant::now();
        let mut checksum = 0.0f64;
        for report in reweight.query_many(&queries) {
            let r = report.map_err(|e| e.to_string())?;
            checksum += r.tally.detected_weight;
        }
        let wall = started.elapsed().as_secs_f64();
        assert!(checksum.is_finite(), "reweight sweep produced non-finite weight");
        walls.push(wall);
    }
    let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(ReweightCell {
        preset: name.to_string(),
        photons: scenario.photons,
        archive_entries: entries,
        queries: REWEIGHT_QUERIES,
        best_wall_seconds: best,
        queries_per_second: REWEIGHT_QUERIES as f64 / best.max(1e-9),
        wall_seconds: walls,
    })
}

/// One measured (preset, backend) cell.
struct Cell {
    preset: String,
    backend: String,
    photons: u64,
    tasks: u64,
    seed: u64,
    wall_seconds: Vec<f64>,
    best_wall_seconds: f64,
    photons_per_second: f64,
}

/// One timed run of a loopback `tcp` leg: bind an ephemeral port, point
/// `n_clients` in-process client loops at it, and serve the scenario
/// over real sockets. Returns the launched photon count. The listener is
/// bound once and handed to the server directly (no probe/rebind port
/// race), and the client threads are always joined, even when the server
/// leg fails.
fn run_tcp_once(scenario: &Scenario, n_clients: usize) -> Result<u64, String> {
    use lumen_cluster::ServeOptions;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();

    let sim = scenario.simulation();
    let seed = scenario.seed;
    let clients: Vec<_> = (0..n_clients)
        .map(|_| {
            let sim = sim.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..500 {
                    match lumen_cluster::run_client(&addr, &sim, seed) {
                        Ok(n) => return Ok(n),
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                    }
                }
                Err("bench client never connected".to_string())
            })
        })
        .collect();

    let served = lumen_cluster::serve_with_options(
        listener,
        &sim,
        scenario.photons,
        scenario.tasks,
        ServeOptions::default().with_min_clients(n_clients),
        &lumen_core::engine::NoProgress,
    );
    // Join the clients first (a failed server closes their sockets, so
    // they terminate either way) to avoid leaking spinning threads.
    let mut client_err = None;
    for c in clients {
        match c.join() {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => client_err = Some(e),
            Err(_) => client_err = Some("bench client panicked".to_string()),
        }
    }
    let report = served.map_err(|e| e.to_string())?;
    if let Some(e) = client_err {
        return Err(e);
    }
    Ok(report.result.launched())
}

/// Parse a loopback-leg spec: `tcp` is the historical
/// [`TCP_CLIENTS`]-client point, `tcpN` (e.g. `tcp16`) fans N clients at
/// the poll loop. Anything else (including `tcp 3`-style arguments) is
/// rejected so a typo cannot silently mislabel the JSON record.
fn tcp_clients_from_spec(spec: &str) -> Result<Option<usize>, String> {
    let Some(rest) = spec.strip_prefix("tcp") else { return Ok(None) };
    if rest.is_empty() {
        return Ok(Some(TCP_CLIENTS));
    }
    match rest.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!("the tcp leg is `tcp` or `tcpN` with N >= 1 clients; got `{spec}`")),
    }
}

/// Split a bench leg spec into the engine spec resolved via
/// `backend::from_spec` and the precision tier stamped on the scenario:
/// `fast` is the sequential engine on the fast tier, `fast-rayon` the
/// rayon pool on it. The tier is set on the scenario itself (not smuggled
/// through a wrapper backend), so the scenario a fast leg executes is
/// exactly the one the service layer would hash and cache.
fn precision_from_spec(spec: &str) -> (&str, Precision) {
    match spec {
        "fast" => ("sequential", Precision::Fast),
        "fast-rayon" => ("rayon", Precision::Fast),
        other => (other, Precision::Exact),
    }
}

fn measure(name: &str, spec: &str, scenario: &Scenario, repeats: usize) -> Result<Cell, String> {
    let (engine_spec, precision) = precision_from_spec(spec);
    let mut scenario = scenario.clone();
    scenario.options.precision = precision;
    let scenario = &scenario;
    let tcp_clients = tcp_clients_from_spec(engine_spec)?;
    let backend = match tcp_clients {
        Some(_) => None,
        None => Some(lumen_cluster::backend::from_spec(engine_spec).map_err(|e| e.to_string())?),
    };
    let mut walls = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        // Time around the whole backend call (validation + merge included):
        // that is the latency a caller actually observes. The report's own
        // wall clock agrees to within microseconds.
        let started = Instant::now();
        let launched = match (&backend, tcp_clients) {
            (Some(b), _) => b.run(scenario).map_err(|e| e.to_string())?.launched(),
            (None, Some(n)) => run_tcp_once(scenario, n)?,
            (None, None) => unreachable!("spec is either a backend or a tcp leg"),
        };
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(launched, scenario.photons, "backend dropped photons");
        walls.push(wall);
    }
    let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(Cell {
        preset: name.to_string(),
        backend: spec.to_string(),
        photons: scenario.photons,
        tasks: scenario.tasks,
        seed: scenario.seed,
        best_wall_seconds: best,
        photons_per_second: scenario.photons as f64 / best.max(1e-9),
        wall_seconds: walls,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", cells.join(", "))
}

fn render_json(args: &Args, cells: &[Cell], reweight: Option<&ReweightCell>) -> String {
    let created = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"lumen-bench-throughput/v1\",");
    let _ = writeln!(s, "  \"created_unix\": {created},");
    let _ = writeln!(s, "  \"crate_version\": \"{}\",", env!("CARGO_PKG_VERSION"));
    let _ = writeln!(
        s,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus} }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(s, "  \"photons\": {},", args.photons);
    let _ = writeln!(s, "  \"repeats\": {},", args.repeats);
    let _ = writeln!(s, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"preset\": \"{}\",", json_escape(&c.preset));
        let _ = writeln!(s, "      \"backend\": \"{}\",", json_escape(&c.backend));
        let _ = writeln!(s, "      \"photons\": {},", c.photons);
        let _ = writeln!(s, "      \"tasks\": {},", c.tasks);
        let _ = writeln!(s, "      \"seed\": {},", c.seed);
        let _ = writeln!(s, "      \"wall_seconds\": {},", json_f64_array(&c.wall_seconds));
        let _ = writeln!(s, "      \"best_wall_seconds\": {},", c.best_wall_seconds);
        let _ = writeln!(s, "      \"photons_per_second\": {}", c.photons_per_second);
        let _ = writeln!(s, "    }}{comma}");
    }
    match reweight {
        None => {
            let _ = writeln!(s, "  ]");
        }
        Some(r) => {
            let _ = writeln!(s, "  ],");
            let _ = writeln!(s, "  \"reweight\": {{");
            let _ = writeln!(s, "    \"preset\": \"{}\",", json_escape(&r.preset));
            let _ = writeln!(s, "    \"photons\": {},", r.photons);
            let _ = writeln!(s, "    \"archive_entries\": {},", r.archive_entries);
            let _ = writeln!(s, "    \"queries\": {},", r.queries);
            let _ = writeln!(s, "    \"wall_seconds\": {},", json_f64_array(&r.wall_seconds));
            let _ = writeln!(s, "    \"best_wall_seconds\": {},", r.best_wall_seconds);
            let _ = writeln!(s, "    \"queries_per_second\": {}", r.queries_per_second);
            let _ = writeln!(s, "  }}");
        }
    }
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(2);
        }
    };

    let all = throughput_presets();
    let mut cells = Vec::new();
    println!("preset | backend | photons/s | best wall (s)");
    println!("-------|---------|-----------|--------------");
    for want in &args.presets {
        let Some((name, scenario)) = all.iter().find(|(n, _)| n == want) else {
            eprintln!(
                "throughput: unknown preset `{want}` (known: {})",
                all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        };
        let scenario = scenario.clone().with_photons(args.photons);
        for spec in &args.backends {
            match measure(name, spec, &scenario, args.repeats) {
                Ok(cell) => {
                    println!(
                        "{} | {} | {:.0} | {:.3}",
                        cell.preset, cell.backend, cell.photons_per_second, cell.best_wall_seconds
                    );
                    cells.push(cell);
                }
                Err(e) => {
                    eprintln!("throughput: {name} on `{spec}` failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // The reweight_qps leg: archive once on the first requested preset,
    // then time the query sweep. Target: >= 10^4 queries/sec.
    let reweight = {
        let want = args.presets.first().expect("at least one preset");
        let (name, scenario) = all.iter().find(|(n, _)| n == want).expect("preset validated above");
        let scenario = scenario.clone().with_photons(args.photons);
        match measure_reweight(name, &scenario, args.repeats) {
            Ok(cell) => {
                println!(
                    "{} | reweight | {:.0} q/s | {:.3} ({} entries, {} queries)",
                    cell.preset,
                    cell.queries_per_second,
                    cell.best_wall_seconds,
                    cell.archive_entries,
                    cell.queries
                );
                cell
            }
            Err(e) => {
                eprintln!("throughput: reweight leg failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let json = render_json(&args, &cells, Some(&reweight));
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("throughput: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("\nwrote {}", args.out);
}
