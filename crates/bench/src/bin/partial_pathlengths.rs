//! Partial pathlengths per layer — "which cells within that volume
//! dominate the detected light signal" (paper Sect. 1), quantified.
//!
//! The mean pathlength a detected photon spends in layer k is the
//! Beer-Lambert sensitivity of the measurement to absorption changes in
//! that layer. This table is what an NIRS calibration actually needs from
//! the forward model.
//!
//! Run: `cargo run --release -p lumen-bench --bin partial_pathlengths [photons]`

use lumen_bench::run_scenario;
use lumen_core::{Detector, Simulation, Source};
use lumen_tissue::presets::{adult_head, AdultHeadConfig};

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let head = adult_head(AdultHeadConfig::default());

    println!("== partial pathlengths by layer (adult head, ring detectors) ==");
    println!("photons per point: {photons}\n");
    println!(
        "{:>10} | {:>9} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10}",
        "sep (mm)", "detected", "total", "scalp", "skull", "CSF", "grey", "white"
    );
    for separation in [20.0, 30.0, 40.0] {
        let sim = Simulation::new(head.clone(), Source::Delta, Detector::ring(separation, 2.0));
        let res = run_scenario(&sim, photons, 88);
        let ppl = res.mean_partial_pathlengths();
        println!(
            "{:>10.0} | {:>9} | {:>7.0} mm | {:>7.1} mm | {:>7.1} mm | {:>7.1} mm | {:>7.1} mm | {:>7.1} mm",
            separation,
            res.tally.detected,
            res.mean_detected_pathlength(),
            ppl[0], ppl[1], ppl[2], ppl[3], ppl[4],
        );
        let total = res.mean_detected_pathlength().max(1e-12);
        println!(
            "{:>10} | {:>9} | {:>10} | {:>9.1}% | {:>9.1}% | {:>9.1}% | {:>9.1}% | {:>9.1}%",
            "",
            "",
            "share:",
            ppl[0] / total * 100.0,
            ppl[1] / total * 100.0,
            ppl[2] / total * 100.0,
            ppl[3] / total * 100.0,
            ppl[4] / total * 100.0,
        );
    }
    println!(
        "\nthe brain layers' share of the detected pathlength is the fraction of the \
         signal sensitive to cerebral absorption changes — the calibration quantity \
         the paper's simulations exist to provide"
    );
}
