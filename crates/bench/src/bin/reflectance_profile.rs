//! Baseline comparison — Monte Carlo R(r) against the diffusion
//! approximation (Farrell–Patterson dipole model).
//!
//! The paper frames Monte Carlo as the numerical solution of the radiative
//! transport equation; the diffusion approximation is the standard
//! analytical baseline (the paper's reference \[6\]). This binary prints
//! both R(r) curves side by side: they agree far from the source and
//! diverge near it — exactly the regime where MC is needed.
//!
//! Run: `cargo run --release -p lumen-bench --bin reflectance_profile [photons]`

use lumen_analysis::diffusion::{fit_log_slope, DiffusionModel};
use lumen_bench::run_scenario;
use lumen_core::{Detector, RadialSpec, Simulation, Source};
use lumen_tissue::presets::semi_infinite_phantom;

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);

    let mu_a = 0.05;
    let mu_s = 20.0;
    let g = 0.5;
    let mu_s_prime = mu_s * (1.0 - g);

    println!("== Monte Carlo vs diffusion approximation: R(r) of a semi-infinite medium ==");
    println!(
        "mu_a = {mu_a}/mm, mu_s = {mu_s}/mm, g = {g} (mu_s' = {mu_s_prime}/mm), matched boundary\n\
         photons: {photons}\n"
    );

    let tissue = semi_infinite_phantom(mu_a, mu_s, g, 1.0);
    let mut sim = Simulation::new(tissue, Source::Delta, Detector::new(100.0, 0.1));
    let spec = RadialSpec { nr: 30, r_max: 15.0 };
    sim.options.reflectance_profile = Some(spec);

    let res = run_scenario(&sim, photons, 9);
    let profile = res.tally.reflectance_r.as_ref().expect("profile attached");
    let mc = profile.per_area(res.launched());

    let model = DiffusionModel::new(mu_a, mu_s_prime, 1.0);
    println!("{:>8} | {:>14} | {:>14} | {:>8}", "r (mm)", "MC R(r)", "diffusion R(r)", "ratio");
    for (i, &mc_val) in mc.iter().enumerate() {
        let r = spec.r_of(i);
        let theory = model.reflectance(r);
        let ratio = if theory > 0.0 { mc_val / theory } else { f64::NAN };
        println!("{r:>8.2} | {mc_val:>14.4e} | {theory:>14.4e} | {ratio:>8.3}");
    }

    // Compare asymptotic decay rates.
    let rs: Vec<f64> = (0..spec.nr).map(|i| spec.r_of(i)).collect();
    let window: Vec<(f64, f64)> = rs
        .iter()
        .zip(&mc)
        .filter(|&(&r, _)| (4.0..12.0).contains(&r))
        .map(|(&r, &v)| (r, v))
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = window.into_iter().unzip();
    if let Some(slope) = fit_log_slope(&xs, &ys) {
        println!(
            "\nfitted MC decay of ln(r^2 R): {:.4}/mm; diffusion mu_eff: {:.4}/mm \
             ({:.1}% apart)",
            -slope,
            model.mu_eff(),
            ((slope - model.asymptotic_slope()).abs() / model.mu_eff()) * 100.0
        );
    }
    println!(
        "diffusion constants: D = {:.4} mm, z0 = {:.3} mm, zb = {:.3} mm",
        model.diffusion_coefficient(),
        model.z0(),
        model.zb()
    );
    println!(
        "\nexpected shape: ratio ≈ 1 for r ≫ 1/mu_t' = {:.2} mm, diverging near the source",
        model.z0()
    );
}
