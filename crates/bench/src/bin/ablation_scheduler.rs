//! Experiment A1 — scheduler ablation on the heterogeneous Table 2 pool.
//!
//! The original platform's demand-driven self-scheduling is what makes a
//! heterogeneous, non-dedicated cluster efficient; the paper's reference
//! \[4\] studies GA-based scheduling for the same setting. This binary
//! compares: self-scheduling, naive static round-robin, rate-proportional
//! static, and the GA scheduler.
//!
//! Run: `cargo run --release -p lumen-bench --bin ablation_scheduler`

use lumen_cluster::scheduler::RateProportional;
use lumen_cluster::{
    AvailabilityModel, ClusterSim, GaScheduler, JobSpec, NetworkModel, Scheduler, SelfScheduling,
    StaticChunking,
};

fn main() {
    println!("== A1: scheduler ablation, Table 2 pool, 10^9 photons ==\n");

    let sim = ClusterSim {
        pool: lumen_cluster::table2_pool(),
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 41,
    };
    let job = JobSpec::paper_job();

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SelfScheduling),
        Box::new(StaticChunking),
        Box::new(RateProportional),
        Box::new(GaScheduler::default()),
    ];

    println!(
        "{:<18} | {:>12} | {:>9} | {:>11} | {:>11}",
        "scheduler", "makespan (s)", "hours", "speedup", "utilisation"
    );
    let mut results = Vec::new();
    for s in &schedulers {
        let report = sim.run_with(&job, s.as_ref());
        println!(
            "{:<18} | {:>12.0} | {:>9.2} | {:>11.1} | {:>10.1}%",
            s.name(),
            report.makespan_s,
            report.makespan_s / 3600.0,
            report.speedup(),
            report.mean_utilisation() * 100.0
        );
        results.push((s.name(), report.makespan_s));
    }

    let selfs = results.iter().find(|(n, _)| *n == "self-scheduling").expect("ran").1;
    let chunk = results.iter().find(|(n, _)| *n == "static-chunking").expect("ran").1;
    let ga = results.iter().find(|(n, _)| *n == "ga-scheduler").expect("ran").1;
    println!("\n-- findings --");
    println!("self-scheduling beats naive static chunking by {:.1}x on this pool", chunk / selfs);
    println!(
        "the GA's informed static plan comes within {:.1}% of self-scheduling",
        (ga / selfs - 1.0) * 100.0
    );
    println!("(dynamic demand-driven assignment additionally tolerates availability noise)");
}
