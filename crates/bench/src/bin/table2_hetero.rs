//! Experiment T2 — the paper's Table 2 run: 10⁹ photons on 150
//! heterogeneous, non-dedicated clients.
//!
//! The paper reports "each simulation taking approximately 2 hours on the
//! distributed system detailed in Table 2". The discrete-event simulator
//! reproduces the run and reports per-class work shares.
//!
//! Run: `cargo run --release -p lumen-bench --bin table2_hetero`

use lumen_cluster::{AvailabilityModel, ClusterSim, JobSpec, NetworkModel};

fn main() {
    println!("== Table 2: 150 heterogeneous non-dedicated clients, 10^9 photons ==\n");

    let pool = lumen_cluster::table2_pool();
    println!(
        "{:>5} | {:>9} | {:>8} | {:<10} | {:<20}",
        "count", "Mflop/s", "RAM(MB)", "O/S", "Processor"
    );
    for c in &pool.classes {
        println!(
            "{:>5} | {:>9.1} | {:>8} | {:<10} | {:<20}",
            c.count, c.mflops, c.ram_mb, c.os, c.cpu
        );
    }
    println!(
        "\ntotal machines: {}, aggregate rate: {:.1} Mflop/s\n",
        pool.len(),
        pool.total_mflops()
    );

    let sim = ClusterSim {
        pool: pool.clone(),
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 150,
    };
    let job = JobSpec::paper_job();
    let report = sim.run(&job);

    println!("-- simulated run --");
    println!("photons:            {}", job.total_photons);
    println!("tasks:              {}", report.tasks);
    println!(
        "virtual makespan:   {:.0} s  ({:.2} h; paper: ~2 h)",
        report.makespan_s,
        report.makespan_s / 3600.0
    );
    println!(
        "sequential (P4):    {:.0} s  ({:.1} h)",
        report.sequential_s,
        report.sequential_s / 3600.0
    );
    println!("speedup vs 1x P4:   {:.1}", report.speedup());
    println!("mean utilisation:   {:.1}%", report.mean_utilisation() * 100.0);
    println!("server merge load:  {:.0} s", report.server_busy_s);

    // Work share per machine class.
    println!("\n-- work distribution by machine class --");
    println!("{:<20} | {:>8} | {:>14} | {:>12}", "class", "machines", "photons", "share");
    let rates = pool.machine_rates();
    let mut offset = 0usize;
    for c in &pool.classes {
        let photons: u64 = report.machine_photons[offset..offset + c.count].iter().sum();
        println!(
            "{:<20} | {:>8} | {:>14} | {:>11.1}%",
            c.cpu,
            c.count,
            photons,
            photons as f64 / job.total_photons as f64 * 100.0
        );
        offset += c.count;
    }
    let _ = rates;
}
