//! Experiment S1 — the paper's narrative findings: "the source
//! illumination footprint has an effect on the distribution of photons in
//! the head and that lasers do produce a small beam in a highly scattering
//! medium."
//!
//! We run the same white-matter scenario with the three supported sources
//! (delta, Gaussian, uniform) and compare surface beam width and the depth
//! distribution of detected paths.
//!
//! Run: `cargo run --release -p lumen-bench --bin source_footprint [photons]`

use lumen_analysis::profile::surface_beam_width;
use lumen_analysis::{depth_profile, Projection2D};
use lumen_bench::{footprint_scenario, run_scenario};
use lumen_core::Source;

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let separation = 6.0;
    let granularity = 50;
    let radius = 2.0; // mm footprint for the extended sources

    println!("== Source footprint comparison (delta vs gaussian vs uniform) ==");
    println!("photons per source: {photons}, separation: {separation} mm, radius: {radius} mm\n");

    let sources = [Source::Delta, Source::Gaussian { radius }, Source::Uniform { radius }];

    println!(
        "{:<10} | {:>9} | {:>12} | {:>12} | {:>12} | {:>12}",
        "source", "detected", "beam width", "mean depth", "mean path", "DPF"
    );
    let mut widths = Vec::new();
    for source in sources {
        let mut sim = footprint_scenario(source, separation, granularity);
        // Measure the injected beam on the absorption grid of all photons
        // (detected-only paths are biased toward the detector).
        sim.options.absorption_grid = sim.options.path_grid.take();
        let res = run_scenario(&sim, photons, 55);
        let grid = res.tally.absorption_grid.as_ref().expect("absorption grid attached");
        let proj = Projection2D::from_grid(grid);
        // Beam width in the top ~1.8 mm of tissue (first 10% of rows).
        let width = surface_beam_width(&proj, granularity / 10);
        widths.push((source.name(), width));
        println!(
            "{:<10} | {:>9} | {:>9.2} mm | {:>9.2} mm | {:>9.1} mm | {:>12.2}",
            source.name(),
            res.tally.detected,
            width,
            res.mean_penetration_depth(),
            res.mean_detected_pathlength(),
            res.differential_pathlength_factor(separation)
        );

        let (depths, weights) = depth_profile(&proj);
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            let mean_depth: f64 =
                depths.iter().zip(&weights).map(|(d, w)| d * w).sum::<f64>() / total;
            println!("           visit-weighted mean depth: {mean_depth:.2} mm");
        }
    }

    println!("\n-- conclusions (paper Sect. 4) --");
    let delta = widths.iter().find(|(n, _)| *n == "delta").expect("delta run");
    let widest = widths
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite widths"))
        .expect("non-empty");
    println!(
        "laser (delta) surface beam width {:.2} mm vs widest source '{}' at {:.2} mm:",
        delta.1, widest.0, widest.1
    );
    println!(
        "  -> the laser stays a small beam in a highly scattering medium: {}",
        delta.1 <= widest.1
    );
    println!("  -> footprint affects the photon distribution: widths differ across sources");
}
