//! Experiment T1 — reprint the paper's Table 1 from the tissue presets and
//! verify the derived optical quantities.
//!
//! Run: `cargo run --release -p lumen-bench --bin table1_properties`

use lumen_tissue::presets::{
    adult_head, csf_optics, grey_matter_optics, scalp_optics, skull_optics, white_matter_optics,
    AdultHeadConfig, TISSUE_G,
};

fn main() {
    println!("== Table 1: thickness and optical properties (NIR) of tissue in the adult head ==\n");
    println!(
        "{:<14} | {:>14} | {:>14} | {:>12} | {:>10} | {:>8}",
        "tissue", "thickness (mm)", "mu_s' (1/mm)", "mu_a (1/mm)", "mu_s(g=.9)", "albedo"
    );

    let cfg = AdultHeadConfig::default();
    let rows = [
        ("Scalp", format!("{:.1} (3-10)", cfg.scalp_mm), scalp_optics()),
        ("Skull", format!("{:.1} (5-10)", cfg.skull_mm), skull_optics()),
        ("CSF", format!("{:.1}", cfg.csf_mm), csf_optics()),
        ("Grey matter", format!("{:.1}", cfg.grey_mm), grey_matter_optics()),
        ("White matter", "semi-inf".to_string(), white_matter_optics()),
    ];
    for (name, thickness, o) in rows {
        println!(
            "{:<14} | {:>14} | {:>14.2} | {:>12.3} | {:>10.1} | {:>8.4}",
            name,
            thickness,
            o.mu_s_prime(),
            o.mu_a,
            o.mu_s,
            o.albedo()
        );
    }

    println!(
        "\nmu_s' = mu_s (1 - g) with g = {TISSUE_G} (mean scattering cosine; g = -1 total \
         back-scatter, 0 isotropic, 1 forward — Table 1 footnote)"
    );

    let head = adult_head(cfg);
    println!(
        "\nmodel sanity: {} layers, CSF optical thickness {:.2} mfp, \
         cumulative finite-stack optical depth {:.0} mfp",
        head.len(),
        head.layers()[2].optical_thickness(),
        head.cumulative_optical_depth()
    );
}
