//! Standalone DataManager server — the paper's "dedicated server" process.
//!
//! Run: `cargo run --release -p lumen-bench --bin net_server -- \
//!        [addr=127.0.0.1:7878] [scenario=white_matter] [photons=100000] \
//!        [tasks=16] [min_clients=2] [lease_timeout_s=600] \
//!        [join_grace_s=600]`
//!
//! `join_grace_s` bounds how long the server waits for `min_clients` to
//! show up (and for the pool to refill if every client vanishes) — the
//! default is generous because this binary's workflow is starting
//! clients by hand on other machines.
//!
//! Start the server, then point any number of `net_client` copies at it
//! (same scenario and seed, on any machines that can reach the address).
//! The pool is elastic: `min_clients` only gates the first assignment;
//! clients joining later are handed work immediately, and a client that
//! stalls past the lease timeout or disconnects has its task re-queued
//! and re-run bit-identically elsewhere. An abandoned run (every client
//! gone) exits non-zero with a typed error instead of printing a
//! partial tally.

use lumen_bench::scenario_by_name;
use lumen_cluster::ServeOptions;
use std::net::TcpListener;
use std::time::Duration;

fn arg(n: usize, default: &str) -> String {
    std::env::args().nth(n).unwrap_or_else(|| default.to_string())
}

fn main() {
    let addr = arg(1, "127.0.0.1:7878");
    let scenario = arg(2, "white_matter");
    let photons: u64 = arg(3, "100000").parse().expect("photons");
    let tasks: u64 = arg(4, "16").parse().expect("tasks");
    let min_clients: usize = arg(5, "2").parse().expect("min_clients");
    let lease_timeout_s: f64 = arg(6, "600").parse().expect("lease_timeout_s");
    let join_grace_s: f64 = arg(7, "600").parse().expect("join_grace_s");
    // Same range from_spec enforces; Duration::from_secs_f64 would panic
    // on a negative/NaN/huge value instead of erroring.
    for (name, v) in [("lease_timeout_s", lease_timeout_s), ("join_grace_s", join_grace_s)] {
        if !(v > 0.0 && v <= 1e9) {
            eprintln!("{name} must be in (0, 10^9] seconds, got {v}");
            std::process::exit(2);
        }
    }

    let sim =
        scenario_by_name(&scenario).unwrap_or_else(|| panic!("unknown scenario '{scenario}'"));
    let listener = TcpListener::bind(&addr).expect("bind server address");
    let options = ServeOptions::default()
        .with_min_clients(min_clients)
        .with_lease_timeout(Duration::from_secs_f64(lease_timeout_s))
        .with_join_grace(Duration::from_secs_f64(join_grace_s));
    println!(
        "lumen DataManager on {addr}: scenario={scenario}, photons={photons}, tasks={tasks}; \
         starting at {min_clients} client(s), lease timeout {lease_timeout_s}s, \
         join grace {join_grace_s}s..."
    );

    let report = match lumen_cluster::serve_with_options(
        listener,
        &sim,
        photons,
        tasks,
        options,
        &lumen_core::engine::NoProgress,
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("distributed run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "done: {} photons over {} clients ({} requeues)",
        report.result.launched(),
        report.clients_served,
        report.requeues
    );
    println!("detected fraction: {:.3e}", report.result.detected_fraction());
    println!("diffuse reflectance: {:.4}", report.result.diffuse_reflectance());
    for (i, w) in report.worker_stats.iter().enumerate() {
        println!("  client {i}: {} tasks, {} photons", w.tasks_completed, w.photons);
    }
}
