//! Standalone DataManager server — the paper's "dedicated server" process.
//!
//! Run: `cargo run --release -p lumen-bench --bin net_server -- \
//!        [addr=127.0.0.1:7878] [scenario=white_matter] [photons=100000] \
//!        [tasks=16] [clients=2] [seed=42]`
//!
//! Start the server first, then `clients` copies of `net_client` with the
//! same scenario and seed (on any machines that can reach the address).

use lumen_bench::scenario_by_name;
use std::net::TcpListener;

fn arg(n: usize, default: &str) -> String {
    std::env::args().nth(n).unwrap_or_else(|| default.to_string())
}

fn main() {
    let addr = arg(1, "127.0.0.1:7878");
    let scenario = arg(2, "white_matter");
    let photons: u64 = arg(3, "100000").parse().expect("photons");
    let tasks: u64 = arg(4, "16").parse().expect("tasks");
    let clients: usize = arg(5, "2").parse().expect("clients");
    let _seed: u64 = arg(6, "42").parse().expect("seed");

    let sim =
        scenario_by_name(&scenario).unwrap_or_else(|| panic!("unknown scenario '{scenario}'"));
    let listener = TcpListener::bind(&addr).expect("bind server address");
    println!("lumen DataManager on {addr}: scenario={scenario}, photons={photons}, tasks={tasks}; waiting for {clients} client(s)...");

    let report =
        lumen_cluster::serve(listener, &sim, photons, tasks, clients).expect("distributed run");
    println!(
        "done: {} photons over {} clients ({} requeues)",
        report.result.launched(),
        report.clients_served,
        report.requeues
    );
    println!("detected fraction: {:.3e}", report.result.detected_fraction());
    println!("diffuse reflectance: {:.4}", report.result.diffuse_reflectance());
    for (i, w) in report.worker_stats.iter().enumerate() {
        println!("  client {i}: {} tasks, {} photons", w.tasks_completed, w.photons);
    }
}
