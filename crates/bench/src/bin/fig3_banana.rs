//! Experiment F3 — the paper's Fig 3: "Simulation with a laser source and
//! granularity of 50³ in homogeneous white matter tissue", showing the
//! most common detected-photon paths forming a banana after thresholding.
//!
//! Run: `cargo run --release -p lumen-bench --bin fig3_banana [photons]`

use lumen_analysis::{banana_metrics, render_ascii, threshold_fraction, Projection2D};
use lumen_bench::{fig3_scenario, run_scenario};

fn main() {
    let photons: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    let separation = 6.0; // mm; white matter's μs' = 9.1/mm keeps paths shallow
    let granularity = 50;

    println!("== Fig 3: banana of detected paths, delta source, 50^3 granularity ==");
    println!(
        "medium: homogeneous white matter (mu_s' = 9.1/mm, mu_a = 0.014/mm)\n\
         photons: {photons}, separation: {separation} mm\n"
    );

    let sim = fig3_scenario(separation, granularity);
    let res = run_scenario(&sim, photons, 3);

    println!("detected photons:      {}", res.tally.detected);
    println!("detected fraction:     {:.2e}", res.detected_fraction());
    println!("mean pathlength:       {:.1} mm", res.mean_detected_pathlength());
    println!(
        "differential pathlength factor: {:.2}",
        res.differential_pathlength_factor(separation)
    );
    println!("mean penetration depth: {:.2} mm", res.mean_penetration_depth());
    println!("max penetration depth:  {:.2} mm", res.max_penetration_depth());

    let grid = res.tally.path_grid.as_ref().expect("fig3 scenario attaches a path grid");
    let mut proj = Projection2D::from_grid(grid);
    let kept = threshold_fraction(&mut proj, 0.05);
    println!("\nthresholded at 5% of max: {kept} voxel columns survive");

    let metrics = banana_metrics(&proj, separation);
    println!("banana metrics: {metrics:#?}");
    println!("is banana: {}", metrics.is_banana(separation));

    // Crop the render to the interesting region for terminal display.
    println!("\n-- thresholded visit density, x-z plane (depth downward) --");
    print!("{}", render_ascii(&downsample(&proj, 70, 30)));

    let out = std::path::Path::new("fig3_banana.pgm");
    if lumen_analysis::write_pgm(&proj, out).is_ok() {
        println!("\nfull-resolution field written to {}", out.display());
    }
}

/// Average-pool a projection down to at most `nx × nz` cells for terminal
/// rendering.
fn downsample(p: &Projection2D, nx: usize, nz: usize) -> Projection2D {
    let fx = (p.nx as f64 / nx as f64).max(1.0);
    let fz = (p.nz as f64 / nz as f64).max(1.0);
    let out_nx = (p.nx as f64 / fx).ceil() as usize;
    let out_nz = (p.nz as f64 / fz).ceil() as usize;
    let mut values = vec![0.0; out_nx * out_nz];
    for iz in 0..p.nz {
        for ix in 0..p.nx {
            let ox = ((ix as f64 / fx) as usize).min(out_nx - 1);
            let oz = ((iz as f64 / fz) as usize).min(out_nz - 1);
            values[oz * out_nx + ox] += p.at(ix, iz);
        }
    }
    Projection2D {
        nx: out_nx,
        nz: out_nz,
        x_min: p.x_min,
        x_max: p.x_max,
        z_min: p.z_min,
        z_max: p.z_max,
        values,
    }
}
