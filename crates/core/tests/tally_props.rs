//! Property tests for the tally algebra.
//!
//! Every distributed reduction in `lumen-cluster` (the DataManager's
//! "process the returned results" step, the rayon backend's task-order
//! merge, the TCP server's aggregation) silently relies on [`Tally::merge`]
//! behaving like a commutative monoid: merging split batches must equal one
//! sequential accumulation, grouping must not matter, and normalisation
//! (`scale`) must be linear over merges.
//!
//! Floating-point addition is not associative in general, so the engine
//! fixes the merge *order* (task order) to make results bit-reproducible.
//! These tests pin the two layers of that contract separately:
//!
//! * on **dyadic inputs** (multiples of 1/8 with small magnitudes, where
//!   every sum and product is exact in an `f64`) the algebra must hold
//!   **bit-for-bit**, counts and floats alike;
//! * on **real simulation output** the counts (`u64`) must obey the
//!   algebra exactly, and the float fields to 1 part in 10⁹ — documenting
//!   precisely how much reassociation is allowed to move them.

use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::tally::{GridSpec, PathHistogram, Tally, VisitGrid};
use lumen_core::{Detector, Source, Vec3};
use lumen_tissue::presets::semi_infinite_phantom;
use mcrng::StreamFactory;
use proptest::prelude::*;

const LAYERS: usize = 3;

/// A dyadic f64 in [0, 32): exact under addition and halving/doubling.
fn dyadic(raw: u8) -> f64 {
    f64::from(raw) / 8.0
}

/// Build a synthetic tally whose float fields are all dyadic, from a flat
/// byte seed vector (the proptest shim has no struct-level Arbitrary).
fn tally_from(bytes: &[u8; 16]) -> Tally {
    let mut t = Tally::new(LAYERS, None, None);
    t.launched = u64::from(bytes[0]);
    t.detected = u64::from(bytes[1]);
    t.reflected = u64::from(bytes[2]);
    t.roulette_killed = u64::from(bytes[3]);
    t.gate_rejected = u64::from(bytes[4]);
    t.specular_weight = dyadic(bytes[5]);
    t.detected_weight = dyadic(bytes[6]);
    t.reflected_weight = dyadic(bytes[7]);
    t.transmitted_weight = dyadic(bytes[8]);
    for (i, slot) in t.absorbed_by_layer.iter_mut().enumerate() {
        *slot = dyadic(bytes[9 + i]);
    }
    t.detected_path_sum = dyadic(bytes[12]);
    t.detected_depth_max = dyadic(bytes[13]);
    t.detected_reached_layer[0] = u64::from(bytes[14]);
    t.detected_partial_path[1] = dyadic(bytes[15]);
    t.detected_scatter_sum = u64::from(bytes[0]) + u64::from(bytes[15]);
    t
}

fn grid_spec() -> GridSpec {
    GridSpec::cubic(4, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, 2.0, 4.0))
}

/// Deposit dyadic weights into a grid at voxel centres selected by `cells`.
fn grid_from(cells: &[(u8, u8)]) -> VisitGrid {
    let mut g = VisitGrid::new(grid_spec());
    let n = grid_spec().len();
    for &(idx, w) in cells {
        g.deposit(grid_spec().centre_of(usize::from(idx) % n), dyadic(w));
    }
    g
}

proptest! {
    #[test]
    fn merge_is_associative_bit_for_bit(
        a in any::<[u8; 16]>(), b in any::<[u8; 16]>(), c in any::<[u8; 16]>()
    ) {
        let (ta, tb, tc) = (tally_from(&a), tally_from(&b), tally_from(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        // a ⊕ (b ⊕ c)
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut right = ta.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_order_insensitive_bit_for_bit(
        a in any::<[u8; 16]>(), b in any::<[u8; 16]>()
    ) {
        let (ta, tb) = (tally_from(&a), tally_from(&b));
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merging_split_batches_equals_one_accumulation(
        parts in proptest::collection::vec(any::<[u8; 16]>(), 1..6)
    ) {
        // Sequential accumulation: fold every worker tally into one
        // aggregate, one at a time (what the Sequential backend does).
        let mut sequential = Tally::new(LAYERS, None, None);
        for p in &parts {
            sequential.merge(&tally_from(p));
        }
        // Split reduction: merge the front and back halves separately,
        // then combine (what a tree/cluster reduction does).
        let mid = parts.len() / 2;
        let mut front = Tally::new(LAYERS, None, None);
        for p in &parts[..mid] {
            front.merge(&tally_from(p));
        }
        let mut back = Tally::new(LAYERS, None, None);
        for p in &parts[mid..] {
            back.merge(&tally_from(p));
        }
        front.merge(&back);
        prop_assert_eq!(sequential, front);
    }

    #[test]
    fn grid_scale_is_linear_over_merge(
        cells_a in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
        cells_b in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
        k_exp in -2i32..3
    ) {
        // k ∈ {0.25, 0.5, 1, 2, 4}: exact scaling for dyadic weights.
        let k = (2.0f64).powi(k_exp);
        let (ga, gb) = (grid_from(&cells_a), grid_from(&cells_b));
        // scale(a ⊕ b, k)
        let mut merged = ga.clone();
        merged.merge(&gb);
        merged.scale(k);
        // scale(a, k) ⊕ scale(b, k)
        let mut sa = ga.clone();
        sa.scale(k);
        let mut sb = gb.clone();
        sb.scale(k);
        sa.merge(&sb);
        prop_assert_eq!(merged, sa);
    }

    #[test]
    fn histogram_merge_adds_counts_exactly(
        counts_a in proptest::collection::vec(0u64..1000, 8),
        counts_b in proptest::collection::vec(0u64..1000, 8),
        overflow_a in 0u64..100, overflow_b in 0u64..100
    ) {
        let mut a = PathHistogram::new(100.0, 8);
        a.counts.copy_from_slice(&counts_a);
        a.overflow = overflow_a;
        let mut b = PathHistogram::new(100.0, 8);
        b.counts.copy_from_slice(&counts_b);
        b.overflow = overflow_b;
        let total = a.total() + b.total();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), total);
    }
}

/// The engine-level version of the split-batch property, on real photon
/// transport: per-task tallies merged as one group must equal the same
/// tallies folded one at a time — counts exactly, floats to 1e-9 relative
/// (the slack that regrouping float sums is allowed, and documented, to
/// introduce; the engine avoids even that by fixing the merge order).
#[test]
fn split_batch_merge_matches_sequential_on_real_transport() {
    let scenario = Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(2_000)
    .with_tasks(4)
    .with_seed(99);
    let sim = scenario.simulation();
    let factory = StreamFactory::new(scenario.seed);

    // One tally per task, exactly as every backend produces them.
    let per_task: Vec<Tally> = scenario
        .batches()
        .iter()
        .enumerate()
        .map(|(i, &batch)| {
            let mut rng = factory.stream(i as u64);
            let mut tally = sim.new_tally();
            sim.run_stream(batch, &mut rng, &mut tally, None);
            tally
        })
        .collect();

    // Fold in task order (the engine's contract) ...
    let mut folded = sim.new_tally();
    for t in &per_task {
        folded.merge(t);
    }
    // ... and check it against the actual backend output, bit-for-bit.
    let report = Sequential.run(&scenario).expect("valid scenario");
    assert_eq!(folded, report.result.tally);

    // Split reduction: counts must agree exactly, floats within 1e-9.
    let mut front = sim.new_tally();
    front.merge(&per_task[0]);
    front.merge(&per_task[1]);
    let mut back = sim.new_tally();
    back.merge(&per_task[2]);
    back.merge(&per_task[3]);
    front.merge(&back);
    assert_eq!(front.launched, folded.launched);
    assert_eq!(front.detected, folded.detected);
    assert_eq!(front.reflected, folded.reflected);
    assert_eq!(front.roulette_killed, folded.roulette_killed);
    assert_eq!(front.detected_scatter_sum, folded.detected_scatter_sum);
    assert_eq!(front.detected_reached_layer, folded.detected_reached_layer);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    assert!(close(front.detected_weight, folded.detected_weight));
    assert!(close(front.reflected_weight, folded.reflected_weight));
    assert!(close(front.total_absorbed(), folded.total_absorbed()));
    assert!(close(front.detected_path_sum, folded.detected_path_sum));
}
