//! Statistical equivalence: a voxelized slab must reproduce the layered
//! slab's physics within Monte Carlo tolerance.
//!
//! The voxelized grid has exactly the same material planes as the layered
//! stack (the DDA skips same-material voxel faces), so the only physical
//! differences are the finite lateral extent and accumulated floating-point
//! divergence of boundary distances — both far below the MC noise floor at
//! these budgets.

use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::{Detector, Source};
use lumen_tissue::presets::voxelized;
use lumen_tissue::{LayeredTissue, OpticalProperties, TissueGeometry};

const PHOTONS: u64 = 20_000;
const SEED: u64 = 2006;

/// A finite two-layer slab: 2 mm of lighter tissue over 3 mm of denser
/// tissue, air above and below. Finite so the voxel grid can cover it
/// exactly.
fn slab() -> LayeredTissue {
    LayeredTissue::stack(
        vec![
            ("top".into(), 2.0, OpticalProperties::new(0.05, 10.0, 0.9, 1.4)),
            ("bottom".into(), 3.0, OpticalProperties::new(0.02, 15.0, 0.9, 1.4)),
        ],
        1.0,
    )
    .unwrap()
}

fn run(scenario: Scenario) -> lumen_core::engine::RunReport {
    Sequential.run(&scenario).expect("valid scenario")
}

#[test]
fn voxelized_slab_matches_layered_tally_within_mc_tolerance() {
    let layered = slab();
    // ±20 mm laterally at 0.5 mm pitch: wide enough that lateral leakage
    // is far below the MC noise at 20k photons.
    let voxel = voxelized(&layered, 0.5, 20.0, 5.0).unwrap();
    assert_eq!(voxel.region_count(), layered.len());

    let detector = Detector::new(2.0, 1.0);
    let l = run(Scenario::new(layered, Source::Delta, detector)
        .with_photons(PHOTONS)
        .with_tasks(8)
        .with_seed(SEED));
    let v = run(Scenario::new(voxel, Source::Delta, detector)
        .with_photons(PHOTONS)
        .with_tasks(8)
        .with_seed(SEED));

    assert_eq!(l.launched(), PHOTONS);
    assert_eq!(v.launched(), PHOTONS);

    // Photon-count outcomes agree to a few percent of the budget.
    let close_counts = |a: u64, b: u64, what: &str| {
        let diff = (a as f64 - b as f64).abs() / PHOTONS as f64;
        assert!(diff < 0.02, "{what}: layered {a} vs voxel {b} ({diff:.4} of budget)");
    };
    close_counts(l.tally.reflected, v.tally.reflected, "reflected");
    close_counts(l.tally.transmitted, v.tally.transmitted, "transmitted");
    close_counts(l.tally.detected, v.tally.detected, "detected");

    // Weight outcomes agree to a few percent relative.
    let close_weights = |a: f64, b: f64, what: &str| {
        let rel = (a - b).abs() / a.abs().max(1e-12);
        assert!(rel < 0.05, "{what}: layered {a} vs voxel {b} (rel {rel:.4})");
    };
    assert_eq!(l.tally.specular_weight, v.tally.specular_weight, "same surface optics");
    close_weights(l.tally.reflected_weight, v.tally.reflected_weight, "reflected weight");
    close_weights(l.tally.transmitted_weight, v.tally.transmitted_weight, "transmitted weight");
    close_weights(l.tally.detected_weight, v.tally.detected_weight, "detected weight");

    // Per-region absorption: palette index i is layer i by construction.
    for (i, (a, b)) in l.tally.absorbed_by_layer.iter().zip(&v.tally.absorbed_by_layer).enumerate()
    {
        let rel = (a - b).abs() / a.abs().max(1e-12);
        assert!(rel < 0.05, "absorbed in region {i}: layered {a} vs voxel {b} (rel {rel:.4})");
    }

    // Detected-photon pathlength statistics.
    if l.tally.detected > 0 && v.tally.detected > 0 {
        let mean_l = l.tally.detected_path_sum / l.tally.detected as f64;
        let mean_v = v.tally.detected_path_sum / v.tally.detected as f64;
        let rel = (mean_l - mean_v).abs() / mean_l;
        assert!(rel < 0.05, "mean detected pathlength: {mean_l} vs {mean_v}");
    }

    // Both runs conserve energy.
    assert!((l.tally.accounted_weight_fraction() - 1.0).abs() < 0.02);
    assert!((v.tally.accounted_weight_fraction() - 1.0).abs() < 0.02);
}

#[test]
fn narrow_grid_leaks_sideways_as_transmittance() {
    // Sanity-check the finite-extent semantics: shrinking the lateral
    // extent moves weight from reflectance/absorption into lateral escape
    // (tallied as transmittance), and photons launched outside the grid
    // reflect immediately.
    let layered = slab();
    let wide = voxelized(&layered, 0.5, 20.0, 5.0).unwrap();
    let narrow = voxelized(&layered, 0.5, 1.0, 5.0).unwrap();
    let detector = Detector::new(2.0, 1.0);
    let w = run(Scenario::new(wide, Source::Delta, detector).with_photons(5_000).with_seed(7));
    let n = run(Scenario::new(narrow, Source::Delta, detector).with_photons(5_000).with_seed(7));
    assert!(
        n.tally.transmitted_weight > 2.0 * w.tally.transmitted_weight,
        "narrow grid must leak sideways: narrow {} vs wide {}",
        n.tally.transmitted_weight,
        w.tally.transmitted_weight
    );
    assert!((n.tally.accounted_weight_fraction() - 1.0).abs() < 0.02, "leaks are still tallied");
}

#[test]
fn source_outside_grid_reflects_at_launch() {
    // A wide uniform source over a tiny grid: the misses are tallied as
    // reflected with full weight, keeping energy accounting exact.
    let layered = slab();
    let tiny = voxelized(&layered, 0.5, 1.0, 5.0).unwrap();
    let report = run(Scenario::new(tiny, Source::Uniform { radius: 5.0 }, Detector::new(2.0, 0.5))
        .with_photons(2_000)
        .with_seed(3));
    // P(inside 1x1 square | uniform disc r=5) is small; most photons miss.
    assert!(report.tally.reflected > 1_500, "reflected {}", report.tally.reflected);
    assert!((report.tally.accounted_weight_fraction() - 1.0).abs() < 0.05);
}
