//! Statistical-tolerance comparison helpers for Monte Carlo tallies.
//!
//! # When bit-identity applies, and when this module does
//!
//! The engine makes two different reproducibility promises, and the test
//! suite must compare tallies accordingly:
//!
//! * **Bit-identity** (`assert_eq!` on whole tallies, golden snapshots) is
//!   the right comparison whenever two runs execute the *same kernel over
//!   the same RNG stream discipline*: the same scenario on two backends, a
//!   re-run with the same seed, a refactor of the exact tier. Any byte of
//!   difference is a bug. The `golden_tallies` harness and the
//!   backend-equivalence suites work at this level, and the fast tier makes
//!   the same promise *within itself* (same scenario + seed ⇒ same bytes).
//!
//! * **Statistical tolerance** (this module) is the right comparison when
//!   two runs sample the *same distribution through different trajectories*:
//!   the fast tier versus the exact tier (different transcendental
//!   approximations and stream interleaving), or different seeds of the
//!   same scenario. There is no meaningful per-bit expectation, but every
//!   tally estimates a distribution parameter with a computable standard
//!   error, so the difference normalised by that standard error — a z
//!   score — is a principled, budget-independent comparison. With the
//!   polynomial approximation error (≤ 1e-10) far below Monte Carlo noise
//!   at any feasible budget, a fast-vs-exact discrepancy that *grows* with
//!   the z threshold indicates a physics bug, not an approximation
//!   artefact.
//!
//! Callers assert `|z| < Z_GATE`. The gate is deliberately loose (5σ): a
//! correct kernel exceeds it with probability ~6e-7 per comparison, while
//! real physics bugs (a mis-weighted escape, a biased phase function) show
//! up at tens to hundreds of σ even at small photon budgets.

/// Loose z gate for comparisons that must essentially never flake.
pub const Z_GATE: f64 = 5.0;

/// Two-proportion z score (pooled): compares event *counts* out of `n`
/// trials — detections, fate tallies, NA/gate rejections.
pub fn z_two_proportions(k1: u64, n1: u64, k2: u64, n2: u64) -> f64 {
    assert!(n1 > 0 && n2 > 0, "need trials on both sides");
    let (k1, n1, k2, n2) = (k1 as f64, n1 as f64, k2 as f64, n2 as f64);
    let p1 = k1 / n1;
    let p2 = k2 / n2;
    let pooled = (k1 + k2) / (n1 + n2);
    let var = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
    if var == 0.0 {
        // Both proportions are exactly 0 or exactly 1 — identical.
        return 0.0;
    }
    (p1 - p2) / var.sqrt()
}

/// Welch z score for a mean estimated from accumulated first and second
/// moments (`sum`, `sq_sum` over `n` samples) — e.g. the detected-photon
/// mean pathlength from `detected_path_sum` / `detected_path_sq_sum`.
pub fn z_welch_from_moments(
    sum1: f64,
    sq_sum1: f64,
    n1: u64,
    sum2: f64,
    sq_sum2: f64,
    n2: u64,
) -> f64 {
    assert!(n1 > 1 && n2 > 1, "need at least two samples per side");
    let (n1, n2) = (n1 as f64, n2 as f64);
    let m1 = sum1 / n1;
    let m2 = sum2 / n2;
    let var1 = (sq_sum1 / n1 - m1 * m1).max(0.0) * n1 / (n1 - 1.0);
    let var2 = (sq_sum2 / n2 - m2 * m2).max(0.0) * n2 / (n2 - 1.0);
    let se = (var1 / n1 + var2 / n2).sqrt();
    if se == 0.0 {
        return if m1 == m2 { 0.0 } else { f64::INFINITY };
    }
    (m1 - m2) / se
}

/// Conservative z score for a total of per-photon weights in `[0, 1]`
/// (reflected / transmitted / absorbed / detected weight totals).
///
/// The tally keeps only the weight *sum*, not its second moment, so the
/// per-photon variance is bounded by `μ(1−μ)` (any `[0, 1]` variable has
/// `E[X²] ≤ E[X]`). The resulting z is an overestimate of significance
/// never — it only under-reports, which is the safe direction for a gate.
pub fn z_bounded_weight(w1: f64, n1: u64, w2: f64, n2: u64) -> f64 {
    assert!(n1 > 0 && n2 > 0, "need photons on both sides");
    let (n1, n2) = (n1 as f64, n2 as f64);
    let m1 = w1 / n1;
    let m2 = w2 / n2;
    let pooled = ((w1 + w2) / (n1 + n2)).clamp(0.0, 1.0);
    let var = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
    if var == 0.0 {
        return if m1 == m2 { 0.0 } else { f64::INFINITY };
    }
    (m1 - m2) / var.sqrt()
}

#[cfg(test)]
mod self_checks {
    use super::*;

    #[test]
    fn identical_inputs_give_zero() {
        assert_eq!(z_two_proportions(50, 1000, 50, 1000), 0.0);
        assert_eq!(z_bounded_weight(12.5, 100, 12.5, 100), 0.0);
        assert_eq!(z_welch_from_moments(10.0, 25.0, 4, 10.0, 25.0, 4), 0.0);
    }

    #[test]
    fn gross_differences_blow_the_gate() {
        assert!(z_two_proportions(900, 1000, 100, 1000).abs() > Z_GATE);
        assert!(z_bounded_weight(900.0, 1000, 100.0, 1000).abs() > Z_GATE);
    }
}
