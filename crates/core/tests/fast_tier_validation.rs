//! Statistical validation of the `Fast` precision tier against the exact
//! tier, plus its determinism and feature-gating contracts.
//!
//! The fast tier is *not* bit-compatible with the exact tier (see
//! [`lumen_core::Precision`]), so these tests compare tallies with the
//! z-score helpers in `ztest` — every scalar tally is an estimator of the
//! same distribution parameter in both tiers, so normalised differences
//! beyond `Z_GATE` flag a physics bug rather than Monte Carlo noise.

mod ztest;

use lumen_core::engine::{Backend, Rayon, Scenario, Sequential};
use lumen_core::tally::Tally;
use lumen_core::{
    BoundaryMode, Detector, GridSpec, Precision, RadialSpec, SimulationOptions, Source, Vec3,
};
use lumen_tissue::presets::{adult_head, homogeneous_white_matter, voxelized, AdultHeadConfig};
use ztest::{z_bounded_weight, z_two_proportions, z_welch_from_moments, Z_GATE};

/// The presets the throughput bench runs, at budgets small enough for the
/// fast test loop but large enough that a biased kernel trips the gate.
fn validation_scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "white_matter",
            Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
                .with_photons(12_000)
                .with_tasks(4)
                .with_seed(3),
        ),
        (
            "adult_head",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(12_000)
            .with_tasks(4)
            .with_seed(42),
        ),
        (
            "voxel_head",
            Scenario::new(
                voxelized(&adult_head(AdultHeadConfig::default()), 1.0, 8.0, 25.0)
                    .expect("head voxelizes"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_photons(8_000)
            .with_tasks(4)
            .with_seed(42),
        ),
    ]
}

fn with_precision(scenario: &Scenario, precision: Precision) -> Scenario {
    let mut s = scenario.clone();
    s.options.precision = precision;
    s
}

fn run_sequential(scenario: &Scenario) -> Tally {
    Sequential.run(scenario).expect("scenario is valid").result.tally
}

#[test]
fn fast_tier_agrees_with_exact_statistically() {
    for (name, exact_scenario) in validation_scenarios() {
        let exact = run_sequential(&exact_scenario);
        let fast = run_sequential(&with_precision(&exact_scenario, Precision::Fast));
        assert_eq!(exact.launched, fast.launched, "{name}: same photon budget");
        let (n1, n2) = (exact.launched, fast.launched);

        let mut checks: Vec<(&str, f64)> = vec![
            ("detected count", z_two_proportions(exact.detected, n1, fast.detected, n2)),
            ("reflected count", z_two_proportions(exact.reflected, n1, fast.reflected, n2)),
            ("transmitted count", z_two_proportions(exact.transmitted, n1, fast.transmitted, n2)),
            (
                "roulette-killed count",
                z_two_proportions(exact.roulette_killed, n1, fast.roulette_killed, n2),
            ),
            (
                "detected weight",
                z_bounded_weight(exact.detected_weight, n1, fast.detected_weight, n2),
            ),
            (
                "reflected weight",
                z_bounded_weight(exact.reflected_weight, n1, fast.reflected_weight, n2),
            ),
            (
                "transmitted weight",
                z_bounded_weight(exact.transmitted_weight, n1, fast.transmitted_weight, n2),
            ),
            (
                "absorbed weight",
                z_bounded_weight(
                    exact.absorbed_by_layer.iter().sum(),
                    n1,
                    fast.absorbed_by_layer.iter().sum(),
                    n2,
                ),
            ),
        ];
        if exact.detected > 1 && fast.detected > 1 {
            checks.push((
                "detected mean pathlength",
                z_welch_from_moments(
                    exact.detected_path_sum,
                    exact.detected_path_sq_sum,
                    exact.detected,
                    fast.detected_path_sum,
                    fast.detected_path_sq_sum,
                    fast.detected,
                ),
            ));
        }
        for (what, z) in checks {
            assert!(
                z.abs() < Z_GATE,
                "{name}: fast vs exact {what} differs at z = {z:.2} (gate {Z_GATE})"
            );
        }
        // The specular launch loss is computed identically in both tiers.
        assert_eq!(exact.specular_weight, fast.specular_weight, "{name}: specular weight");
    }
}

#[test]
fn fast_tier_is_deterministic_and_backend_invariant() {
    let scenario =
        with_precision(&validation_scenarios()[0].1, Precision::Fast).with_photons(4_000);
    let a = run_sequential(&scenario);
    let b = run_sequential(&scenario);
    assert_eq!(a, b, "same fast scenario twice must be byte-identical");
    let rayon = Rayon::default().run(&scenario).expect("valid").result.tally;
    assert_eq!(a, rayon, "fast tier must merge identically across backends");
}

#[test]
fn fast_tier_fate_counts_partition_the_launches() {
    for (name, exact_scenario) in validation_scenarios() {
        let t = run_sequential(&with_precision(&exact_scenario, Precision::Fast));
        let total = t.detected
            + t.reflected
            + t.transmitted
            + t.roulette_killed
            + t.fully_absorbed
            + t.expired;
        assert_eq!(total, t.launched, "{name}: every launched photon has exactly one fate");
        assert_eq!(t.expired, 0, "{name}: healthy runs never hit the interaction cap");
    }
}

#[test]
fn fast_tier_supports_statistical_tallies() {
    let options = SimulationOptions {
        precision: Precision::Fast,
        path_histogram: Some((400.0, 40)),
        reflectance_profile: Some(RadialSpec { nr: 20, r_max: 10.0 }),
        absorption_rz: Some((RadialSpec { nr: 16, r_max: 8.0 }, 20, 8.0)),
        absorption_grid: Some(GridSpec::cubic(
            16,
            Vec3::new(-2.0, -2.0, 0.0),
            Vec3::new(4.0, 2.0, 4.0),
        )),
        ..SimulationOptions::default()
    };
    let scenario =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
            .with_options(options)
            .with_photons(4_000)
            .with_tasks(2)
            .with_seed(5);
    let tally = run_sequential(&scenario);
    assert!(tally.detected > 0, "detector must see photons");
    let hist = tally.path_histogram.as_ref().expect("histogram attached");
    let recorded: u64 = hist.counts.iter().sum::<u64>() + hist.overflow;
    assert_eq!(recorded, tally.detected, "one histogram entry per detected photon");
    assert!(tally.absorbed_by_layer.iter().sum::<f64>() > 0.0, "scattering medium absorbs weight");
}

#[test]
fn fast_tier_rejects_trajectory_features() {
    let base = Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0));
    let reject = |mutate: fn(&mut SimulationOptions)| {
        let mut s = base.clone();
        s.options.precision = Precision::Fast;
        mutate(&mut s.options);
        s.simulation().validate().expect_err("fast tier must reject this option")
    };
    reject(|o| {
        o.path_grid = Some(GridSpec::cubic(8, Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 2.0)))
    });
    reject(|o| o.record_paths = 4);
    reject(|o| o.archive = Some(lumen_core::RecordOptions::default()));
    reject(|o| o.boundary_mode = BoundaryMode::Classical);
    // The plain fast configuration itself is valid.
    let mut ok = base;
    ok.options.precision = Precision::Fast;
    ok.simulation().validate().expect("plain fast tier is valid");
}
