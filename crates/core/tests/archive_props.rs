//! Property tests for the path archive and its reweight algebra.
//!
//! The reweight estimator's soundness rests on a few algebraic facts
//! that hold for *any* archive, not just the ones the engine happens to
//! record — the perturbation ratio factorises over regions (it is an
//! exponential of a per-region sum), absorption only ever attenuates,
//! and the archive container itself behaves like the tally monoid under
//! merge. These are pinned here on synthetic archives drawn from the
//! proptest shim, plus one sampled property on real engine output:
//! Sequential and Rayon runs of the same scenario record identical
//! archives once entries are brought to canonical (task) order.

use lumen_core::archive::{CLASS_DETECTED, CLASS_MISSED_APERTURE};
use lumen_core::engine::{Backend, Rayon, Scenario, Sequential};
use lumen_core::{Detector, OpticalProperties, PathArchive, RecordOptions, Source};
use lumen_tissue::presets::semi_infinite_phantom;
use proptest::prelude::*;

const REGIONS: usize = 3;

fn base_optics() -> Vec<OpticalProperties> {
    vec![
        OpticalProperties::new(0.02, 10.0, 0.9, 1.4),
        OpticalProperties::new(0.05, 15.0, 0.9, 1.4),
        OpticalProperties::new(0.01, 5.0, 0.9, 1.4),
    ]
}

/// Build one archive entry per byte triple: per-region pathlengths in
/// [0, 16) mm and collision counts in [0, 32).
fn synthetic_archive(entries: &[[u8; 6]], task: u64) -> PathArchive {
    let mut a = PathArchive::new(REGIONS, base_optics(), RecordOptions::default());
    for e in entries {
        let partial: Vec<f64> = (0..REGIONS).map(|r| f64::from(e[r]) / 16.0).collect();
        let collisions: Vec<u32> = (0..REGIONS).map(|r| u32::from(e[3 + r]) % 32).collect();
        let pathlength: f64 = partial.iter().sum();
        let reached: Vec<bool> = partial.iter().map(|&l| l > 0.0).collect();
        a.on_launch(0.02);
        let class = if e[0] % 2 == 0 { CLASS_DETECTED } else { CLASS_MISSED_APERTURE };
        a.push(
            class,
            0.5,
            4.0,
            pathlength,
            1.0,
            collisions.iter().sum(),
            &partial,
            &collisions,
            &reached,
        );
    }
    a.stamp_task(task);
    a
}

/// Scale μa and μs of one region of the base optics.
fn query_scaling(region: usize, fa: f64, fs: f64) -> Vec<OpticalProperties> {
    base_optics()
        .iter()
        .enumerate()
        .map(|(r, o)| {
            if r == region {
                OpticalProperties::new(o.mu_a * fa, o.mu_s * fs, o.g, o.n)
            } else {
                *o
            }
        })
        .collect()
}

/// Factors in (0.5, 1.5] from a byte, bounded away from zero.
fn factor(raw: u8) -> f64 {
    0.5 + f64::from(raw % 16 + 1) / 16.0
}

proptest! {
    /// The ratio is `exp` of a sum of independent per-region terms, so
    /// perturbing all regions at once must equal the product of
    /// single-region perturbations (up to float rounding of the shared
    /// exponent).
    #[test]
    fn ratio_factorises_across_regions(
        entries in proptest::collection::vec(any::<[u8; 6]>(), 1..8),
        raw_f in any::<[u8; 6]>()
    ) {
        let a = synthetic_archive(&entries, 0);
        let per_region: Vec<Vec<OpticalProperties>> = (0..REGIONS)
            .map(|r| query_scaling(r, factor(raw_f[r]), factor(raw_f[3 + r])))
            .collect();
        let joint: Vec<OpticalProperties> = (0..REGIONS)
            .map(|r| per_region[r][r])
            .collect();
        let cj = a.coeffs(&joint).unwrap();
        let cs: Vec<_> = per_region.iter().map(|q| a.coeffs(q).unwrap()).collect();
        for i in 0..a.len() {
            let joint_ratio = a.ratio(i, &cj);
            let product: f64 = cs.iter().map(|c| a.ratio(i, c)).product();
            let rel = (joint_ratio - product).abs() / joint_ratio.max(1e-300);
            prop_assert!(
                rel < 1e-9,
                "entry {}: joint {} vs factorised {} (rel {})",
                i, joint_ratio, product, rel
            );
        }
    }

    /// More absorption can only attenuate: every entry's weight ratio is
    /// non-increasing in any region's μa, strictly decreasing where the
    /// path actually traverses that region.
    #[test]
    fn ratio_is_monotone_decreasing_in_absorption(
        entries in proptest::collection::vec(any::<[u8; 6]>(), 1..8),
        region in 0usize..REGIONS,
        raw_lo in any::<u8>(),
        raw_hi in any::<u8>()
    ) {
        let a = synthetic_archive(&entries, 0);
        let (lo, hi) = (factor(raw_lo), factor(raw_hi));
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let c_lo = a.coeffs(&query_scaling(region, lo, 1.0)).unwrap();
        let c_hi = a.coeffs(&query_scaling(region, hi, 1.0)).unwrap();
        for i in 0..a.len() {
            let (r_lo, r_hi) = (a.ratio(i, &c_lo), a.ratio(i, &c_hi));
            prop_assert!(
                r_hi <= r_lo,
                "entry {}: ratio rose with absorption ({} at fa {} vs {} at fa {})",
                i, r_lo, lo, r_hi, hi
            );
            let row = i * REGIONS;
            if hi > lo && a.partial_path[row + region] > 0.0 {
                prop_assert!(r_hi < r_lo, "strict decrease expected where the path has length");
            }
        }
    }

    /// Merging per-task archives in either order yields the same archive
    /// after canonical (task-order) sorting — the property the cluster
    /// runtime leans on when task results arrive out of order.
    #[test]
    fn merge_is_order_insensitive_after_canonical_ordering(
        ea in proptest::collection::vec(any::<[u8; 6]>(), 0..6),
        eb in proptest::collection::vec(any::<[u8; 6]>(), 0..6)
    ) {
        let (a, b) = (synthetic_archive(&ea, 0), synthetic_archive(&eb, 1));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        ab.canonical_order();
        ba.canonical_order();
        prop_assert_eq!(ab, ba);
    }

    /// Identity evaluation is insensitive to merge order: the replay
    /// groups entries by task id, so both merge orders rebuild the same
    /// per-task summation tree bit for bit.
    #[test]
    fn identity_evaluation_is_merge_order_invariant(
        ea in proptest::collection::vec(any::<[u8; 6]>(), 1..6),
        eb in proptest::collection::vec(any::<[u8; 6]>(), 1..6)
    ) {
        let (a, b) = (synthetic_archive(&ea, 0), synthetic_archive(&eb, 1));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        ba.canonical_order();
        let ra = ab.evaluate(&base_optics()).unwrap();
        let rb = ba.evaluate(&base_optics()).unwrap();
        prop_assert_eq!(ra.tally, rb.tally);
    }
}

proptest! {
    /// The batch sweep API is a pure fan-out: `evaluate_many` answers
    /// every query bit-identically to its sequential `evaluate`, in
    /// query order, however the rayon pool schedules the work.
    #[test]
    fn batch_sweep_matches_sequential_per_query(
        entries in proptest::collection::vec(any::<[u8; 6]>(), 1..8),
        factors in proptest::collection::vec(any::<[u8; 2]>(), 1..12),
    ) {
        let archive = synthetic_archive(&entries, 0);
        let queries: Vec<_> = factors
            .iter()
            .enumerate()
            .map(|(i, f)| query_scaling(i % REGIONS, factor(f[0]), factor(f[1])))
            .collect();
        let batch = archive.evaluate_many(&queries);
        prop_assert_eq!(batch.len(), queries.len());
        for (query, got) in queries.iter().zip(&batch) {
            let alone = archive.evaluate(query).unwrap();
            prop_assert_eq!(got.as_ref().unwrap(), &alone);
        }
    }
}

proptest! {
    // Full engine runs are costly; a few sampled seeds are enough for
    // the cross-backend determinism claim (the cluster crate pins the
    // distributed leg of the same property).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sequential and Rayon record identical archives for the same
    /// scenario once brought to canonical order.
    #[test]
    fn backends_record_identical_archives(seed in any::<u16>()) {
        let mut scenario = Scenario::new(
            semi_infinite_phantom(0.05, 8.0, 0.9, 1.4),
            Source::Delta,
            Detector::new(3.0, 1.0),
        )
        .with_photons(2_000)
        .with_tasks(4)
        .with_seed(u64::from(seed));
        scenario.options.archive = Some(RecordOptions::default());

        let mut seq = Sequential.run(&scenario).unwrap().tally.archive.clone().unwrap();
        let mut ray =
            Rayon::with_threads(2).run(&scenario).unwrap().tally.archive.clone().unwrap();
        seq.canonical_order();
        ray.canonical_order();
        prop_assert_eq!(seq, ray);
    }
}
