//! Golden-tally regression harness.
//!
//! Every preset scenario is run with a fixed seed and a small photon budget,
//! and the resulting tally is serialised to a text snapshot checked in under
//! `tests/golden/`. The test fails on ANY byte difference, so refactors of
//! the photon stepping loop (e.g. the `TissueGeometry` genericization) are
//! provably physics-preserving: same seeds, same bits.
//!
//! Regenerating snapshots (after an *intentional* physics change):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lumen-core --test golden_tallies
//! ```
//!
//! then review the diff like any other code change. Budgets are deliberately
//! small (1.5k–3k photons) so the whole harness stays in the fast loop
//! (`cargo test --workspace --exclude lumen`).

use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::tally::Tally;
use lumen_core::{
    BoundaryMode, Detector, GateWindow, GridSpec, RadialSpec, SimulationOptions, Source, Vec3,
};
use lumen_tissue::presets::{
    adult_head, head_with_inclusion, homogeneous_white_matter, neonatal_head,
    semi_infinite_phantom, voxelized, AdultHeadConfig,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Self-contained SHA-256 (FIPS 180-4) so distribution-level tallies can be
/// pinned without an external dependency: the full `VisitGrid`,
/// `PathHistogram`, and `A(r, z)` arrays are digested bit-for-bit into the
/// snapshot, so drift anywhere in a distribution cannot hide behind stable
/// scalar totals.
mod sha256 {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut msg = data.to_vec();
        msg.push(0x80);
        while msg.len() % 64 != 56 {
            msg.push(0);
        }
        msg.extend_from_slice(&bit_len.to_be_bytes());

        for chunk in msg.chunks_exact(64) {
            let mut w = [0u32; 64];
            for (i, word) in chunk.chunks_exact(4).enumerate() {
                w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                hh = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
                *slot = slot.wrapping_add(v);
            }
        }

        let mut out = [0u8; 32];
        for (i, v) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_be_bytes());
        }
        out
    }

    pub fn hex(data: &[u8]) -> String {
        digest(data).iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_answers() {
        assert_eq!(hex(b""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
        assert_eq!(hex(b"abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
        // Spills into a second block (55 vs 56 byte message boundary).
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }
}

/// Little-endian byte stream of an `f64` slice — the digest input for every
/// float-valued distribution. Bit-exact: any ulp of drift changes the hash.
fn f64_bytes(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn u64_bytes(values: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Render a tally as a stable, human-reviewable text snapshot. Floats use
/// Rust's shortest round-trip formatting, so equal text means equal bits.
fn snapshot(name: &str, scenario: &Scenario, tally: &Tally) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Golden tally snapshot: {name}");
    let _ =
        writeln!(s, "# Regenerate: UPDATE_GOLDEN=1 cargo test -p lumen-core --test golden_tallies");
    let _ = writeln!(s, "photons = {}", scenario.photons);
    let _ = writeln!(s, "tasks = {}", scenario.tasks);
    let _ = writeln!(s, "seed = {}", scenario.seed);
    let _ = writeln!(s, "launched = {}", tally.launched);
    let _ = writeln!(s, "detected = {}", tally.detected);
    let _ = writeln!(s, "reflected = {}", tally.reflected);
    let _ = writeln!(s, "transmitted = {}", tally.transmitted);
    let _ = writeln!(s, "roulette_killed = {}", tally.roulette_killed);
    let _ = writeln!(s, "fully_absorbed = {}", tally.fully_absorbed);
    let _ = writeln!(s, "expired = {}", tally.expired);
    let _ = writeln!(s, "gate_rejected = {}", tally.gate_rejected);
    let _ = writeln!(s, "na_rejected = {}", tally.na_rejected);
    let _ = writeln!(s, "specular_weight = {}", tally.specular_weight);
    let _ = writeln!(s, "detected_weight = {}", tally.detected_weight);
    let _ = writeln!(s, "reflected_weight = {}", tally.reflected_weight);
    let _ = writeln!(s, "transmitted_weight = {}", tally.transmitted_weight);
    let abs: Vec<String> = tally.absorbed_by_layer.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "absorbed_by_layer = {}", abs.join(" "));
    let _ = writeln!(s, "detected_path_sum = {}", tally.detected_path_sum);
    let _ = writeln!(s, "detected_path_sq_sum = {}", tally.detected_path_sq_sum);
    let _ = writeln!(s, "detected_weight_path_sum = {}", tally.detected_weight_path_sum);
    let _ = writeln!(s, "detected_depth_sum = {}", tally.detected_depth_sum);
    let _ = writeln!(s, "detected_depth_max = {}", tally.detected_depth_max);
    let reached: Vec<String> = tally.detected_reached_layer.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "detected_reached_layer = {}", reached.join(" "));
    let partial: Vec<String> = tally.detected_partial_path.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "detected_partial_path = {}", partial.join(" "));
    let _ = writeln!(s, "detected_scatter_sum = {}", tally.detected_scatter_sum);
    if let Some(hist) = &tally.path_histogram {
        let counts: Vec<String> = hist.counts.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(s, "path_histogram = {}", counts.join(" "));
        let _ = writeln!(s, "path_histogram_overflow = {}", hist.overflow);
        let _ = writeln!(s, "path_histogram_sha256 = {}", sha256::hex(&u64_bytes(&hist.counts)));
    }
    // Distribution-level pinning: the *entire* array of every attached
    // grid/profile is digested, so drift in any single voxel or bin fails
    // the snapshot even when totals happen to cancel.
    if let Some(grid) = &tally.path_grid {
        let _ = writeln!(s, "path_grid_total = {}", grid.total());
        let _ = writeln!(s, "path_grid_sha256 = {}", sha256::hex(&f64_bytes(grid.data())));
    }
    if let Some(grid) = &tally.absorption_grid {
        let _ = writeln!(s, "absorption_grid_total = {}", grid.total());
        let _ = writeln!(s, "absorption_grid_sha256 = {}", sha256::hex(&f64_bytes(grid.data())));
    }
    if let Some(profile) = &tally.reflectance_r {
        let _ = writeln!(s, "reflectance_r_total = {}", profile.total());
        let _ = writeln!(s, "reflectance_r_overflow = {}", profile.overflow);
        let _ =
            writeln!(s, "reflectance_r_sha256 = {}", sha256::hex(&f64_bytes(profile.weights())));
    }
    if let Some(rz) = &tally.absorption_rz {
        let flat: Vec<f64> = (0..rz.nz)
            .flat_map(|iz| (0..rz.radial.nr).map(move |ir| (ir, iz)))
            .map(|(ir, iz)| rz.at(ir, iz))
            .collect();
        let _ = writeln!(s, "absorption_rz_total = {}", rz.total());
        let _ = writeln!(s, "absorption_rz_overflow = {}", rz.overflow);
        let _ = writeln!(s, "absorption_rz_sha256 = {}", sha256::hex(&f64_bytes(&flat)));
    }
    s
}

/// The locked-down scenario set: every tissue preset, both boundary modes,
/// every source family, gated and open detectors, task splits > 1 (so the
/// engine's merge order is pinned too).
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let classical = SimulationOptions {
        boundary_mode: BoundaryMode::Classical,
        ..SimulationOptions::default()
    };
    let gated = SimulationOptions {
        path_histogram: Some((400.0, 20)),
        reflectance_profile: Some(RadialSpec { nr: 40, r_max: 40.0 }),
        ..SimulationOptions::default()
    };
    // Distribution tallies attached to representative scenarios so the
    // sha256 digests pin full arrays, not just scalar sums. Attaching a
    // grid never consumes RNG draws, so the scalar tallies are unchanged.
    let head_grids = SimulationOptions {
        path_grid: Some(GridSpec::cubic(
            24,
            Vec3::new(-10.0, -10.0, 0.0),
            Vec3::new(30.0, 10.0, 40.0),
        )),
        absorption_rz: Some((RadialSpec { nr: 30, r_max: 30.0 }, 40, 40.0)),
        path_histogram: Some((600.0, 40)),
        ..SimulationOptions::default()
    };
    let wm_grids = SimulationOptions {
        path_grid: Some(GridSpec::cubic(20, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(4.0, 2.0, 4.0))),
        absorption_grid: Some(GridSpec::cubic(
            20,
            Vec3::new(-2.0, -2.0, 0.0),
            Vec3::new(4.0, 2.0, 4.0),
        )),
        ..SimulationOptions::default()
    };
    let phantom_grids = SimulationOptions {
        reflectance_profile: Some(RadialSpec { nr: 25, r_max: 10.0 }),
        absorption_rz: Some((RadialSpec { nr: 20, r_max: 10.0 }, 20, 10.0)),
        ..SimulationOptions::default()
    };
    let voxel_grids = SimulationOptions {
        path_grid: Some(GridSpec::cubic(16, Vec3::new(-8.0, -8.0, 0.0), Vec3::new(8.0, 8.0, 25.0))),
        absorption_rz: Some((RadialSpec { nr: 16, r_max: 8.0 }, 25, 25.0)),
        ..SimulationOptions::default()
    };
    vec![
        (
            "adult_head_default",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_options(head_grids)
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(42),
        ),
        (
            "adult_head_thin",
            Scenario::new(
                adult_head(AdultHeadConfig::thin()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(7),
        ),
        (
            "adult_head_thick",
            Scenario::new(
                adult_head(AdultHeadConfig::thick()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(9),
        ),
        (
            "neonatal_head",
            Scenario::new(neonatal_head(), Source::Delta, Detector::new(10.0, 1.0))
                .with_photons(2_000)
                .with_tasks(4)
                .with_seed(11),
        ),
        (
            "white_matter",
            Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
                .with_options(wm_grids)
                .with_photons(2_000)
                .with_tasks(4)
                .with_seed(3),
        ),
        (
            "phantom_probabilistic",
            Scenario::new(
                semi_infinite_phantom(0.1, 10.0, 0.9, 1.4),
                Source::Delta,
                Detector::new(2.0, 0.5),
            )
            .with_options(phantom_grids)
            .with_photons(3_000)
            .with_tasks(4)
            .with_seed(5),
        ),
        (
            "phantom_classical",
            Scenario::new(
                semi_infinite_phantom(0.1, 10.0, 0.9, 1.4),
                Source::Delta,
                Detector::new(2.0, 0.5),
            )
            .with_options(classical)
            .with_photons(3_000)
            .with_tasks(4)
            .with_seed(5),
        ),
        (
            "gaussian_ring_gated",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Gaussian { radius: 1.5 },
                Detector::ring(20.0, 2.0)
                    .with_gate(GateWindow::new(10.0, 400.0).unwrap())
                    .with_numerical_aperture(0.5, 1.0),
            )
            .with_options(gated)
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(13),
        ),
        (
            "uniform_source_phantom",
            Scenario::new(
                semi_infinite_phantom(0.05, 8.0, 0.8, 1.37),
                Source::Uniform { radius: 1.0 },
                Detector::new(3.0, 1.0),
            )
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(21),
        ),
        // Voxel geometries, locked down exactly like the layered presets.
        (
            "voxel_head",
            Scenario::new(
                voxelized(&adult_head(AdultHeadConfig::default()), 1.0, 8.0, 25.0)
                    .expect("head voxelizes"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_options(voxel_grids)
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(42),
        ),
        (
            "voxel_head_inclusion",
            Scenario::new(
                head_with_inclusion(
                    AdultHeadConfig::default(),
                    1.0,
                    8.0,
                    25.0,
                    Vec3::new(5.0, 0.0, 16.0),
                    4.0,
                )
                .expect("inclusion phantom builds"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(42),
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

#[test]
fn golden_tallies_are_byte_identical() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for (name, scenario) in scenarios() {
        let report = Sequential.run(&scenario).expect("preset scenario is valid");
        let got = snapshot(name, &scenario, &report.result.tally);
        let path = dir.join(format!("{name}.txt"));
        if update {
            std::fs::write(&path, &got).expect("write golden snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) => {
                if want != got {
                    failures.push(format!(
                        "`{name}` diverged from {}.\n--- golden\n{want}\n--- current\n{got}",
                        path.display()
                    ));
                }
            }
            Err(e) => failures.push(format!(
                "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }
    assert!(failures.is_empty(), "golden tally regressions:\n{}", failures.join("\n"));
}

/// Every checked-in snapshot must correspond to a live scenario — stale
/// files would silently stop being regression-checked.
#[test]
fn no_stale_golden_snapshots() {
    let known: Vec<String> = scenarios().iter().map(|(n, _)| format!("{n}.txt")).collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else { return };
    for entry in entries {
        let file = entry.expect("read golden dir entry").file_name();
        let file = file.to_string_lossy().to_string();
        assert!(
            known.contains(&file) || !file.ends_with(".txt"),
            "stale golden snapshot `{file}` has no matching scenario"
        );
    }
}
