//! Golden-tally regression harness.
//!
//! Every preset scenario is run with a fixed seed and a small photon budget,
//! and the resulting tally is serialised to a text snapshot checked in under
//! `tests/golden/`. The test fails on ANY byte difference, so refactors of
//! the photon stepping loop (e.g. the `TissueGeometry` genericization) are
//! provably physics-preserving: same seeds, same bits.
//!
//! Regenerating snapshots (after an *intentional* physics change):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lumen-core --test golden_tallies
//! ```
//!
//! then review the diff like any other code change. Budgets are deliberately
//! small (1.5k–3k photons) so the whole harness stays in the fast loop
//! (`cargo test --workspace --exclude lumen`).

use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::tally::Tally;
use lumen_core::{BoundaryMode, Detector, GateWindow, SimulationOptions, Source, Vec3};
use lumen_tissue::presets::{
    adult_head, head_with_inclusion, homogeneous_white_matter, neonatal_head,
    semi_infinite_phantom, voxelized, AdultHeadConfig,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Render a tally as a stable, human-reviewable text snapshot. Floats use
/// Rust's shortest round-trip formatting, so equal text means equal bits.
fn snapshot(name: &str, scenario: &Scenario, tally: &Tally) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Golden tally snapshot: {name}");
    let _ =
        writeln!(s, "# Regenerate: UPDATE_GOLDEN=1 cargo test -p lumen-core --test golden_tallies");
    let _ = writeln!(s, "photons = {}", scenario.photons);
    let _ = writeln!(s, "tasks = {}", scenario.tasks);
    let _ = writeln!(s, "seed = {}", scenario.seed);
    let _ = writeln!(s, "launched = {}", tally.launched);
    let _ = writeln!(s, "detected = {}", tally.detected);
    let _ = writeln!(s, "reflected = {}", tally.reflected);
    let _ = writeln!(s, "transmitted = {}", tally.transmitted);
    let _ = writeln!(s, "roulette_killed = {}", tally.roulette_killed);
    let _ = writeln!(s, "fully_absorbed = {}", tally.fully_absorbed);
    let _ = writeln!(s, "expired = {}", tally.expired);
    let _ = writeln!(s, "gate_rejected = {}", tally.gate_rejected);
    let _ = writeln!(s, "na_rejected = {}", tally.na_rejected);
    let _ = writeln!(s, "specular_weight = {}", tally.specular_weight);
    let _ = writeln!(s, "detected_weight = {}", tally.detected_weight);
    let _ = writeln!(s, "reflected_weight = {}", tally.reflected_weight);
    let _ = writeln!(s, "transmitted_weight = {}", tally.transmitted_weight);
    let abs: Vec<String> = tally.absorbed_by_layer.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "absorbed_by_layer = {}", abs.join(" "));
    let _ = writeln!(s, "detected_path_sum = {}", tally.detected_path_sum);
    let _ = writeln!(s, "detected_path_sq_sum = {}", tally.detected_path_sq_sum);
    let _ = writeln!(s, "detected_weight_path_sum = {}", tally.detected_weight_path_sum);
    let _ = writeln!(s, "detected_depth_sum = {}", tally.detected_depth_sum);
    let _ = writeln!(s, "detected_depth_max = {}", tally.detected_depth_max);
    let reached: Vec<String> = tally.detected_reached_layer.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "detected_reached_layer = {}", reached.join(" "));
    let partial: Vec<String> = tally.detected_partial_path.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "detected_partial_path = {}", partial.join(" "));
    let _ = writeln!(s, "detected_scatter_sum = {}", tally.detected_scatter_sum);
    if let Some(hist) = &tally.path_histogram {
        let counts: Vec<String> = hist.counts.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(s, "path_histogram = {}", counts.join(" "));
        let _ = writeln!(s, "path_histogram_overflow = {}", hist.overflow);
    }
    s
}

/// The locked-down scenario set: every tissue preset, both boundary modes,
/// every source family, gated and open detectors, task splits > 1 (so the
/// engine's merge order is pinned too).
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let classical = SimulationOptions {
        boundary_mode: BoundaryMode::Classical,
        ..SimulationOptions::default()
    };
    let gated =
        SimulationOptions { path_histogram: Some((400.0, 20)), ..SimulationOptions::default() };
    vec![
        (
            "adult_head_default",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(42),
        ),
        (
            "adult_head_thin",
            Scenario::new(
                adult_head(AdultHeadConfig::thin()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(7),
        ),
        (
            "adult_head_thick",
            Scenario::new(
                adult_head(AdultHeadConfig::thick()),
                Source::Delta,
                Detector::new(20.0, 2.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(9),
        ),
        (
            "neonatal_head",
            Scenario::new(neonatal_head(), Source::Delta, Detector::new(10.0, 1.0))
                .with_photons(2_000)
                .with_tasks(4)
                .with_seed(11),
        ),
        (
            "white_matter",
            Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
                .with_photons(2_000)
                .with_tasks(4)
                .with_seed(3),
        ),
        (
            "phantom_probabilistic",
            Scenario::new(
                semi_infinite_phantom(0.1, 10.0, 0.9, 1.4),
                Source::Delta,
                Detector::new(2.0, 0.5),
            )
            .with_photons(3_000)
            .with_tasks(4)
            .with_seed(5),
        ),
        (
            "phantom_classical",
            Scenario::new(
                semi_infinite_phantom(0.1, 10.0, 0.9, 1.4),
                Source::Delta,
                Detector::new(2.0, 0.5),
            )
            .with_options(classical)
            .with_photons(3_000)
            .with_tasks(4)
            .with_seed(5),
        ),
        (
            "gaussian_ring_gated",
            Scenario::new(
                adult_head(AdultHeadConfig::default()),
                Source::Gaussian { radius: 1.5 },
                Detector::ring(20.0, 2.0)
                    .with_gate(GateWindow::new(10.0, 400.0).unwrap())
                    .with_numerical_aperture(0.5, 1.0),
            )
            .with_options(gated)
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(13),
        ),
        (
            "uniform_source_phantom",
            Scenario::new(
                semi_infinite_phantom(0.05, 8.0, 0.8, 1.37),
                Source::Uniform { radius: 1.0 },
                Detector::new(3.0, 1.0),
            )
            .with_photons(2_000)
            .with_tasks(4)
            .with_seed(21),
        ),
        // Voxel geometries, locked down exactly like the layered presets.
        (
            "voxel_head",
            Scenario::new(
                voxelized(&adult_head(AdultHeadConfig::default()), 1.0, 8.0, 25.0)
                    .expect("head voxelizes"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(42),
        ),
        (
            "voxel_head_inclusion",
            Scenario::new(
                head_with_inclusion(
                    AdultHeadConfig::default(),
                    1.0,
                    8.0,
                    25.0,
                    Vec3::new(5.0, 0.0, 16.0),
                    4.0,
                )
                .expect("inclusion phantom builds"),
                Source::Delta,
                Detector::new(4.0, 1.0),
            )
            .with_photons(1_500)
            .with_tasks(4)
            .with_seed(42),
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

#[test]
fn golden_tallies_are_byte_identical() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for (name, scenario) in scenarios() {
        let report = Sequential.run(&scenario).expect("preset scenario is valid");
        let got = snapshot(name, &scenario, &report.result.tally);
        let path = dir.join(format!("{name}.txt"));
        if update {
            std::fs::write(&path, &got).expect("write golden snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) => {
                if want != got {
                    failures.push(format!(
                        "`{name}` diverged from {}.\n--- golden\n{want}\n--- current\n{got}",
                        path.display()
                    ));
                }
            }
            Err(e) => failures.push(format!(
                "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }
    assert!(failures.is_empty(), "golden tally regressions:\n{}", failures.join("\n"));
}

/// Every checked-in snapshot must correspond to a live scenario — stale
/// files would silently stop being regression-checked.
#[test]
fn no_stale_golden_snapshots() {
    let known: Vec<String> = scenarios().iter().map(|(n, _)| format!("{n}.txt")).collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else { return };
    for entry in entries {
        let file = entry.expect("read golden dir entry").file_name();
        let file = file.to_string_lossy().to_string();
        assert!(
            known.contains(&file) || !file.ends_with(".txt"),
            "stale golden snapshot `{file}` has no matching scenario"
        );
    }
}
