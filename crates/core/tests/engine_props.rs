//! Property tests for the engine's work decomposition and the scenario
//! API: whatever the budget and task count, the batch split must preserve
//! the photon total, stay near-equal, and never emit empty batches.

use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::parallel::batch_sizes;
use lumen_core::{Detector, Source};
use lumen_tissue::presets::semi_infinite_phantom;
use proptest::prelude::*;

proptest! {
    #[test]
    fn batch_sums_are_preserved(total in 0u64..10_000_000, tasks in 0u64..2_000) {
        let sizes = batch_sizes(total, tasks);
        prop_assert_eq!(sizes.iter().sum::<u64>(), total);
    }

    #[test]
    fn no_zero_batches(total in 0u64..10_000_000, tasks in 0u64..2_000) {
        let sizes = batch_sizes(total, tasks);
        prop_assert!(sizes.iter().all(|&n| n > 0));
        // And never more batches than photons or requested tasks.
        prop_assert!(sizes.len() as u64 <= total);
        prop_assert!(sizes.len() as u64 <= tasks.max(1));
    }

    #[test]
    fn batches_are_near_equal(total in 1u64..10_000_000, tasks in 1u64..2_000) {
        let sizes = batch_sizes(total, tasks);
        let mx = *sizes.iter().max().expect("non-empty");
        let mn = *sizes.iter().min().expect("non-empty");
        prop_assert!(mx - mn <= 1, "max {} min {}", mx, mn);
    }

    #[test]
    fn batch_count_is_monotone_in_tasks(total in 1u64..1_000_000, tasks in 1u64..1_000) {
        // Raising the task count can only split work finer: the number of
        // (non-empty) batches never decreases, and the largest batch never
        // grows.
        let coarse = batch_sizes(total, tasks);
        let fine = batch_sizes(total, tasks + 1);
        prop_assert!(fine.len() >= coarse.len());
        let coarse_max = *coarse.iter().max().expect("non-empty");
        let fine_max = *fine.iter().max().expect("non-empty");
        prop_assert!(fine_max <= coarse_max, "{} > {}", fine_max, coarse_max);
    }

    #[test]
    fn scenario_batches_match_free_function(
        total in 0u64..1_000_000, tasks in 1u64..512, seed in any::<u64>()
    ) {
        let scenario = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(2.0, 0.5),
        )
        .with_photons(total)
        .with_tasks(tasks)
        .with_seed(seed);
        prop_assert_eq!(scenario.batches(), batch_sizes(total, tasks));
    }
}

#[test]
fn scenario_launches_exact_budget_across_task_counts() {
    // The decomposition is invisible in the launched total, whatever the
    // split — including more tasks than photons.
    let base = Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(1_234)
    .with_seed(3);
    for tasks in [1u64, 2, 7, 64, 1_233, 1_234, 5_000] {
        let report = Sequential.run(&base.clone().with_tasks(tasks)).expect("valid scenario");
        assert_eq!(report.launched(), 1_234, "tasks = {tasks}");
    }
}
