//! Statistical validation of the reweight estimator: re-scoring an
//! archive for perturbed optical properties must agree with a fresh
//! Monte Carlo run at those properties within MC tolerance (the same
//! kind of bound `voxel_equivalence.rs` uses between geometry backends).
//!
//! The two estimates are statistically independent — the fresh run
//! traces new trajectories under the perturbed physics while the
//! reweighter re-scores the recorded ones — so the comparison is on
//! relative error, not bit equality (that contract lives in
//! `reweight_identity.rs`). What can be asserted, and how tightly,
//! follows from the estimator's structure:
//!
//! * **Weight aggregates** (detected weight, weighted mean pathlength)
//!   carry the full importance ratio and are *exact* in expectation —
//!   Russian roulette cancels out of them identically (the 1/p weight
//!   boost of a survivor is matched by the p in its path density), so
//!   they hold on any geometry, absorption or scattering perturbation,
//!   as long as the effective sample size is healthy.
//! * **Unweighted path statistics** (the per-region partial-pathlength
//!   sums) are reweighted by the trajectory-density ratio λ, which
//!   ignores roulette. They are reliable where detected paths stay
//!   under the roulette horizon `|ln threshold| / μa` (a bounded slab);
//!   on a semi-infinite medium, *lowering* μa revives long paths the
//!   recording run already roulette-thinned, which no reweight can
//!   recreate — so the head is only checked in the μa-raising direction.
//! * **Scattering perturbations** multiply a `(μs′/μs)^k` term with
//!   per-path collision counts k in the hundreds-to-thousands: the
//!   log-ratio variance is ~`k̄ (ln fs)²`, so ESS collapses rapidly with
//!   perturbation size and the surviving estimate is heavy-tailed.
//!   ±10% μs is fine on a thin slab (k̄ ≈ 130) and hopeless on the
//!   adult head (k̄ ≈ 1900) — which is exactly what
//!   [`ReweightReport::ess`] is for, and what the ESS-ladder test pins.

use lumen_core::engine::{Backend, RunReport, Scenario, Sequential};
use lumen_core::{Detector, PathArchive, RecordOptions, ReweightReport, Source, Tally};
use lumen_tissue::presets::{adult_head, voxelized, AdultHeadConfig};
use lumen_tissue::{LayeredTissue, OpticalProperties};

const PHOTONS: u64 = 40_000;
const SEED: u64 = 806;

/// Scale every layer's μa and μs by the given factors, keeping g and n
/// (the reweight ratio is only defined for μa/μs perturbations).
fn perturbed(tissue: &LayeredTissue, fa: f64, fs: f64) -> LayeredTissue {
    LayeredTissue::stack(
        tissue
            .layers()
            .iter()
            .map(|l| {
                let o = l.optics;
                (
                    l.name.clone(),
                    l.thickness(),
                    OpticalProperties::new(o.mu_a * fa, o.mu_s * fs, o.g, o.n),
                )
            })
            .collect(),
        tissue.ambient_n,
    )
    .expect("scaled stack stays valid")
}

fn perturbed_query(base: &[OpticalProperties], fa: f64, fs: f64) -> Vec<OpticalProperties> {
    base.iter().map(|o| OpticalProperties::new(o.mu_a * fa, o.mu_s * fs, o.g, o.n)).collect()
}

/// Record an archive for the scenario and return it with its tally.
fn record(tissue: LayeredTissue, detector: Detector) -> (PathArchive, Tally) {
    let mut scenario = Scenario::new(tissue, Source::Delta, detector)
        .with_photons(PHOTONS)
        .with_tasks(8)
        .with_seed(SEED);
    scenario.options.archive = Some(RecordOptions::default());
    let recorded = Sequential.run(&scenario).expect("recording run");
    let archive = recorded.tally.archive.clone().expect("archive attached");
    assert!(
        recorded.tally.detected > 400,
        "need statistics to validate against: detected {}",
        recorded.tally.detected
    );
    (archive, recorded.tally.clone())
}

fn fresh_layered(tissue: &LayeredTissue, detector: Detector, fa: f64, fs: f64) -> RunReport {
    Sequential
        .run(
            &Scenario::new(perturbed(tissue, fa, fs), Source::Delta, detector)
                .with_photons(PHOTONS)
                .with_tasks(8)
                .with_seed(SEED),
        )
        .expect("fresh perturbed run")
}

/// Assert the exactly-reweightable weight aggregates against a fresh
/// run: total detected weight and the weighted mean detected pathlength
/// (the quantity a DPF is built from).
fn assert_weight_aggregates(report: &ReweightReport, fresh: &Tally, fa: f64, fs: f64, tol: f64) {
    let rw = report.tally.detected_weight;
    let mc = fresh.detected_weight;
    let rel = (rw - mc).abs() / mc.abs().max(1e-12);
    assert!(
        rel < tol,
        "detected weight at (fa {fa}, fs {fs}): reweight {rw} vs fresh {mc} \
         (rel {rel:.4}, tol {tol}, ess {:.0}/{})",
        report.ess,
        report.detected_entries,
    );

    let rw_mean = report.tally.detected_weight_path_sum / report.tally.detected_weight;
    let mc_mean = fresh.detected_weight_path_sum / fresh.detected_weight;
    let rel = (rw_mean - mc_mean).abs() / mc_mean;
    assert!(
        rel < tol,
        "weighted mean pathlength at (fa {fa}, fs {fs}): reweight {rw_mean:.2} \
         vs fresh {mc_mean:.2} (rel {rel:.4}, tol {tol})"
    );
}

/// Assert the λ-reweighted per-region pathlength *shares* against a
/// fresh run, for regions carrying a meaningful share.
fn assert_partial_path_shares(report: &ReweightReport, fresh: &Tally, fa: f64, fs: f64, tol: f64) {
    let rw_total: f64 = report.tally.detected_partial_path.iter().sum();
    let mc_total: f64 = fresh.detected_partial_path.iter().sum();
    for (r, (a, b)) in
        report.tally.detected_partial_path.iter().zip(&fresh.detected_partial_path).enumerate()
    {
        let (a, b) = (a / rw_total, b / mc_total);
        if b > 0.05 {
            let rel = (a - b).abs() / b;
            assert!(
                rel < tol,
                "partial path share in region {r} at (fa {fa}, fs {fs}): \
                 reweight {a:.4} vs fresh {b:.4} (rel {rel:.4})"
            );
        }
    }
}

#[test]
fn near_absorption_perturbations_match_fresh_runs_on_the_adult_head() {
    let tissue = adult_head(AdultHeadConfig::default());
    // An 8 mm ring keeps detection common enough (~9% of launches) for
    // tight MC statistics on the five-layer head.
    let detector = Detector::ring(8.0, 2.0);
    let (archive, _) = record(tissue.clone(), detector);

    for (fa, fs) in [(1.1, 1.0), (0.9, 1.0)] {
        let report = archive
            .evaluate(&perturbed_query(&archive.base, fa, fs))
            .expect("perturbed query in range");
        let fresh = fresh_layered(&tissue, detector, fa, fs);
        assert_weight_aggregates(&report, &fresh.tally, fa, fs, 0.05);
        // The head's white matter is semi-infinite, so its detected-path
        // population extends past the roulette horizon; the unweighted
        // shares are only reweight-reachable when μa goes *up* (see the
        // module docs).
        if fa > 1.0 {
            assert_partial_path_shares(&report, &fresh.tally, fa, fs, 0.10);
        }
        // Absorption perturbations barely move the path measure: the
        // sample stays efficient.
        assert!(
            report.ess > 0.9 * report.detected_entries as f64,
            "ess collapsed on a near perturbation: {} of {}",
            report.ess,
            report.detected_entries
        );
    }
}

#[test]
fn moderate_absorption_perturbations_match_fresh_runs_on_the_adult_head() {
    let tissue = adult_head(AdultHeadConfig::default());
    let detector = Detector::ring(8.0, 2.0);
    let (archive, _) = record(tissue.clone(), detector);

    // ±30%: the ratio spread is wider, so the tolerance is looser but
    // the estimator must still track the fresh physics.
    for (fa, fs) in [(1.3, 1.0), (0.7, 1.0)] {
        let report = archive
            .evaluate(&perturbed_query(&archive.base, fa, fs))
            .expect("perturbed query in range");
        let fresh = fresh_layered(&tissue, detector, fa, fs);
        assert_weight_aggregates(&report, &fresh.tally, fa, fs, 0.10);
        if fa > 1.0 {
            assert_partial_path_shares(&report, &fresh.tally, fa, fs, 0.10);
        }
        assert!(
            report.ess > 0.4 * report.detected_entries as f64,
            "ess collapsed on a moderate perturbation: {} of {}",
            report.ess,
            report.detected_entries
        );
    }
}

/// The two-layer slab the voxel-equivalence suite uses: bounded at 5 mm,
/// so every detected path is far under the roulette horizon and the
/// unweighted statistics are cleanly λ-reweightable in both directions.
fn bounded_slab() -> LayeredTissue {
    LayeredTissue::stack(
        vec![
            ("top".into(), 2.0, OpticalProperties::new(0.05, 10.0, 0.9, 1.4)),
            ("bottom".into(), 3.0, OpticalProperties::new(0.02, 15.0, 0.9, 1.4)),
        ],
        1.0,
    )
    .unwrap()
}

fn record_voxel_slab() -> (PathArchive, LayeredTissue, Detector) {
    let layered = bounded_slab();
    let detector = Detector::new(2.0, 1.0);
    let voxel = voxelized(&layered, 0.5, 20.0, 5.0).unwrap();
    let mut scenario = Scenario::new(voxel, Source::Delta, detector)
        .with_photons(PHOTONS)
        .with_tasks(8)
        .with_seed(SEED);
    scenario.options.archive = Some(RecordOptions::default());
    let recorded = Sequential.run(&scenario).expect("recording run");
    let archive = recorded.tally.archive.clone().expect("archive attached");
    assert!(recorded.tally.detected > 400, "detected {}", recorded.tally.detected);
    (archive, layered, detector)
}

fn fresh_voxel_slab(layered: &LayeredTissue, detector: Detector, fa: f64, fs: f64) -> RunReport {
    let fresh_voxel = voxelized(&perturbed(layered, fa, fs), 0.5, 20.0, 5.0).unwrap();
    Sequential
        .run(
            &Scenario::new(fresh_voxel, Source::Delta, detector)
                .with_photons(PHOTONS)
                .with_tasks(8)
                .with_seed(SEED),
        )
        .expect("fresh perturbed voxel run")
}

#[test]
fn near_absorption_perturbations_match_fresh_runs_on_a_voxel_slab() {
    // The voxel path: record on a voxelized two-layer slab and validate
    // against fresh voxel runs of the perturbed slab. Both directions of
    // μa are checked here, shares included — the bounded geometry keeps
    // roulette out of play.
    let (archive, layered, detector) = record_voxel_slab();

    for (fa, fs) in [(1.1, 1.0), (0.9, 1.0)] {
        let report = archive
            .evaluate(&perturbed_query(&archive.base, fa, fs))
            .expect("perturbed query in range");
        let fresh = fresh_voxel_slab(&layered, detector, fa, fs);
        assert_weight_aggregates(&report, &fresh.tally, fa, fs, 0.05);
        assert_partial_path_shares(&report, &fresh.tally, fa, fs, 0.12);
        assert!(
            report.ess > 0.9 * report.detected_entries as f64,
            "ess collapsed on a near perturbation: {} of {}",
            report.ess,
            report.detected_entries
        );
    }
}

#[test]
fn scattering_perturbations_are_variance_limited_on_the_slab() {
    // ±10% μs on a thin slab (k̄ ≈ 130 collisions): the weight
    // aggregates still track fresh runs, but at a visibly reduced ESS —
    // the log-ratio variance k̄(ln 1.1)² ≈ 1 costs roughly half the
    // effective sample. The unweighted shares are *not* asserted here:
    // the `(μs′/μs)^k` factor makes their estimator heavy-tailed, and at
    // this ESS the tail is undersampled in any single run.
    let (archive, layered, detector) = record_voxel_slab();

    for (fa, fs) in [(1.0, 1.1), (1.0, 0.9), (1.1, 1.1), (0.9, 0.9)] {
        let report = archive
            .evaluate(&perturbed_query(&archive.base, fa, fs))
            .expect("perturbed query in range");
        let fresh = fresh_voxel_slab(&layered, detector, fa, fs);
        assert_weight_aggregates(&report, &fresh.tally, fa, fs, 0.15);
        let (ess, n) = (report.ess, report.detected_entries as f64);
        assert!(
            ess > 0.25 * n && ess < 0.75 * n,
            "ess at (fa {fa}, fs {fs}) should show partial degradation: {ess:.0} of {n}"
        );
    }
}

#[test]
fn scattering_perturbations_degrade_ess_monotonically_on_the_head() {
    let (archive, _) = record(adult_head(AdultHeadConfig::default()), Detector::ring(8.0, 2.0));
    let ess_at = |fs: f64| {
        archive.evaluate(&perturbed_query(&archive.base, 1.0, fs)).expect("query in range").ess
    };
    let n = archive.evaluate(&perturbed_query(&archive.base, 1.0, 1.0)).unwrap();

    // Identity: every ratio is exactly 1, so ESS equals the sample count.
    assert_eq!(n.ess, n.detected_entries as f64);
    let n = n.detected_entries as f64;

    // Detected photons on the head scatter k̄ ≈ 1900 times, so the ESS
    // fraction falls like exp(−k̄ (ln fs)²): a 1% μs shift is still
    // efficient, 5% loses an order of magnitude, 10% all but collapses.
    let (tiny, small, near) = (ess_at(1.01), ess_at(1.05), ess_at(1.1));
    assert!(tiny > 0.5 * n, "1% mu_s shift should stay efficient: ess {tiny:.0} of {n}");
    assert!(small < 0.2 * n, "5% mu_s shift should lose most of the sample: {small:.0} of {n}");
    assert!(near < 0.02 * n, "10% mu_s shift should collapse the sample: {near:.0} of {n}");
    assert!(
        tiny > small && small > near,
        "ess must degrade with distance: {tiny:.0} > {small:.0} > {near:.0} expected"
    );

    // 3× μs is far outside the recorded path measure: a handful of
    // short-path entries dominate the ratio sum and the effective sample
    // collapses to O(1) — the unambiguous signal to re-trace instead of
    // reweight.
    let far = ess_at(3.0);
    assert!(far < 0.005 * n, "3x mu_s should leave an O(1) sample: ess {far:.1} of {n}");
}
