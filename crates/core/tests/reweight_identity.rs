//! Identity-reweight exactness: replaying an archive at its own recorded
//! (μa, μs) must reproduce the recording run's escape-side tally bit for
//! bit — the archive-mode analogue of the golden-pinning rule in
//! docs/PERFORMANCE.md. Every weight ratio is forced to exactly 1.0 when
//! exponent and base coincide (`ln(μs/μs) ≡ 0.0`, `Δμt ≡ 0.0`,
//! `exp(0.0) ≡ 1.0`), and entries replay in the original accumulation
//! order, so even the float sums must match exactly.

use lumen_core::archive::RecordOptions;
use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::radial::RadialSpec;
use lumen_core::{Detector, OpticalProperties, Reweight, Simulation, SimulationOptions, Source};
use lumen_tissue::presets::{homogeneous_white_matter, voxelized};
use lumen_tissue::LayeredTissue;

const PHOTONS: u64 = 20_000;
const SEED: u64 = 2026;

fn record_options() -> SimulationOptions {
    SimulationOptions {
        archive: Some(RecordOptions::default()),
        reflectance_profile: Some(RadialSpec { nr: 40, r_max: 10.0 }),
        path_histogram: Some((400.0, 80)),
        ..Default::default()
    }
}

fn recording_scenario(tissue: impl Into<lumen_core::Geometry>) -> Scenario {
    Scenario::new(tissue, Source::Delta, Detector::new(2.0, 1.0))
        .with_options(record_options())
        .with_photons(PHOTONS)
        .with_tasks(8)
        .with_seed(SEED)
}

/// Assert that the reweighted tally reproduces every escape-side
/// accumulator of the recording tally exactly — `assert_eq!` on `f64`
/// is bit comparison up to `-0.0 == 0.0`, which cannot arise here since
/// all accumulators are sums of non-negative terms.
fn assert_identity(recorded: &lumen_core::Tally, replayed: &lumen_core::Tally) {
    assert_eq!(replayed.launched, recorded.launched);
    assert_eq!(replayed.specular_weight, recorded.specular_weight);
    assert_eq!(replayed.detected, recorded.detected);
    assert_eq!(replayed.reflected, recorded.reflected);
    assert_eq!(replayed.transmitted, recorded.transmitted);
    assert_eq!(replayed.na_rejected, recorded.na_rejected);
    assert_eq!(replayed.gate_rejected, recorded.gate_rejected);
    assert_eq!(replayed.detected_weight, recorded.detected_weight);
    assert_eq!(replayed.reflected_weight, recorded.reflected_weight);
    assert_eq!(replayed.transmitted_weight, recorded.transmitted_weight);
    assert_eq!(replayed.detected_path_sum, recorded.detected_path_sum);
    assert_eq!(replayed.detected_path_sq_sum, recorded.detected_path_sq_sum);
    assert_eq!(replayed.detected_weight_path_sum, recorded.detected_weight_path_sum);
    assert_eq!(replayed.detected_depth_sum, recorded.detected_depth_sum);
    assert_eq!(replayed.detected_depth_max, recorded.detected_depth_max);
    assert_eq!(replayed.detected_scatter_sum, recorded.detected_scatter_sum);
    assert_eq!(replayed.detected_reached_layer, recorded.detected_reached_layer);
    assert_eq!(replayed.detected_partial_path, recorded.detected_partial_path);
    assert_eq!(replayed.reflectance_r, recorded.reflectance_r);
    assert_eq!(replayed.path_histogram, recorded.path_histogram);
}

#[test]
fn identity_reweight_is_bit_exact_on_a_layered_model() {
    let scenario = recording_scenario(homogeneous_white_matter());
    let recorded = Sequential.run(&scenario).expect("recording run");
    assert!(recorded.tally.detected > 50, "detected {}", recorded.tally.detected);
    let archive = recorded.tally.archive.clone().expect("archive attached");

    // Same tissue (= same properties), archive recording turned off: the
    // query scenario asks the reweighter for exactly the recorded state.
    let mut query = scenario.clone();
    query.options.archive = None;
    let replayed = Reweight::new(archive).run(&query).expect("identity reweight");
    assert_identity(&recorded.tally, &replayed.tally);
    assert_eq!(replayed.backend, "reweight");
}

#[test]
fn identity_reweight_is_bit_exact_on_a_voxel_model() {
    let layered = LayeredTissue::stack(
        vec![
            ("top".into(), 2.0, OpticalProperties::new(0.05, 10.0, 0.9, 1.4)),
            ("bottom".into(), 3.0, OpticalProperties::new(0.02, 15.0, 0.9, 1.4)),
        ],
        1.0,
    )
    .unwrap();
    let voxel = voxelized(&layered, 0.5, 20.0, 5.0).unwrap();
    let scenario = recording_scenario(voxel);
    let recorded = Sequential.run(&scenario).expect("recording run");
    assert!(recorded.tally.detected > 50, "detected {}", recorded.tally.detected);
    let archive = recorded.tally.archive.clone().expect("archive attached");

    let mut query = scenario.clone();
    query.options.archive = None;
    let replayed = Reweight::new(archive).run(&query).expect("identity reweight");
    assert_identity(&recorded.tally, &replayed.tally);
}

#[test]
fn identity_ess_equals_the_detected_count_exactly() {
    let scenario = recording_scenario(homogeneous_white_matter());
    let recorded = Sequential.run(&scenario).expect("recording run");
    let archive = recorded.tally.archive.clone().expect("archive attached");
    let query: Vec<OpticalProperties> =
        (0..scenario.tissue.region_count()).map(|r| *scenario.tissue.optics(r)).collect();
    let report = archive.evaluate(&query).expect("identity query");
    assert_eq!(report.ess, recorded.tally.detected as f64);
    assert_eq!(report.sum_ratio, recorded.tally.detected as f64);
    assert_eq!(report.detected_entries, recorded.tally.detected);
}

#[test]
fn detected_only_archives_replay_the_detected_scalars_bit_exactly() {
    let mut options = record_options();
    options.archive = Some(RecordOptions { detected_only: true });
    let scenario =
        Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
            .with_options(options)
            .with_photons(PHOTONS)
            .with_tasks(8)
            .with_seed(SEED);
    let recorded = Sequential.run(&scenario).expect("recording run");
    let archive = recorded.tally.archive.clone().expect("archive attached");
    assert_eq!(archive.len() as u64, recorded.tally.detected, "detected entries only");

    let query: Vec<OpticalProperties> =
        (0..scenario.tissue.region_count()).map(|r| *scenario.tissue.optics(r)).collect();
    let report = archive.evaluate(&query).expect("identity query");
    assert_eq!(report.tally.detected, recorded.tally.detected);
    assert_eq!(report.tally.detected_weight, recorded.tally.detected_weight);
    assert_eq!(report.tally.detected_path_sum, recorded.tally.detected_path_sum);
    assert_eq!(report.tally.detected_weight_path_sum, recorded.tally.detected_weight_path_sum);
    // Escape-side aggregates of *undetected* packets are absent by design.
    assert_eq!(report.tally.reflected, 0);
}

#[test]
fn classical_mode_rejects_archive_recording() {
    let options = SimulationOptions {
        archive: Some(RecordOptions::default()),
        boundary_mode: lumen_core::BoundaryMode::Classical,
        ..Default::default()
    };
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(2.0, 1.0))
        .with_options(options);
    let err = sim.validate().expect_err("classical + archive must be rejected");
    assert!(err.to_string().contains("archive"), "{err}");
}
