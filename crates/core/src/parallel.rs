//! Legacy shared-memory parallel driver (superseded by [`crate::engine`]).
//!
//! This module now holds the batch-splitting arithmetic shared by every
//! backend ([`batch_sizes`]) plus thin deprecated shims over the unified
//! engine API: [`run_parallel`] is exactly `engine::Rayon` run on an
//! `engine::Scenario`. New code should build a [`crate::engine::Scenario`]
//! and pick a [`crate::engine::Backend`]; the full multi-process protocol —
//! task queues, heterogeneous workers, failure handling — lives in
//! `lumen-cluster`.

use crate::engine::{Backend, Rayon, Scenario};
use crate::results::SimulationResult;
use crate::sim::Simulation;
use serde::{Deserialize, Serialize};

/// Parallel execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Experiment seed; together with the task index it fixes every draw.
    pub seed: u64,
    /// Number of batches the photon budget is split into. Results depend
    /// on `(seed, tasks)` but *not* on how many threads execute them.
    pub tasks: u64,
}

impl ParallelConfig {
    /// A sensible default: enough tasks to load-balance but few enough that
    /// merge cost is negligible.
    pub fn new(seed: u64) -> Self {
        Self { seed, tasks: 64 }
    }

    /// Override the task count.
    pub fn with_tasks(mut self, tasks: u64) -> Self {
        self.tasks = tasks.max(1);
        self
    }
}

/// Split `total` photons into `tasks` near-equal batch sizes.
pub fn batch_sizes(total: u64, tasks: u64) -> Vec<u64> {
    let tasks = tasks.max(1);
    let base = total / tasks;
    let extra = total % tasks;
    (0..tasks).map(|i| base + u64::from(i < extra)).filter(|&n| n > 0).collect()
}

/// Run `n` photons through `sim` in parallel on the global rayon pool.
///
/// Deterministic: identical `(sim, n, config)` give identical results on
/// any machine and any thread count.
///
/// Deprecated shim: equivalent to running an [`engine::Scenario`] with the
/// same `(seed, tasks)` on the [`engine::Rayon`] backend —
///
/// ```
/// use lumen_core::engine::{Backend, Rayon, Scenario};
/// use lumen_core::{Detector, Source};
/// use lumen_tissue::presets::semi_infinite_phantom;
///
/// let scenario = Scenario::new(
///     semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
///     Source::Delta,
///     Detector::new(2.0, 0.5),
/// )
/// .with_photons(4_000)
/// .with_tasks(8)
/// .with_seed(7);
/// let a = Rayon::default().run(&scenario).unwrap();
/// let b = Rayon::default().run(&scenario).unwrap();
/// assert_eq!(a.result.tally, b.result.tally); // bit-identical
/// ```
///
/// [`engine::Scenario`]: crate::engine::Scenario
/// [`engine::Rayon`]: crate::engine::Rayon
#[deprecated(
    since = "0.1.0",
    note = "build an `engine::Scenario` and run it on the `engine::Rayon` backend"
)]
pub fn run_parallel(sim: &Simulation, n: u64, config: ParallelConfig) -> SimulationResult {
    let scenario = Scenario::from_simulation(sim, n, config.seed).with_tasks(config.tasks);
    Rayon::default().run(&scenario).expect("invalid simulation configuration").result
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until they are removed
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::source::Source;
    use lumen_tissue::presets::semi_infinite_phantom;

    fn sim() -> Simulation {
        Simulation::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    #[test]
    fn batch_sizes_sum_to_total() {
        for (total, tasks) in [(100u64, 7u64), (5, 10), (0, 3), (64, 64), (1_000_003, 17)] {
            let sizes = batch_sizes(total, tasks);
            assert_eq!(sizes.iter().sum::<u64>(), total, "{total}/{tasks}");
            // Near-equal: max-min <= 1 among non-filtered batches.
            if let (Some(&mx), Some(&mn)) = (sizes.iter().max(), sizes.iter().min()) {
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn parallel_matches_itself_across_thread_counts() {
        let s = sim();
        let cfg = ParallelConfig { seed: 5, tasks: 8 };
        let a = run_parallel(&s, 4000, cfg);
        // Re-run on a 2-thread local pool: same tasks, different schedule.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let b = pool.install(|| run_parallel(&s, 4000, cfg));
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn single_task_parallel_equals_sequential() {
        let s = sim();
        let seq = s.run(3000, 9);
        let par = run_parallel(&s, 3000, ParallelConfig { seed: 9, tasks: 1 });
        assert_eq!(seq.tally, par.tally);
    }

    #[test]
    fn task_split_preserves_statistics() {
        // Different task counts give different draws but the same physics;
        // detected weight per photon must agree within MC error.
        let s = sim();
        let n = 40_000;
        let a = run_parallel(&s, n, ParallelConfig { seed: 3, tasks: 4 });
        let b = run_parallel(&s, n, ParallelConfig { seed: 3, tasks: 32 });
        assert_eq!(a.launched(), n);
        assert_eq!(b.launched(), n);
        let ra = a.diffuse_reflectance();
        let rb = b.diffuse_reflectance();
        assert!((ra - rb).abs() / ra < 0.05, "{ra} vs {rb}");
    }

    #[test]
    fn launched_total_is_exact() {
        let s = sim();
        let r = run_parallel(&s, 12_345, ParallelConfig { seed: 1, tasks: 7 });
        assert_eq!(r.launched(), 12_345);
    }

    #[test]
    fn path_recording_respects_cap_in_parallel() {
        let mut s = sim();
        s.options.record_paths = 3;
        let r = run_parallel(&s, 30_000, ParallelConfig { seed: 2, tasks: 8 });
        assert!(r.sample_paths.len() <= 3);
    }
}
