//! Accumulation of simulation results.
//!
//! Each worker owns a private [`Tally`] and tallies are merged after the
//! fact — no shared-memory synchronisation on the photon hot path. This is
//! the design decision that gives the near-linear speedup of the paper's
//! Fig 2 (the only sequential work is O(tally size) merging at the end).
//!
//! The paper's "user defined granularity of results" is [`GridSpec`]: the
//! volume of interest is divided into `nx × ny × nz` voxels (the paper's
//! Fig 3 uses 50³) and detected-photon trajectories deposit visit weight
//! into a [`VisitGrid`].

use crate::error::ConfigError;
use crate::radial::{CylinderGrid, RadialProfile, RadialSpec};
use lumen_photon::{Fate, Vec3};
use serde::{Deserialize, Serialize};

/// Voxelisation of the volume of interest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Voxel counts along x, y, z.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Lower corner of the gridded volume (mm).
    pub min: Vec3,
    /// Upper corner of the gridded volume (mm).
    pub max: Vec3,
}

impl GridSpec {
    /// Cubic grid of `n³` voxels over the given corners — the paper's
    /// "granularity of 50³" is `GridSpec::cubic(50, ..)`.
    pub fn cubic(n: usize, min: Vec3, max: Vec3) -> Self {
        Self { nx: n, ny: n, nz: n, min, max }
    }

    /// Validate extents.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            return Err(ConfigError::EmptyGrid);
        }
        if !(self.min.x < self.max.x && self.min.y < self.max.y && self.min.z < self.max.z) {
            return Err(ConfigError::DegenerateGrid { min: self.min, max: self.max });
        }
        Ok(())
    }

    /// Total voxel count.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid has no voxels (impossible after validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Voxel edge lengths (mm).
    pub fn voxel_size(&self) -> Vec3 {
        Vec3::new(
            (self.max.x - self.min.x) / self.nx as f64,
            (self.max.y - self.min.y) / self.ny as f64,
            (self.max.z - self.min.z) / self.nz as f64,
        )
    }

    /// Inverse voxel edge lengths (mm⁻¹) — precompute once and pass to
    /// [`Self::index_with_inv`] when indexing in a loop, as
    /// [`VisitGrid::deposit`] does; the three divisions per point become
    /// three multiplications.
    #[inline]
    pub fn inv_voxel_size(&self) -> Vec3 {
        let vs = self.voxel_size();
        Vec3::new(1.0 / vs.x, 1.0 / vs.y, 1.0 / vs.z)
    }

    /// Flattened index of the voxel containing `p`, or `None` outside.
    #[inline]
    pub fn index_of(&self, p: Vec3) -> Option<usize> {
        self.index_with_inv(p, self.inv_voxel_size())
    }

    /// [`Self::index_of`] with the inverse voxel size already computed.
    ///
    /// Branch-lean: one sign check and one bounds check cover all three
    /// axes. A point below `min` on some axis gives a negative fractional
    /// coordinate (exactly: subtraction of nearby doubles is exact by
    /// Sterbenz, so the sign cannot be lost to rounding), and a point at or
    /// beyond `max` truncates to an index `>= n`.
    ///
    /// Caveat, stated rather than hidden: multiplying by `1/vs` is not
    /// universally bit-identical to dividing by `vs` — a sample within an
    /// ulp of a bin edge can land one voxel over relative to the division
    /// form. That is acceptable *here* and only here: bin assignment is
    /// pure output discretization (nothing feeds back into photon
    /// dynamics), the deposit-sampling scheme's own half-voxel spacing
    /// dwarfs a one-ulp edge ambiguity, and the golden digests pin the
    /// result for every checked scenario. The transport kernel makes the
    /// opposite call for the same reason — see `DerivedOptics::inv_mu_t`,
    /// which exists but is deliberately *not* used by `hop`.
    #[inline]
    pub fn index_with_inv(&self, p: Vec3, inv_vs: Vec3) -> Option<usize> {
        let fx = (p.x - self.min.x) * inv_vs.x;
        let fy = (p.y - self.min.y) * inv_vs.y;
        let fz = (p.z - self.min.z) * inv_vs.z;
        if fx < 0.0 || fy < 0.0 || fz < 0.0 {
            return None;
        }
        let (ix, iy, iz) = (fx as usize, fy as usize, fz as usize);
        if ix >= self.nx || iy >= self.ny || iz >= self.nz {
            return None;
        }
        Some((iz * self.ny + iy) * self.nx + ix)
    }

    /// Inverse of [`Self::index_of`]: voxel centre coordinates.
    pub fn centre_of(&self, idx: usize) -> Vec3 {
        let ix = idx % self.nx;
        let iy = (idx / self.nx) % self.ny;
        let iz = idx / (self.nx * self.ny);
        let vs = self.voxel_size();
        Vec3::new(
            self.min.x + (ix as f64 + 0.5) * vs.x,
            self.min.y + (iy as f64 + 0.5) * vs.y,
            self.min.z + (iz as f64 + 0.5) * vs.z,
        )
    }
}

/// Dense voxel accumulator for path-visit weight (or absorbed weight).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitGrid {
    pub spec: GridSpec,
    data: Vec<f64>,
    /// Cached `spec.inv_voxel_size()`: deposits are the engine's innermost
    /// tally write, and recomputing three divisions per sample dominated
    /// `deposit_segment`. Derived from `spec` at construction; `spec` is
    /// never mutated afterwards.
    inv_vs: Vec3,
    /// Cached half of the smallest voxel edge — `deposit_segment`'s sample
    /// spacing.
    half_min_edge: f64,
}

impl VisitGrid {
    /// An empty grid over `spec`.
    pub fn new(spec: GridSpec) -> Self {
        spec.validate().expect("invalid grid spec");
        let vs = spec.voxel_size();
        Self {
            spec,
            data: vec![0.0; spec.len()],
            inv_vs: spec.inv_voxel_size(),
            half_min_edge: 0.5 * vs.x.min(vs.y).min(vs.z),
        }
    }

    /// Deposit `w` at point `p` (ignored outside the grid).
    #[inline]
    pub fn deposit(&mut self, p: Vec3, w: f64) {
        if let Some(i) = self.spec.index_with_inv(p, self.inv_vs) {
            self.data[i] += w;
        }
    }

    /// Deposit `w` along the segment `a → b`, sampling at half-voxel
    /// spacing so thin diagonal segments still mark every voxel they pass
    /// through. Weight is split evenly across the samples so a segment
    /// contributes `w` in total.
    pub fn deposit_segment(&mut self, a: Vec3, b: Vec3, w: f64) {
        let step = self.half_min_edge;
        let length = a.distance(b);
        if length <= step {
            self.deposit(b, w);
            return;
        }
        let n = (length / step).ceil() as usize;
        let dw = w / (n as f64 + 1.0);
        let dir = (b - a) / length;
        for i in 0..=n {
            let t = (i as f64 / n as f64) * length;
            self.deposit(a + dir * t, dw);
        }
    }

    /// Raw voxel values, z-major as defined by [`GridSpec::index_of`].
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Value of voxel `idx`.
    pub fn value(&self, idx: usize) -> f64 {
        self.data[idx]
    }

    /// Sum of all voxel values.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest voxel value.
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Merge another grid's weight into this one (specs must match).
    pub fn merge(&mut self, other: &VisitGrid) {
        assert_eq!(self.spec, other.spec, "cannot merge grids with different specs");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale every voxel (e.g. 1/N normalisation).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }
}

/// Fixed-bin histogram of detected-photon pathlengths (mm).
///
/// Lives in the tally (not the analysis crate) so workers can accumulate
/// and merge it like every other tally; `lumen-analysis` converts it into
/// a temporal point-spread function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathHistogram {
    /// Upper edge of the binned range (mm); lower edge is 0.
    pub max_mm: f64,
    /// Per-bin detected-photon counts.
    pub counts: Vec<u64>,
    /// Detections with pathlength >= max_mm.
    pub overflow: u64,
}

impl PathHistogram {
    /// Empty histogram with `bins` uniform bins over `[0, max_mm)`.
    pub fn new(max_mm: f64, bins: usize) -> Self {
        assert!(max_mm > 0.0 && bins > 0, "invalid path histogram spec");
        Self { max_mm, counts: vec![0; bins], overflow: 0 }
    }

    /// Record one detected pathlength.
    #[inline]
    pub fn record(&mut self, pathlength_mm: f64) {
        if pathlength_mm >= self.max_mm {
            self.overflow += 1;
        } else {
            let n_bins = self.counts.len();
            let bin = (pathlength_mm / self.max_mm * n_bins as f64) as usize;
            self.counts[bin.min(n_bins - 1)] += 1;
        }
    }

    /// Total recorded detections.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Centre of bin `i` (mm).
    pub fn bin_centre(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.max_mm / self.counts.len() as f64
    }

    /// Merge a worker histogram (binning must match).
    pub fn merge(&mut self, other: &PathHistogram) {
        assert_eq!(self.max_mm, other.max_mm, "path histogram range mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "path histogram bin mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

/// Everything a simulation accumulates.
///
/// Weights are normalised per launched photon when converted into a
/// [`crate::results::SimulationResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tally {
    /// Photons launched.
    pub launched: u64,
    /// Photon count by fate.
    pub detected: u64,
    pub reflected: u64,
    pub transmitted: u64,
    pub roulette_killed: u64,
    pub fully_absorbed: u64,
    pub expired: u64,
    /// Photons that hit the aperture but failed the pathlength gate.
    pub gate_rejected: u64,
    /// Photons that hit the aperture but exited outside the acceptance
    /// cone (numerical aperture).
    pub na_rejected: u64,

    /// Weight sums (per launched photon when normalised).
    pub specular_weight: f64,
    pub detected_weight: f64,
    pub reflected_weight: f64,
    pub transmitted_weight: f64,

    /// Absorbed weight per tissue layer.
    pub absorbed_by_layer: Vec<f64>,

    /// Pathlength moments over *detected* photons (for the differential
    /// pathlength / DPF statistics the paper motivates).
    pub detected_path_sum: f64,
    pub detected_path_sq_sum: f64,
    /// Weighted pathlength sums (weight-averaged DPF).
    pub detected_weight_path_sum: f64,

    /// Penetration-depth moments over detected photons.
    pub detected_depth_sum: f64,
    pub detected_depth_max: f64,
    /// Count of detected photons whose walk reached each layer.
    pub detected_reached_layer: Vec<u64>,
    /// Sum over detected photons of the pathlength accrued inside each
    /// layer (mm) — the *partial pathlengths* that quantify which layer
    /// dominates the detected signal (Beer–Lambert sensitivity).
    pub detected_partial_path: Vec<f64>,

    /// Scatter-count total over detected photons.
    pub detected_scatter_sum: u64,

    /// Optional visit grid over detected photon trajectories (Fig 3/4).
    pub path_grid: Option<VisitGrid>,
    /// Optional absorption grid (all photons deposit absorbed weight).
    pub absorption_grid: Option<VisitGrid>,
    /// Optional detected-pathlength histogram (for TPSFs / gating design).
    pub path_histogram: Option<PathHistogram>,
    /// Optional radial diffuse-reflectance profile R(r) (MCML-style).
    pub reflectance_r: Option<RadialProfile>,
    /// Optional cylindrical absorption grid A(r, z) (MCML-style).
    pub absorption_rz: Option<CylinderGrid>,
    /// Optional path archive recording escape events for perturbation-MC
    /// reweighting (see [`crate::archive`]).
    pub archive: Option<crate::archive::PathArchive>,
}

impl Tally {
    /// Empty tally for a model with `n_layers` layers; grids are attached
    /// according to the simulation options.
    pub fn new(
        n_layers: usize,
        path_grid: Option<GridSpec>,
        absorption_grid: Option<GridSpec>,
    ) -> Self {
        Self {
            launched: 0,
            detected: 0,
            reflected: 0,
            transmitted: 0,
            roulette_killed: 0,
            fully_absorbed: 0,
            expired: 0,
            gate_rejected: 0,
            na_rejected: 0,
            specular_weight: 0.0,
            detected_weight: 0.0,
            reflected_weight: 0.0,
            transmitted_weight: 0.0,
            absorbed_by_layer: vec![0.0; n_layers],
            detected_path_sum: 0.0,
            detected_path_sq_sum: 0.0,
            detected_weight_path_sum: 0.0,
            detected_depth_sum: 0.0,
            detected_depth_max: 0.0,
            detected_reached_layer: vec![0; n_layers],
            detected_partial_path: vec![0.0; n_layers],
            detected_scatter_sum: 0,
            path_grid: path_grid.map(VisitGrid::new),
            absorption_grid: absorption_grid.map(VisitGrid::new),
            path_histogram: None,
            reflectance_r: None,
            absorption_rz: None,
            archive: None,
        }
    }

    /// Attach a detected-pathlength histogram.
    pub fn with_path_histogram(mut self, max_mm: f64, bins: usize) -> Self {
        self.path_histogram = Some(PathHistogram::new(max_mm, bins));
        self
    }

    /// Attach an MCML-style radial reflectance profile.
    pub fn with_reflectance_profile(mut self, spec: RadialSpec) -> Self {
        self.reflectance_r = Some(RadialProfile::new(spec));
        self
    }

    /// Attach an MCML-style cylindrical absorption grid.
    pub fn with_absorption_rz(mut self, radial: RadialSpec, nz: usize, z_max: f64) -> Self {
        self.absorption_rz = Some(CylinderGrid::new(radial, nz, z_max));
        self
    }

    /// Attach a path archive for perturbation-MC recording.
    pub fn with_archive(mut self, archive: crate::archive::PathArchive) -> Self {
        self.archive = Some(archive);
        self
    }

    /// Record a terminal fate's counters (weight bookkeeping is done by the
    /// engine as it learns the exit weight).
    pub fn count_fate(&mut self, fate: Fate) {
        match fate {
            Fate::Detected => self.detected += 1,
            Fate::ReflectedOut => self.reflected += 1,
            Fate::Transmitted => self.transmitted += 1,
            Fate::RouletteKilled => self.roulette_killed += 1,
            Fate::Absorbed => self.fully_absorbed += 1,
            Fate::Expired => self.expired += 1,
            Fate::Alive => unreachable!("cannot tally a live photon"),
        }
    }

    /// Total absorbed weight across layers.
    pub fn total_absorbed(&self) -> f64 {
        self.absorbed_by_layer.iter().sum()
    }

    /// Merge a worker tally into this aggregate — the DataManager's
    /// "processes the returned results" step.
    pub fn merge(&mut self, other: &Tally) {
        assert_eq!(
            self.absorbed_by_layer.len(),
            other.absorbed_by_layer.len(),
            "layer count mismatch in tally merge"
        );
        self.launched += other.launched;
        self.detected += other.detected;
        self.reflected += other.reflected;
        self.transmitted += other.transmitted;
        self.roulette_killed += other.roulette_killed;
        self.fully_absorbed += other.fully_absorbed;
        self.expired += other.expired;
        self.gate_rejected += other.gate_rejected;
        self.na_rejected += other.na_rejected;
        self.specular_weight += other.specular_weight;
        self.detected_weight += other.detected_weight;
        self.reflected_weight += other.reflected_weight;
        self.transmitted_weight += other.transmitted_weight;
        for (a, b) in self.absorbed_by_layer.iter_mut().zip(&other.absorbed_by_layer) {
            *a += b;
        }
        self.detected_path_sum += other.detected_path_sum;
        self.detected_path_sq_sum += other.detected_path_sq_sum;
        self.detected_weight_path_sum += other.detected_weight_path_sum;
        self.detected_depth_sum += other.detected_depth_sum;
        self.detected_depth_max = self.detected_depth_max.max(other.detected_depth_max);
        for (a, b) in self.detected_reached_layer.iter_mut().zip(&other.detected_reached_layer) {
            *a += b;
        }
        for (a, b) in self.detected_partial_path.iter_mut().zip(&other.detected_partial_path) {
            *a += b;
        }
        self.detected_scatter_sum += other.detected_scatter_sum;
        match (&mut self.path_grid, &other.path_grid) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("path grid presence mismatch in tally merge"),
        }
        match (&mut self.absorption_grid, &other.absorption_grid) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("absorption grid presence mismatch in tally merge"),
        }
        match (&mut self.path_histogram, &other.path_histogram) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("path histogram presence mismatch in tally merge"),
        }
        match (&mut self.reflectance_r, &other.reflectance_r) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("reflectance profile presence mismatch in tally merge"),
        }
        match (&mut self.absorption_rz, &other.absorption_rz) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("cylindrical grid presence mismatch in tally merge"),
        }
        match (&mut self.archive, &other.archive) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("path archive presence mismatch in tally merge"),
        }
    }

    /// Conservation check: specular + detected + reflected + transmitted +
    /// absorbed should account for all launched weight, up to the weight
    /// destroyed by roulette (which is unbiased but not per-photon exact)
    /// and expired photons. Returns the accounted fraction.
    pub fn accounted_weight_fraction(&self) -> f64 {
        if self.launched == 0 {
            return 1.0;
        }
        (self.specular_weight
            + self.detected_weight
            + self.reflected_weight
            + self.transmitted_weight
            + self.total_absorbed())
            / self.launched as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> GridSpec {
        GridSpec::cubic(10, Vec3::new(-5.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 10.0))
    }

    #[test]
    fn grid_indexing_round_trip() {
        let s = spec();
        for idx in [0usize, 1, 99, 500, 999] {
            let c = s.centre_of(idx);
            assert_eq!(s.index_of(c), Some(idx), "idx {idx}, centre {c:?}");
        }
    }

    #[test]
    fn grid_rejects_outside_points() {
        let s = spec();
        assert_eq!(s.index_of(Vec3::new(-5.1, 0.0, 5.0)), None);
        assert_eq!(s.index_of(Vec3::new(0.0, 0.0, -0.1)), None);
        assert_eq!(s.index_of(Vec3::new(0.0, 0.0, 10.1)), None);
        // Lower corner is inside, upper corner is outside (half-open).
        assert!(s.index_of(Vec3::new(-5.0, -5.0, 0.0)).is_some());
        assert!(s.index_of(Vec3::new(5.0, 5.0, 10.0)).is_none());
    }

    #[test]
    fn grid_spec_validation() {
        assert!(spec().validate().is_ok());
        let bad = GridSpec::cubic(0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(bad.validate(), Err(ConfigError::EmptyGrid));
        let degenerate = GridSpec::cubic(10, Vec3::ZERO, Vec3::ZERO);
        assert_eq!(
            degenerate.validate(),
            Err(ConfigError::DegenerateGrid { min: Vec3::ZERO, max: Vec3::ZERO })
        );
    }

    #[test]
    fn deposit_accumulates() {
        let mut g = VisitGrid::new(spec());
        let p = Vec3::new(0.0, 0.0, 5.0);
        g.deposit(p, 1.0);
        g.deposit(p, 0.5);
        let idx = g.spec.index_of(p).unwrap();
        assert!((g.value(idx) - 1.5).abs() < 1e-12);
        assert!((g.total() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn deposit_outside_is_ignored() {
        let mut g = VisitGrid::new(spec());
        g.deposit(Vec3::new(100.0, 0.0, 0.0), 1.0);
        assert_eq!(g.total(), 0.0);
    }

    #[test]
    fn segment_deposit_conserves_weight_inside() {
        let mut g = VisitGrid::new(spec());
        g.deposit_segment(Vec3::new(-4.0, 0.0, 1.0), Vec3::new(4.0, 0.0, 9.0), 2.0);
        assert!((g.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn segment_deposit_marks_multiple_voxels() {
        let mut g = VisitGrid::new(spec());
        g.deposit_segment(Vec3::new(-4.5, 0.0, 0.5), Vec3::new(4.5, 0.0, 0.5), 1.0);
        let occupied = g.data().iter().filter(|&&v| v > 0.0).count();
        assert!(occupied >= 9, "only {occupied} voxels hit by a 9 mm segment");
    }

    #[test]
    fn short_segment_deposits_at_endpoint() {
        let mut g = VisitGrid::new(spec());
        let b = Vec3::new(0.1, 0.0, 5.0);
        g.deposit_segment(Vec3::new(0.0, 0.0, 5.0), b, 1.0);
        assert!((g.value(g.spec.index_of(b).unwrap()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tally_merge_sums_everything() {
        let mut a = Tally::new(2, Some(spec()), None);
        let mut b = Tally::new(2, Some(spec()), None);
        a.launched = 10;
        b.launched = 5;
        a.detected = 2;
        b.detected = 1;
        a.absorbed_by_layer[0] = 1.0;
        b.absorbed_by_layer[0] = 0.5;
        b.absorbed_by_layer[1] = 0.25;
        a.path_grid.as_mut().unwrap().deposit(Vec3::new(0.0, 0.0, 5.0), 1.0);
        b.path_grid.as_mut().unwrap().deposit(Vec3::new(0.0, 0.0, 5.0), 2.0);
        a.merge(&b);
        assert_eq!(a.launched, 15);
        assert_eq!(a.detected, 3);
        assert!((a.absorbed_by_layer[0] - 1.5).abs() < 1e-12);
        assert!((a.absorbed_by_layer[1] - 0.25).abs() < 1e-12);
        assert!((a.path_grid.as_ref().unwrap().total() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn tally_merge_rejects_layer_mismatch() {
        let mut a = Tally::new(2, None, None);
        let b = Tally::new(3, None, None);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different specs")]
    fn grid_merge_rejects_spec_mismatch() {
        let mut a = VisitGrid::new(spec());
        let b = VisitGrid::new(GridSpec::cubic(5, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)));
        a.merge(&b);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut g = VisitGrid::new(spec());
        g.deposit(Vec3::new(0.0, 0.0, 5.0), 4.0);
        g.scale(0.25);
        assert!((g.total() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn index_of_within_bounds_is_valid(
            x in -5.0f64..5.0, y in -5.0f64..5.0, z in 0.0f64..10.0
        ) {
            let s = spec();
            let idx = s.index_of(Vec3::new(x, y, z));
            prop_assert!(idx.is_some());
            prop_assert!(idx.unwrap() < s.len());
        }

        #[test]
        fn merge_is_commutative_on_counts(
            la in 0u64..1000, lb in 0u64..1000, da in 0u64..100, db in 0u64..100
        ) {
            let mut a1 = Tally::new(1, None, None);
            let mut b1 = Tally::new(1, None, None);
            a1.launched = la; a1.detected = da;
            b1.launched = lb; b1.detected = db;
            let mut ab = a1.clone(); ab.merge(&b1);
            let mut ba = b1.clone(); ba.merge(&a1);
            prop_assert_eq!(ab.launched, ba.launched);
            prop_assert_eq!(ab.detected, ba.detected);
        }
    }
}
