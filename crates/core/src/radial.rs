//! Cylindrical (r, z) tallies — the classic MCML outputs.
//!
//! The layered problem is azimuthally symmetric about the source axis, so
//! the natural scoring grids are radial:
//!
//! * [`RadialProfile`] — diffuse reflectance `R(r)` (weight escaping the
//!   top surface per unit area, binned by exit radius). This is the
//!   quantity the diffusion approximation predicts analytically, which
//!   gives us an independent check of the whole transport engine
//!   (see `lumen-analysis`'s `diffusion` module).
//! * [`CylinderGrid`] — absorbed weight `A(r, z)`, the rotational
//!   equivalent of the Cartesian absorption grid.
//!
//! Bins are uniform in `r`; values can be read raw (weight per bin) or
//! normalised per unit area (dividing by the annular bin area), which is
//! what `R(r)` means physically.

use serde::{Deserialize, Serialize};

/// Uniform radial binning over `[0, r_max)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadialSpec {
    /// Number of radial bins.
    pub nr: usize,
    /// Outer radius (mm); exits beyond it go to the overflow bin.
    pub r_max: f64,
}

impl RadialSpec {
    /// Validate.
    pub fn validate(&self) -> Result<(), String> {
        if self.nr == 0 {
            return Err("radial profile needs at least one bin".into());
        }
        if !(self.r_max > 0.0 && self.r_max.is_finite()) {
            return Err(format!("r_max must be finite and positive, got {}", self.r_max));
        }
        Ok(())
    }

    /// Bin width (mm).
    #[inline]
    pub fn dr(&self) -> f64 {
        self.r_max / self.nr as f64
    }

    /// Bin index for radius `r`, or `None` beyond `r_max`.
    #[inline]
    pub fn bin_of(&self, r: f64) -> Option<usize> {
        if r < 0.0 || r >= self.r_max {
            return None;
        }
        Some(((r / self.r_max) * self.nr as f64) as usize)
    }

    /// Centre radius of bin `i`.
    #[inline]
    pub fn r_of(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.dr()
    }

    /// Area of annular bin `i` (mm²).
    #[inline]
    pub fn bin_area(&self, i: usize) -> f64 {
        let dr = self.dr();
        let r0 = i as f64 * dr;
        let r1 = r0 + dr;
        std::f64::consts::PI * (r1 * r1 - r0 * r0)
    }
}

/// Radially binned surface weight (diffuse reflectance or transmittance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadialProfile {
    pub spec: RadialSpec,
    /// Raw escaped weight per bin.
    weight: Vec<f64>,
    /// Weight escaping beyond `r_max`.
    pub overflow: f64,
}

impl RadialProfile {
    /// Empty profile.
    pub fn new(spec: RadialSpec) -> Self {
        spec.validate().expect("invalid radial spec");
        Self { spec, weight: vec![0.0; spec.nr], overflow: 0.0 }
    }

    /// Record weight `w` escaping at radius `r`.
    #[inline]
    pub fn record(&mut self, r: f64, w: f64) {
        match self.spec.bin_of(r) {
            Some(i) => self.weight[i] += w,
            None => self.overflow += w,
        }
    }

    /// Raw per-bin weights.
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// Total recorded weight (including overflow).
    pub fn total(&self) -> f64 {
        self.weight.iter().sum::<f64>() + self.overflow
    }

    /// `R(r)` per launched photon per mm²: `weight[i] / (n_launched ·
    /// area_i)`. This is the quantity diffusion theory predicts.
    pub fn per_area(&self, n_launched: u64) -> Vec<f64> {
        assert!(n_launched > 0, "normalisation needs launched photons");
        (0..self.spec.nr)
            .map(|i| self.weight[i] / (n_launched as f64 * self.spec.bin_area(i)))
            .collect()
    }

    /// Merge a worker profile.
    pub fn merge(&mut self, other: &RadialProfile) {
        assert_eq!(self.spec, other.spec, "radial spec mismatch in merge");
        for (a, b) in self.weight.iter_mut().zip(&other.weight) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

/// Cylindrical (r, z) accumulation grid for absorbed weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CylinderGrid {
    pub radial: RadialSpec,
    /// Number of depth bins over `[0, z_max)`.
    pub nz: usize,
    /// Maximum depth (mm).
    pub z_max: f64,
    /// Row-major `[iz][ir]` weights.
    data: Vec<f64>,
    /// Weight deposited outside the grid.
    pub overflow: f64,
}

impl CylinderGrid {
    /// Empty grid.
    pub fn new(radial: RadialSpec, nz: usize, z_max: f64) -> Self {
        radial.validate().expect("invalid radial spec");
        assert!(nz > 0 && z_max > 0.0, "invalid depth binning");
        Self { radial, nz, z_max, data: vec![0.0; radial.nr * nz], overflow: 0.0 }
    }

    /// Deposit weight `w` at radius `r`, depth `z`.
    #[inline]
    pub fn deposit(&mut self, r: f64, z: f64, w: f64) {
        let iz = if z >= 0.0 && z < self.z_max {
            (z / self.z_max * self.nz as f64) as usize
        } else {
            self.overflow += w;
            return;
        };
        match self.radial.bin_of(r) {
            Some(ir) => self.data[iz * self.radial.nr + ir] += w,
            None => self.overflow += w,
        }
    }

    /// Value at `(ir, iz)`.
    #[inline]
    pub fn at(&self, ir: usize, iz: usize) -> f64 {
        self.data[iz * self.radial.nr + ir]
    }

    /// Total deposited weight including overflow.
    pub fn total(&self) -> f64 {
        self.data.iter().sum::<f64>() + self.overflow
    }

    /// Depth profile: total weight per z row.
    pub fn depth_profile(&self) -> Vec<f64> {
        (0..self.nz).map(|iz| (0..self.radial.nr).map(|ir| self.at(ir, iz)).sum()).collect()
    }

    /// Merge a worker grid.
    pub fn merge(&mut self, other: &CylinderGrid) {
        assert_eq!(self.radial, other.radial, "cylinder radial mismatch");
        assert_eq!(self.nz, other.nz, "cylinder nz mismatch");
        assert_eq!(self.z_max, other.z_max, "cylinder z_max mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RadialSpec {
        RadialSpec { nr: 10, r_max: 5.0 }
    }

    #[test]
    fn bin_arithmetic() {
        let s = spec();
        assert_eq!(s.dr(), 0.5);
        assert_eq!(s.bin_of(0.0), Some(0));
        assert_eq!(s.bin_of(0.49), Some(0));
        assert_eq!(s.bin_of(0.5), Some(1));
        assert_eq!(s.bin_of(4.99), Some(9));
        assert_eq!(s.bin_of(5.0), None);
        assert_eq!(s.bin_of(-0.1), None);
        assert!((s.r_of(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn annulus_areas_sum_to_disc() {
        let s = spec();
        let total: f64 = (0..s.nr).map(|i| s.bin_area(i)).sum();
        let disc = std::f64::consts::PI * s.r_max * s.r_max;
        assert!((total - disc).abs() < 1e-9);
    }

    #[test]
    fn profile_records_and_overflows() {
        let mut p = RadialProfile::new(spec());
        p.record(0.2, 1.0);
        p.record(0.2, 0.5);
        p.record(7.0, 2.0);
        assert!((p.weights()[0] - 1.5).abs() < 1e-12);
        assert_eq!(p.overflow, 2.0);
        assert!((p.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn per_area_normalisation() {
        let mut p = RadialProfile::new(spec());
        p.record(0.25, 2.0);
        let per_area = p.per_area(4);
        let expected = 2.0 / (4.0 * p.spec.bin_area(0));
        assert!((per_area[0] - expected).abs() < 1e-12);
        assert!(per_area[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn profile_merge() {
        let mut a = RadialProfile::new(spec());
        let mut b = RadialProfile::new(spec());
        a.record(1.0, 1.0);
        b.record(1.0, 2.0);
        b.record(9.0, 0.5);
        a.merge(&b);
        assert!((a.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spec mismatch")]
    fn profile_merge_rejects_mismatch() {
        let mut a = RadialProfile::new(spec());
        let b = RadialProfile::new(RadialSpec { nr: 5, r_max: 5.0 });
        a.merge(&b);
    }

    #[test]
    fn cylinder_deposits() {
        let mut g = CylinderGrid::new(spec(), 4, 8.0);
        g.deposit(0.3, 1.0, 1.0);
        g.deposit(0.3, 1.5, 0.5);
        g.deposit(0.3, 9.0, 2.0); // below z_max range
        g.deposit(6.0, 1.0, 3.0); // beyond r_max
        assert!((g.at(0, 0) - 1.5).abs() < 1e-12);
        assert_eq!(g.overflow, 5.0);
        assert!((g.total() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn cylinder_depth_profile() {
        let mut g = CylinderGrid::new(spec(), 2, 4.0);
        g.deposit(1.0, 0.5, 1.0);
        g.deposit(2.0, 0.5, 2.0);
        g.deposit(1.0, 3.0, 4.0);
        assert_eq!(g.depth_profile(), vec![3.0, 4.0]);
    }

    #[test]
    fn cylinder_merge() {
        let mut a = CylinderGrid::new(spec(), 2, 4.0);
        let mut b = CylinderGrid::new(spec(), 2, 4.0);
        a.deposit(1.0, 1.0, 1.0);
        b.deposit(1.0, 1.0, 2.0);
        a.merge(&b);
        assert!((a.total() - 3.0).abs() < 1e-12);
    }
}
