//! Typed configuration errors — the engine-side counterpart of
//! `lumen_tissue::GeometryError`.
//!
//! The seed code validated configurations with `Result<_, String>`, which
//! made error paths untestable beyond substring matching and lost the
//! distinction between *which* knob was wrong. [`ConfigError`] names each
//! failure mode with its offending values, and converts into
//! [`EngineError::InvalidConfig`](crate::engine::EngineError) at the
//! engine boundary, so every backend keeps returning one error type.

use lumen_photon::Vec3;
use lumen_tissue::GeometryError;

/// A reason a simulation configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A tally grid has zero voxels along some axis.
    EmptyGrid,
    /// A tally grid's corners do not span a positive volume.
    DegenerateGrid {
        /// Lower corner (mm).
        min: Vec3,
        /// Upper corner (mm).
        max: Vec3,
    },
    /// A gate window violates `0 <= min < max` (NaN bounds included).
    BadGate {
        /// Offending lower edge (mm).
        min_mm: f64,
        /// Offending upper edge (mm).
        max_mm: f64,
    },
    /// A path histogram needs a positive range and at least one bin.
    BadHistogram {
        /// Offending range (mm).
        max_mm: f64,
        /// Offending bin count.
        bins: usize,
    },
    /// An A(r, z) grid needs a positive depth and at least one depth bin.
    BadDepthBinning {
        /// Offending depth bin count.
        nz: usize,
        /// Offending maximum depth (mm).
        z_max: f64,
    },
    /// `max_interactions` must be positive (0 would retire every photon
    /// before its first step).
    ZeroInteractionCap,
    /// A component with its own validator (source, detector, roulette,
    /// radial binning) rejected its parameters.
    Component {
        /// Which component ("source", "detector", ...).
        what: &'static str,
        /// The component's own description of the problem.
        reason: String,
    },
    /// The tissue geometry failed transport-level validation.
    Geometry(GeometryError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyGrid => write!(f, "grid needs at least one voxel per axis"),
            ConfigError::DegenerateGrid { min, max } => {
                write!(f, "degenerate grid extents {min:?}..{max:?}")
            }
            ConfigError::BadGate { min_mm, max_mm } => {
                write!(f, "invalid gate window [{min_mm}, {max_mm}] (need 0 <= min < max)")
            }
            ConfigError::BadHistogram { max_mm, bins } => {
                write!(f, "path histogram needs positive range and bins, got ({max_mm} mm, {bins})")
            }
            ConfigError::BadDepthBinning { nz, z_max } => {
                write!(f, "absorption_rz needs positive depth binning, got ({nz}, {z_max} mm)")
            }
            ConfigError::ZeroInteractionCap => write!(f, "max_interactions must be positive"),
            ConfigError::Component { what, reason } => write!(f, "invalid {what}: {reason}"),
            ConfigError::Geometry(e) => write!(f, "invalid geometry: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_values() {
        let gate = ConfigError::BadGate { min_mm: 5.0, max_mm: 1.0 };
        assert!(gate.to_string().contains("[5, 1]"));
        let hist = ConfigError::BadHistogram { max_mm: -1.0, bins: 0 };
        assert!(hist.to_string().contains("histogram"));
        let comp = ConfigError::Component { what: "detector", reason: "radius 0".into() };
        assert!(comp.to_string().contains("detector"));
        assert!(comp.to_string().contains("radius 0"));
    }

    #[test]
    fn geometry_errors_convert() {
        let geo = GeometryError::Empty("layer");
        let cfg: ConfigError = geo.clone().into();
        assert_eq!(cfg, ConfigError::Geometry(geo));
    }
}
