//! # lumen-core — the Monte Carlo photon-transport engine
//!
//! This crate is the reproduction of the paper's `Algorithm` class: it takes
//! simulation parameters, traces photon packets through a layered tissue
//! model, and accumulates the tallies the paper's experiments need. The
//! per-photon loop in [`sim`] follows the paper's Fig 1 pseudocode:
//!
//! ```text
//! begin
//!   initialise photon
//!   while (photon survived)
//!     move photon
//!     if (changed medium)
//!       if (photon angle > critical angle) internally reflect
//!       else refract
//!     if (photon passed through detector) save path and end
//!     update absorption and photon weight
//!     if (weight too small) survive roulette
//! end
//! ```
//!
//! Features reproduced from the paper's feature list:
//!
//! * sources: delta (laser), Gaussian, uniform footprints ([`source`]);
//! * gated differential pathlengths ([`detector::GateWindow`]);
//! * multiple user-defined layers (via `lumen-tissue`);
//! * refraction and internal reflection, classical or probabilistic
//!   ([`lumen_photon::BoundaryMode`]);
//! * user-defined granularity of results ([`tally::GridSpec`]);
//! * unlimited number of simulations (batching is the cluster's job —
//!   see `lumen-cluster`).
//!
//! The sequential driver is [`Simulation::run`]; the shared-memory parallel
//! driver ([`parallel::run_parallel`]) splits the photon budget into tasks
//! with independent RNG substreams and merges per-worker tallies, which is
//! exactly the DataManager/client decomposition in miniature.

pub mod detector;
pub mod parallel;
pub mod radial;
pub mod results;
pub mod sim;
pub mod source;
pub mod tally;

pub use detector::{Detector, GateWindow};
pub use lumen_photon::{BoundaryMode, OpticalProperties, Photon, Vec3};
pub use lumen_tissue::{LayeredTissue, OpticalProperties as TissueOptics};
pub use parallel::{run_parallel, ParallelConfig};
pub use radial::{CylinderGrid, RadialProfile, RadialSpec};
pub use results::SimulationResult;
pub use sim::{Simulation, SimulationOptions};
pub use source::Source;
pub use tally::{GridSpec, Tally, VisitGrid};
