//! # lumen-core — the Monte Carlo photon-transport engine
//!
//! This crate is the reproduction of the paper's `Algorithm` class: it takes
//! simulation parameters, traces photon packets through a layered tissue
//! model, and accumulates the tallies the paper's experiments need. The
//! per-photon loop in [`sim`] follows the paper's Fig 1 pseudocode:
//!
//! ```text
//! begin
//!   initialise photon
//!   while (photon survived)
//!     move photon
//!     if (changed medium)
//!       if (photon angle > critical angle) internally reflect
//!       else refract
//!     if (photon passed through detector) save path and end
//!     update absorption and photon weight
//!     if (weight too small) survive roulette
//! end
//! ```
//!
//! Features reproduced from the paper's feature list:
//!
//! * sources: delta (laser), Gaussian, uniform footprints ([`source`]);
//! * gated differential pathlengths ([`detector::GateWindow`]);
//! * multiple user-defined layers (via `lumen-tissue`);
//! * refraction and internal reflection, classical or probabilistic
//!   ([`lumen_photon::BoundaryMode`]);
//! * user-defined granularity of results ([`tally::GridSpec`]);
//! * unlimited number of simulations (batching is the cluster's job —
//!   see `lumen-cluster`).
//!
//! The front door is the [`engine`] module: describe an experiment as an
//! [`engine::Scenario`] (tissue + source + detector + options + photon
//! budget + task split + seed) and execute it on any [`engine::Backend`] —
//! [`engine::Sequential`] or [`engine::Rayon`] here, the threaded
//! master/worker cluster, TCP deployment, and discrete-event simulator in
//! `lumen-cluster`. Every backend returns the same [`engine::RunReport`]
//! with bit-identical tallies for the same scenario, which is the paper's
//! reproducibility claim expressed as a type. The old free functions
//! ([`Simulation::run`], the deprecated [`parallel::run_parallel`]) remain
//! as thin shims.

pub mod archive;
pub mod detector;
pub mod engine;
pub mod error;
pub(crate) mod kernel;
pub mod parallel;
pub mod radial;
pub mod results;
pub mod sim;
pub mod source;
pub mod tally;

pub use archive::{PathArchive, RecordOptions, Reweight, ReweightReport};
pub use detector::{Detector, GateWindow};
pub use engine::{
    Backend, EngineError, NoProgress, Progress, Rayon, RunReport, Scenario, Sequential,
    WorkerAccount,
};
pub use error::ConfigError;
pub use lumen_photon::{BoundaryMode, OpticalProperties, Photon, RouletteConfig, Vec3};
pub use lumen_tissue::{
    Geometry, GeometryError, LayeredTissue, OpticalProperties as TissueOptics, TissueGeometry,
    VoxelMaterial, VoxelTissue,
};
#[allow(deprecated)]
pub use parallel::run_parallel;
pub use parallel::ParallelConfig;
pub use radial::{CylinderGrid, RadialProfile, RadialSpec};
pub use results::SimulationResult;
pub use sim::{Precision, Simulation, SimulationOptions};
pub use source::Source;
pub use tally::{GridSpec, Tally, VisitGrid};
