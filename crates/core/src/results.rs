//! Aggregated simulation results and derived physical quantities.

use crate::sim::PathRecord;
use crate::tally::Tally;
use serde::{Deserialize, Serialize};

/// The outcome of a completed simulation (sequential or merged parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Raw accumulators.
    pub tally: Tally,
    /// Up to `record_paths` full detected trajectories.
    pub sample_paths: Vec<PathRecord>,
}

impl SimulationResult {
    /// Wrap a finished tally.
    pub fn new(tally: Tally, sample_paths: Vec<PathRecord>) -> Self {
        Self { tally, sample_paths }
    }

    /// Photons launched.
    pub fn launched(&self) -> u64 {
        self.tally.launched
    }

    /// Fraction of launched photons that were detected.
    pub fn detected_fraction(&self) -> f64 {
        ratio(self.tally.detected as f64, self.tally.launched as f64)
    }

    /// Detected weight per launched photon (the measurable signal level —
    /// what determines required source power / detector sensitivity).
    pub fn detected_weight_per_photon(&self) -> f64 {
        ratio(self.tally.detected_weight, self.tally.launched as f64)
    }

    /// Total diffuse reflectance per launched photon (excludes specular,
    /// includes detected photons — they also exit the top surface).
    pub fn diffuse_reflectance(&self) -> f64 {
        ratio(self.tally.reflected_weight + self.tally.detected_weight, self.tally.launched as f64)
    }

    /// Specular reflectance per launched photon.
    pub fn specular_reflectance(&self) -> f64 {
        ratio(self.tally.specular_weight, self.tally.launched as f64)
    }

    /// Diffuse transmittance per launched photon (0 for semi-infinite media).
    pub fn transmittance(&self) -> f64 {
        ratio(self.tally.transmitted_weight, self.tally.launched as f64)
    }

    /// Absorbed fraction per layer, per launched photon.
    pub fn absorbed_fraction_by_layer(&self) -> Vec<f64> {
        self.tally.absorbed_by_layer.iter().map(|&w| ratio(w, self.tally.launched as f64)).collect()
    }

    /// Total absorbed fraction.
    pub fn absorbed_fraction(&self) -> f64 {
        ratio(self.tally.total_absorbed(), self.tally.launched as f64)
    }

    /// Mean pathlength of detected photons (mm) — the *differential
    /// pathlength* the paper highlights as the key quantity for
    /// quantitative NIRS.
    pub fn mean_detected_pathlength(&self) -> f64 {
        ratio(self.tally.detected_path_sum, self.tally.detected as f64)
    }

    /// Standard deviation of detected pathlengths (mm).
    pub fn std_detected_pathlength(&self) -> f64 {
        let n = self.tally.detected as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean = self.tally.detected_path_sum / n;
        let var = (self.tally.detected_path_sq_sum / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Differential pathlength factor: mean detected pathlength divided by
    /// the source–detector separation.
    pub fn differential_pathlength_factor(&self, separation_mm: f64) -> f64 {
        if separation_mm <= 0.0 {
            return f64::NAN;
        }
        self.mean_detected_pathlength() / separation_mm
    }

    /// Mean maximum penetration depth of detected photons (mm).
    pub fn mean_penetration_depth(&self) -> f64 {
        ratio(self.tally.detected_depth_sum, self.tally.detected as f64)
    }

    /// Deepest depth reached by any detected photon (mm).
    pub fn max_penetration_depth(&self) -> f64 {
        self.tally.detected_depth_max
    }

    /// Mean scattering events per detected photon.
    pub fn mean_detected_scatters(&self) -> f64 {
        ratio(self.tally.detected_scatter_sum as f64, self.tally.detected as f64)
    }

    /// Mean pathlength detected photons spent inside layer `idx` (mm) —
    /// the partial pathlength, whose ratio to the total is that layer's
    /// share of the detected signal's absorption sensitivity.
    pub fn mean_partial_pathlength(&self, idx: usize) -> f64 {
        ratio(
            self.tally.detected_partial_path.get(idx).copied().unwrap_or(0.0),
            self.tally.detected as f64,
        )
    }

    /// All layers' mean partial pathlengths (mm).
    pub fn mean_partial_pathlengths(&self) -> Vec<f64> {
        (0..self.tally.detected_partial_path.len())
            .map(|i| self.mean_partial_pathlength(i))
            .collect()
    }

    /// Fraction of detected photons whose walk reached layer `idx`.
    pub fn detected_reached_layer_fraction(&self, idx: usize) -> f64 {
        ratio(
            self.tally.detected_reached_layer.get(idx).copied().unwrap_or(0) as f64,
            self.tally.detected as f64,
        )
    }

    /// Merge another result into this one (e.g. from a parallel worker).
    pub fn merge(&mut self, other: &SimulationResult) {
        self.tally.merge(&other.tally);
        self.sample_paths.extend(other.sample_paths.iter().cloned());
    }
}

#[inline]
fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::Tally;

    fn result_with(launched: u64, detected: u64, path_sum: f64) -> SimulationResult {
        let mut t = Tally::new(2, None, None);
        t.launched = launched;
        t.detected = detected;
        t.detected_path_sum = path_sum;
        SimulationResult::new(t, Vec::new())
    }

    #[test]
    fn fractions() {
        let r = result_with(1000, 50, 5000.0);
        assert!((r.detected_fraction() - 0.05).abs() < 1e-12);
        assert!((r.mean_detected_pathlength() - 100.0).abs() < 1e-12);
        assert!((r.differential_pathlength_factor(25.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_all_zeros() {
        let r = result_with(0, 0, 0.0);
        assert_eq!(r.detected_fraction(), 0.0);
        assert_eq!(r.mean_detected_pathlength(), 0.0);
        assert_eq!(r.std_detected_pathlength(), 0.0);
        assert_eq!(r.absorbed_fraction(), 0.0);
    }

    #[test]
    fn dpf_of_zero_separation_is_nan() {
        let r = result_with(10, 1, 10.0);
        assert!(r.differential_pathlength_factor(0.0).is_nan());
    }

    #[test]
    fn std_pathlength() {
        let mut t = Tally::new(1, None, None);
        t.launched = 10;
        t.detected = 2;
        // Paths 10 and 20: mean 15, var 25, std 5.
        t.detected_path_sum = 30.0;
        t.detected_path_sq_sum = 100.0 + 400.0;
        let r = SimulationResult::new(t, Vec::new());
        assert!((r.std_detected_pathlength() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = result_with(100, 5, 50.0);
        let b = result_with(200, 10, 120.0);
        a.merge(&b);
        assert_eq!(a.launched(), 300);
        assert_eq!(a.tally.detected, 15);
        assert!((a.tally.detected_path_sum - 170.0).abs() < 1e-12);
    }
}
