//! The per-photon simulation loop (the paper's Fig 1) and the sequential
//! driver.
//!
//! ## Boundary-mode semantics
//!
//! * **Probabilistic** (default, MCML): at every interface the whole packet
//!   either reflects or transmits, with probability given by the Fresnel
//!   reflectance. A packet that transmits through the top surface escapes;
//!   if it exits inside the detector aperture (and passes the pathlength
//!   gate) it is *detected* — "save path and end".
//! * **Classical** ("classical physics" in the paper's feature list): at
//!   the *external* surfaces the packet splits deterministically — the
//!   transmitted fraction `(1−R)·w` escapes (and is tallied/detected), the
//!   reflected fraction `R·w` continues inside the tissue. Internal
//!   layer-to-layer interfaces remain probabilistic in both modes: the
//!   reflected and refracted branches both continue propagating there, and
//!   following one branch chosen with probability `R` is the unbiased way
//!   to do that without packet splitting.
//!
//! In classical mode a single photon can therefore contribute several
//! escape events; the *first* detected escape supplies the path statistics
//! so counts remain one-per-photon.

use crate::archive::{PathArchive, RecordOptions};
use crate::detector::Detector;
use crate::error::ConfigError;
use crate::kernel;
use crate::radial::RadialSpec;
use crate::results::SimulationResult;
use crate::source::Source;
use crate::tally::{GridSpec, Tally};
use lumen_photon::{BoundaryMode, Fate, RouletteConfig, Vec3};
use lumen_tissue::{Geometry, TissueGeometry};
use mcrng::{McRng, StreamFactory};
use serde::{Deserialize, Serialize};

/// A recorded trajectory of one detected photon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathRecord {
    /// Trajectory vertices from launch to exit (mm).
    pub vertices: Vec<Vec3>,
    /// Total pathlength at detection (mm).
    pub pathlength: f64,
    /// Packet weight carried out through the detector.
    pub exit_weight: f64,
}

/// Numerical tier of the transport kernel (see the `kernel` module).
///
/// The tier changes *how* photons are traced, never *what* is simulated, but
/// the two tiers make different reproducibility promises:
///
/// * [`Exact`](Precision::Exact) — the default. The bit-pinned scalar loop:
///   libm transcendentals, one photon at a time, per-photon RNG consumption
///   frozen by the golden-snapshot suite. Identical scenarios produce
///   byte-identical tallies across every backend, forever.
/// * [`Fast`](Precision::Fast) — the structure-of-arrays batch tracer with
///   the polynomial approximations in [`lumen_photon::approx`]. Still fully
///   deterministic (same scenario + seed + task split ⇒ same bytes, on every
///   backend), but *not* bit-compatible with `Exact`: lanes interleave their
///   draws from the task's RNG substream in batch order, so individual
///   trajectories differ while every tally distribution agrees statistically
///   (validated by tally-level z-tests in `fast_tier_validation`).
///
/// Because the tiers are not bit-compatible, `precision` is part of the
/// canonical scenario identity: it is wire-encoded (format v6) and folded
/// into the service result-cache key, so a `Fast` result can never satisfy
/// an `Exact` query or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Bit-pinned scalar reference kernel (the default).
    #[default]
    Exact,
    /// Batched SoA kernel with bounded-error polynomial approximations.
    Fast,
}

/// Engine knobs beyond geometry/source/detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// How interface physics is resolved (see module docs).
    pub boundary_mode: BoundaryMode,
    /// Russian-roulette parameters.
    pub roulette: RouletteConfig,
    /// Hard cap on interactions per photon (safety valve; photons hitting
    /// it are tallied as `expired` and should be ~0 in healthy runs).
    pub max_interactions: u32,
    /// Attach a visit grid accumulating detected-photon trajectories at
    /// this granularity (the paper's Fig 3/4 "granularity of 50³").
    pub path_grid: Option<GridSpec>,
    /// Attach a grid accumulating absorbed weight from all photons.
    pub absorption_grid: Option<GridSpec>,
    /// Attach a detected-pathlength histogram `(max_mm, bins)`.
    pub path_histogram: Option<(f64, usize)>,
    /// Attach an MCML-style radial diffuse-reflectance profile R(r).
    pub reflectance_profile: Option<RadialSpec>,
    /// Attach an MCML-style cylindrical absorption grid A(r, z):
    /// `(radial binning, depth bins, max depth in mm)`.
    pub absorption_rz: Option<(RadialSpec, usize, f64)>,
    /// Keep up to this many full detected trajectories for plotting.
    pub record_paths: usize,
    /// Record a perturbation-MC path archive of every escape event (see
    /// [`crate::archive`]). Probabilistic boundary mode only: classical
    /// mode splits one photon across several escape events, which the
    /// one-entry-per-packet archive cannot represent.
    pub archive: Option<RecordOptions>,
    /// Numerical tier of the transport kernel. [`Precision::Fast`] trades
    /// bit-compatibility with the exact tier for ≳2× throughput; it
    /// supports the statistical tallies (absorption grids, histograms,
    /// reflectance profiles, partial-path stats) but rejects the
    /// trajectory-level features (`path_grid`, `record_paths`, `archive`)
    /// and classical boundary splitting at [`Simulation::validate`] time.
    pub precision: Precision,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self {
            boundary_mode: BoundaryMode::Probabilistic,
            roulette: RouletteConfig::default(),
            max_interactions: 1_000_000,
            path_grid: None,
            absorption_grid: None,
            path_histogram: None,
            reflectance_profile: None,
            absorption_rz: None,
            record_paths: 0,
            archive: None,
            precision: Precision::Exact,
        }
    }
}

/// A fully specified Monte Carlo experiment.
///
/// ```
/// use lumen_core::{Detector, Simulation, Source};
/// use lumen_tissue::presets::homogeneous_white_matter;
///
/// let sim = Simulation::new(
///     homogeneous_white_matter(),
///     Source::Delta,
///     Detector::new(3.0, 1.0), // 3 mm separation, 1 mm radius
/// );
/// let result = sim.run(5_000, 42); // photons, seed
/// assert_eq!(result.launched(), 5_000);
/// // Same seed, same everything:
/// assert_eq!(sim.run(5_000, 42).tally, result.tally);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulation {
    /// The tissue model — layered or voxelized (see
    /// [`lumen_tissue::Geometry`]); the stepping loop is generic over
    /// [`TissueGeometry`] and monomorphized per variant.
    pub tissue: Geometry,
    pub source: Source,
    pub detector: Detector,
    pub options: SimulationOptions,
}

/// Per-photon scratch state reused across photons to avoid allocations on
/// the hot path.
#[derive(Default)]
pub struct Scratch {
    pub(crate) vertices: Vec<Vec3>,
    /// Pathlength accrued in each region by the current photon (mm).
    pub(crate) partial_path: Vec<f64>,
    /// Regions the current photon has actually entered. Layered walks
    /// visit a contiguous `0..=max` prefix, but a voxel palette has no
    /// depth order, so "reached" must be tracked per region.
    pub(crate) reached: Vec<bool>,
    /// Interactions the current photon has had in each region — the
    /// exponent of the perturbation-MC scattering ratio. Maintained
    /// unconditionally (one add per interaction, tally-neutral).
    pub(crate) collisions: Vec<u32>,
}

impl Scratch {
    /// Reset for the next photon. After the first photon of a stream the
    /// per-region vectors already have the right length, so this is a pair
    /// of `fill`s rather than a clear-and-regrow.
    #[inline]
    pub(crate) fn reset(&mut self, regions: usize) {
        self.vertices.clear();
        if self.partial_path.len() == regions {
            self.partial_path.fill(0.0);
            self.reached.fill(false);
            self.collisions.fill(0);
        } else {
            self.partial_path.clear();
            self.partial_path.resize(regions, 0.0);
            self.reached.clear();
            self.reached.resize(regions, false);
            self.collisions.clear();
            self.collisions.resize(regions, 0);
        }
    }
}

impl Simulation {
    /// Build a simulation with default options. Accepts a bare
    /// [`lumen_tissue::LayeredTissue`] or [`lumen_tissue::VoxelTissue`] as
    /// well as a [`Geometry`] value.
    pub fn new(tissue: impl Into<Geometry>, source: Source, detector: Detector) -> Self {
        Self { tissue: tissue.into(), source, detector, options: SimulationOptions::default() }
    }

    /// Replace the options (builder style).
    pub fn with_options(mut self, options: SimulationOptions) -> Self {
        self.options = options;
        self
    }

    /// Validate the full configuration.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn validate(&self) -> Result<(), ConfigError> {
        let component =
            |what: &'static str| move |reason: String| ConfigError::Component { what, reason };
        self.source.validate().map_err(component("source"))?;
        self.detector.validate().map_err(component("detector"))?;
        self.options.roulette.validate().map_err(component("roulette"))?;
        if let Some(g) = &self.options.path_grid {
            g.validate()?;
        }
        if let Some(g) = &self.options.absorption_grid {
            g.validate()?;
        }
        if let Some((max_mm, bins)) = &self.options.path_histogram {
            if !(*max_mm > 0.0) || *bins == 0 {
                return Err(ConfigError::BadHistogram { max_mm: *max_mm, bins: *bins });
            }
        }
        if let Some(r) = &self.options.reflectance_profile {
            r.validate().map_err(component("reflectance profile"))?;
        }
        if let Some((r, nz, z_max)) = &self.options.absorption_rz {
            r.validate().map_err(component("absorption_rz radial binning"))?;
            if *nz == 0 || !(*z_max > 0.0) {
                return Err(ConfigError::BadDepthBinning { nz: *nz, z_max: *z_max });
            }
        }
        if self.options.max_interactions == 0 {
            return Err(ConfigError::ZeroInteractionCap);
        }
        if self.options.archive.is_some() && self.options.boundary_mode == BoundaryMode::Classical {
            return Err(ConfigError::Component {
                what: "archive",
                reason: "path archives require probabilistic boundary mode (classical mode \
                         splits one packet across several escape events)"
                    .into(),
            });
        }
        if self.options.precision == Precision::Fast {
            let fast_rejects = |what: &'static str, why: &str| ConfigError::Component {
                what,
                reason: format!("the fast precision tier does not support {why}; use exact"),
            };
            if self.options.boundary_mode == BoundaryMode::Classical {
                return Err(fast_rejects(
                    "precision",
                    "classical boundary splitting (whole-packet probabilistic mode only)",
                ));
            }
            if self.options.path_grid.is_some() {
                return Err(fast_rejects("precision", "trajectory visit grids (path_grid)"));
            }
            if self.options.record_paths > 0 {
                return Err(fast_rejects("precision", "trajectory recording (record_paths)"));
            }
            if self.options.archive.is_some() {
                return Err(fast_rejects("precision", "perturbation-MC path archives"));
            }
        }
        self.tissue.validate()?;
        Ok(())
    }

    /// A tally shaped for this simulation: one slot per geometry region
    /// (layer or voxel material).
    pub fn new_tally(&self) -> Tally {
        let mut tally = Tally::new(
            self.tissue.region_count(),
            self.options.path_grid,
            self.options.absorption_grid,
        );
        if let Some((max_mm, bins)) = self.options.path_histogram {
            tally = tally.with_path_histogram(max_mm, bins);
        }
        if let Some(spec) = self.options.reflectance_profile {
            tally = tally.with_reflectance_profile(spec);
        }
        if let Some((radial, nz, z_max)) = self.options.absorption_rz {
            tally = tally.with_absorption_rz(radial, nz, z_max);
        }
        if let Some(record) = self.options.archive {
            let regions = self.tissue.region_count();
            let base = (0..regions).map(|r| *self.tissue.optics(r)).collect();
            tally = tally.with_archive(PathArchive::new(regions, base, record));
        }
        tally
    }

    /// Trace one photon, accumulating into `tally`. Returns the terminal
    /// fate. This is the paper's Fig 1 loop, dispatched once per photon to
    /// the geometry-monomorphized scalar kernel (the private `kernel::scalar` module).
    /// Always runs the bit-pinned exact path; the fast tier batches whole
    /// streams and dispatches in [`Self::run_stream`].
    pub fn trace_photon<R: McRng>(
        &self,
        rng: &mut R,
        tally: &mut Tally,
        scratch: &mut Scratch,
        paths_out: Option<&mut Vec<PathRecord>>,
    ) -> Fate {
        match &self.tissue {
            Geometry::Layered(g) => {
                kernel::scalar::trace_photon(self, g, rng, tally, scratch, paths_out)
            }
            Geometry::Voxel(g) => {
                kernel::scalar::trace_photon(self, g, rng, tally, scratch, paths_out)
            }
        }
    }

    /// Run `n` photons from the given RNG into `tally`. Dispatches to the
    /// geometry-monomorphized loop once for the whole stream.
    ///
    /// This is the precision-tier seam: everything above it (task
    /// decomposition, RNG substreams, tally merging, every backend) is
    /// tier-agnostic, so `Exact` and `Fast` runs differ only in which
    /// kernel walks the stream.
    pub fn run_stream<R: McRng>(
        &self,
        n: u64,
        rng: &mut R,
        tally: &mut Tally,
        paths_out: Option<&mut Vec<PathRecord>>,
    ) {
        match (&self.tissue, self.options.precision) {
            (Geometry::Layered(g), Precision::Exact) => {
                self.run_stream_in(g, n, rng, tally, paths_out)
            }
            (Geometry::Voxel(g), Precision::Exact) => {
                self.run_stream_in(g, n, rng, tally, paths_out)
            }
            (Geometry::Layered(g), Precision::Fast) => {
                kernel::batch::run_stream(self, g, n, rng, tally)
            }
            (Geometry::Voxel(g), Precision::Fast) => {
                kernel::batch::run_stream(self, g, n, rng, tally)
            }
        }
    }

    fn run_stream_in<G: TissueGeometry, R: McRng>(
        &self,
        geom: &G,
        n: u64,
        rng: &mut R,
        tally: &mut Tally,
        paths_out: Option<&mut Vec<PathRecord>>,
    ) {
        let mut scratch = Scratch::default();
        // Resolve the path-recording branch once for the whole stream so
        // the per-photon loop carries no `Option` re-borrowing.
        match paths_out {
            Some(out) => {
                for _ in 0..n {
                    kernel::scalar::trace_photon(
                        self,
                        geom,
                        rng,
                        tally,
                        &mut scratch,
                        Some(&mut *out),
                    );
                }
            }
            None => {
                for _ in 0..n {
                    kernel::scalar::trace_photon(self, geom, rng, tally, &mut scratch, None);
                }
            }
        }
    }

    /// Sequential driver: simulate `n` photons with the experiment `seed`
    /// (stream 0 of the seed's stream family, so a 1-task parallel run
    /// reproduces it exactly).
    pub fn run(&self, n: u64, seed: u64) -> SimulationResult {
        self.validate().expect("invalid simulation configuration");
        let mut tally = self.new_tally();
        let mut rng = StreamFactory::new(seed).stream(0);
        let mut paths = Vec::new();
        self.run_stream(n, &mut rng, &mut tally, Some(&mut paths));
        SimulationResult::new(tally, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::GateWindow;
    use lumen_photon::OpticalProperties;
    use lumen_tissue::presets::{homogeneous_white_matter, semi_infinite_phantom};

    fn quick_sim() -> Simulation {
        // Matched-index phantom so photons can't get stuck: short walks.
        let tissue = semi_infinite_phantom(0.1, 10.0, 0.0, 1.0);
        Simulation::new(tissue, Source::Delta, Detector::new(1.0, 0.5))
    }

    #[test]
    fn photons_all_reach_a_terminal_fate() {
        let sim = quick_sim();
        let res = sim.run(2000, 42);
        let t = &res.tally;
        assert_eq!(t.launched, 2000);
        assert_eq!(
            t.detected
                + t.reflected
                + t.transmitted
                + t.roulette_killed
                + t.fully_absorbed
                + t.expired,
            2000
        );
        assert_eq!(t.expired, 0, "no photon should hit the interaction cap");
    }

    #[test]
    fn energy_is_conserved_in_expectation() {
        let sim = quick_sim();
        let res = sim.run(20_000, 7);
        let frac = res.tally.accounted_weight_fraction();
        // Roulette makes per-run accounting stochastic but unbiased;
        // 20k photons bring it within ~1%.
        assert!((frac - 1.0).abs() < 0.01, "accounted fraction {frac}");
    }

    #[test]
    fn energy_conserved_with_index_mismatch_and_layers() {
        let tissue = lumen_tissue::presets::adult_head(Default::default());
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(20.0, 2.0));
        let res = sim.run(5_000, 11);
        let frac = res.tally.accounted_weight_fraction();
        assert!((frac - 1.0).abs() < 0.02, "accounted fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = quick_sim();
        let a = sim.run(1000, 99);
        let b = sim.run(1000, 99);
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn different_seeds_differ() {
        let sim = quick_sim();
        let a = sim.run(1000, 1);
        let b = sim.run(1000, 2);
        assert_ne!(a.tally, b.tally);
    }

    #[test]
    fn some_photons_are_detected_at_close_separation() {
        let tissue = homogeneous_white_matter();
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(2.0, 1.0));
        let res = sim.run(20_000, 3);
        assert!(res.tally.detected > 0, "no detections at 2 mm separation");
        assert!(res.tally.detected_weight > 0.0);
    }

    #[test]
    fn detected_pathlength_exceeds_separation() {
        // The motivating physics: the differential pathlength is much
        // longer than the geometric source-detector distance.
        let tissue = homogeneous_white_matter();
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(3.0, 1.0));
        let res = sim.run(50_000, 5);
        assert!(res.tally.detected >= 10);
        let mean_path = res.tally.detected_path_sum / res.tally.detected as f64;
        assert!(
            mean_path > 3.0,
            "mean detected pathlength {mean_path} should exceed the 3 mm separation"
        );
    }

    #[test]
    fn gating_reduces_detections() {
        let tissue = homogeneous_white_matter();
        let open = Simulation::new(tissue.clone(), Source::Delta, Detector::new(2.0, 1.0));
        let gated = Simulation::new(
            tissue,
            Source::Delta,
            Detector::new(2.0, 1.0).with_gate(GateWindow::new(2.0, 6.0).unwrap()),
        );
        let ro = open.run(30_000, 13);
        let rg = gated.run(30_000, 13);
        assert!(rg.tally.detected < ro.tally.detected);
        assert!(rg.tally.gate_rejected > 0);
        // Gated mean pathlength must respect the window.
        if rg.tally.detected > 0 {
            let mean = rg.tally.detected_path_sum / rg.tally.detected as f64;
            assert!((2.0..=6.0).contains(&mean), "gated mean pathlength {mean}");
        }
    }

    #[test]
    fn path_grid_populates_on_detection() {
        let tissue = homogeneous_white_matter();
        let spec = GridSpec::cubic(20, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(4.0, 2.0, 4.0));
        let opts = SimulationOptions { path_grid: Some(spec), ..Default::default() };
        let sim =
            Simulation::new(tissue, Source::Delta, Detector::new(2.0, 1.0)).with_options(opts);
        let res = sim.run(20_000, 21);
        let grid = res.tally.path_grid.as_ref().unwrap();
        assert!(res.tally.detected > 0);
        assert!(grid.total() > 0.0);
    }

    #[test]
    fn recorded_paths_start_at_surface_and_respect_cap() {
        let tissue = homogeneous_white_matter();
        let opts = SimulationOptions { record_paths: 5, ..Default::default() };
        let sim =
            Simulation::new(tissue, Source::Delta, Detector::new(2.0, 1.0)).with_options(opts);
        let res = sim.run(50_000, 31);
        assert!(!res.sample_paths.is_empty());
        assert!(res.sample_paths.len() <= 5);
        for p in &res.sample_paths {
            assert_eq!(p.vertices.first().unwrap().z, 0.0);
            assert!(p.pathlength > 0.0);
            assert!(p.exit_weight > 0.0);
        }
    }

    #[test]
    fn classical_and_probabilistic_agree_in_distribution() {
        let tissue = semi_infinite_phantom(0.05, 5.0, 0.8, 1.4);
        let mk = |mode| {
            let opts = SimulationOptions { boundary_mode: mode, ..Default::default() };
            Simulation::new(tissue.clone(), Source::Delta, Detector::new(2.0, 1.0))
                .with_options(opts)
        };
        let n = 60_000;
        let p = mk(BoundaryMode::Probabilistic).run(n, 8);
        let c = mk(BoundaryMode::Classical).run(n, 8);
        // Detected weight per photon should agree within MC error.
        let dw_p = p.tally.detected_weight / n as f64;
        let dw_c = c.tally.detected_weight / n as f64;
        let rel = (dw_p - dw_c).abs() / dw_p.max(1e-12);
        assert!(rel < 0.15, "classical {dw_c} vs probabilistic {dw_p}");
        // Total reflectance (diffuse + detected) likewise.
        let r_p = (p.tally.reflected_weight + p.tally.detected_weight) / n as f64;
        let r_c = (c.tally.reflected_weight + c.tally.detected_weight) / n as f64;
        assert!((r_p - r_c).abs() / r_p < 0.1, "classical {r_c} vs probabilistic {r_p}");
    }

    #[test]
    fn absorbing_only_medium_absorbs_everything_not_reflected() {
        // mu_s = 0: photons travel straight down and are absorbed; nothing
        // returns (matched indices, no scattering back).
        let tissue = lumen_tissue::LayeredTissue::homogeneous(
            "ink",
            OpticalProperties::new(1.0, 0.0, 0.0, 1.0),
            1.0,
        );
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(1.0, 0.5));
        let res = sim.run(2_000, 17);
        assert_eq!(res.tally.detected, 0);
        assert_eq!(res.tally.reflected, 0);
        let absorbed = res.tally.total_absorbed() / 2000.0;
        assert!(absorbed > 0.99, "absorbed fraction {absorbed}");
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut sim = quick_sim();
        assert!(sim.validate().is_ok());
        sim.detector.radius = -1.0;
        assert!(sim.validate().is_err());
        let mut sim2 = quick_sim();
        sim2.options.max_interactions = 0;
        assert!(sim2.validate().is_err());
        // Transparent semi-infinite bottom layer is rejected.
        let tissue = lumen_tissue::LayeredTissue::homogeneous(
            "void",
            OpticalProperties::transparent(1.0),
            1.0,
        );
        let sim3 = Simulation::new(tissue, Source::Delta, Detector::new(1.0, 0.5));
        assert!(sim3.validate().is_err());
    }

    #[test]
    fn validate_reports_typed_errors() {
        use lumen_tissue::GeometryError;

        let mut sim = quick_sim();
        sim.detector.radius = -1.0;
        assert!(matches!(sim.validate(), Err(ConfigError::Component { what: "detector", .. })));

        let mut sim = quick_sim();
        sim.source = Source::Gaussian { radius: -2.0 };
        assert!(matches!(sim.validate(), Err(ConfigError::Component { what: "source", .. })));

        let mut sim = quick_sim();
        sim.options.max_interactions = 0;
        assert_eq!(sim.validate(), Err(ConfigError::ZeroInteractionCap));

        let mut sim = quick_sim();
        sim.options.path_histogram = Some((-3.0, 10));
        assert_eq!(sim.validate(), Err(ConfigError::BadHistogram { max_mm: -3.0, bins: 10 }));

        let mut sim = quick_sim();
        sim.options.absorption_rz = Some((RadialSpec { nr: 4, r_max: 5.0 }, 0, 10.0));
        assert_eq!(sim.validate(), Err(ConfigError::BadDepthBinning { nz: 0, z_max: 10.0 }));

        let mut sim = quick_sim();
        sim.options.path_grid = Some(GridSpec::cubic(0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)));
        assert_eq!(sim.validate(), Err(ConfigError::EmptyGrid));

        // Geometry failures surface as `Geometry`, and the whole family
        // converts into the engine's InvalidConfig with the message intact.
        let tissue = lumen_tissue::LayeredTissue::homogeneous(
            "void",
            OpticalProperties::transparent(1.0),
            1.0,
        );
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(1.0, 0.5));
        let err = sim.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Geometry(GeometryError::BadOptics { .. })));
        let engine_err: crate::engine::EngineError = err.into();
        assert!(engine_err.to_string().contains("semi-infinite"));
    }

    #[test]
    fn index_mismatch_increases_internal_reflection() {
        // With n=1.4 tissue under air, some upward photons are internally
        // reflected, increasing absorbed fraction vs matched boundaries.
        let matched = semi_infinite_phantom(0.1, 10.0, 0.0, 1.0);
        let mismatched = semi_infinite_phantom(0.1, 10.0, 0.0, 1.4);
        let det = Detector::new(1.0, 0.5);
        let a = Simulation::new(matched, Source::Delta, det).run(20_000, 4);
        let b = Simulation::new(mismatched, Source::Delta, det).run(20_000, 4);
        let abs_a = a.tally.total_absorbed() / 20_000.0;
        let abs_b = b.tally.total_absorbed() / 20_000.0;
        assert!(abs_b > abs_a, "index mismatch should trap more light: {abs_b} <= {abs_a}");
    }
}
