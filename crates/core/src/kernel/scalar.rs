//! The bit-pinned scalar implementation of the kernel stages.
//!
//! This is the paper's Fig 1 loop, stage by stage, moved verbatim out of the
//! former monolithic `trace_photon_in`: every floating-point operation keeps
//! its original order and operands, so the golden-tally harness pins this
//! module byte-for-byte against the pre-refactor snapshots. Any change here
//! is a physics change and must regenerate the goldens.

use crate::archive;
use crate::sim::{PathRecord, Scratch, Simulation};
use crate::tally::Tally;
use lumen_photon::{
    fresnel::{interact_with_boundary_axis, BoundaryOutcome},
    fresnel_reflectance, hop, roulette, sample_step_mfps, spin,
    step::Hop,
    Axis, BoundaryMode, Fate, Photon,
};
use lumen_tissue::{BoundaryHit, TissueGeometry};
use mcrng::McRng;

use super::DetectionState;

/// What the hop stage resolved the current step into.
pub(crate) enum StepOutcome {
    /// The step ended inside the region: drop/spin/roulette happen here.
    Interact,
    /// The step hit a region boundary first; `remaining_mfps` of
    /// dimensionless step carry into the next medium.
    Boundary { remaining_mfps: f64, hit: BoundaryHit },
    /// Degenerate geometry (horizontal flight in a transparent slab): the
    /// photon can neither interact nor reach a boundary. Retire it.
    Stuck,
}

/// Launch stage: sample the source, tally the specular loss, and resolve
/// launch misses (photons that start outside a finite grid's lateral
/// extent reflect with full weight).
#[inline]
pub(crate) fn launch_stage<G: TissueGeometry, R: McRng>(
    sim: &Simulation,
    geom: &G,
    rng: &mut R,
    tally: &mut Tally,
) -> Photon {
    let (mut photon, r_sp) = sim.source.launch(geom, rng);
    tally.launched += 1;
    tally.specular_weight += r_sp;
    if let Some(a) = tally.archive.as_mut() {
        a.on_launch(r_sp);
    }
    if !photon.survived() {
        // Missed a finite grid's lateral extent: full weight reflects.
        tally.reflected_weight += photon.weight;
        if let Some(a) = tally.archive.as_mut() {
            if !a.detected_only {
                a.push_launch_miss(photon.weight, photon.pos.radial());
            }
        }
        photon.weight = 0.0;
    }
    photon
}

/// Hop stage: advance the photon by (part of) the sampled dimensionless
/// step. The fast path skips the full boundary query whenever the step is
/// at most HALF the geometry's direction-independent boundary-distance
/// lower bound — the factor 2 strictly dominates the rounding of the exact
/// distance computation, so this branch advances the photon to exactly the
/// position `hop` would have (same `step_mfps / mu_t` division, same
/// operands).
#[inline]
pub(crate) fn hop_stage<G: TissueGeometry>(
    geom: &G,
    photon: &mut Photon,
    optics: &lumen_photon::DerivedOptics,
    region: usize,
    step_mfps: f64,
) -> StepOutcome {
    if !optics.transparent {
        let geometric = step_mfps / optics.mu_t;
        if geometric <= 0.5 * geom.min_boundary_distance(photon.pos, region) {
            photon.advance(geometric);
            return StepOutcome::Interact;
        }
    }
    let hit = geom.boundary_hit(photon.pos, photon.dir, region);
    if !hit.distance.is_finite() && optics.transparent {
        return StepOutcome::Stuck;
    }
    match hop(photon, step_mfps, optics.mu_t, hit.distance) {
        Hop::Interact => StepOutcome::Interact,
        Hop::Boundary { remaining_mfps } => StepOutcome::Boundary { remaining_mfps, hit },
    }
}

/// Interaction stage: drop (deposit the absorbed fraction), spin (HG
/// scatter), roulette. Returns `false` when the photon's walk ended here.
#[inline]
pub(crate) fn interact_stage<R: McRng>(
    sim: &Simulation,
    photon: &mut Photon,
    optics: &lumen_photon::DerivedOptics,
    region: usize,
    tally: &mut Tally,
    rng: &mut R,
) -> bool {
    // --- update absorption and photon weight ---
    let deposited = photon.absorb_fraction(optics.absorb_frac);
    tally.absorbed_by_layer[region] += deposited;
    if let Some(grid) = tally.absorption_grid.as_mut() {
        grid.deposit(photon.pos, deposited);
    }
    if let Some(rz) = tally.absorption_rz.as_mut() {
        rz.deposit(photon.pos.radial(), photon.pos.z, deposited);
    }
    if photon.weight <= 0.0 {
        photon.terminate(Fate::Absorbed);
        return false;
    }
    // --- scatter (spin) ---
    spin(photon, optics.g, rng);
    // --- if (weight too small) survive roulette ---
    roulette(photon, sim.options.roulette, rng)
}

/// The geometry and interface description of one external-surface
/// encounter, grouped so the surface stage stays under clippy's argument
/// limit without an `#[allow]`.
pub(crate) struct SurfaceContext {
    /// Refractive index on the incident (tissue) side.
    pub n_i: f64,
    /// Refractive index on the far (ambient) side.
    pub n_t: f64,
    /// Normal axis of the surface (always [`Axis::Z`] for layered stacks).
    pub axis: Axis,
    /// True for the top z = 0 plane, where the detector lives.
    pub is_top: bool,
}

/// Surface stage: an external-surface encounter — the top z=0 plane, the
/// bottom of a finite stack, or any outer face of a voxel grid.
///
/// Returns the escape event as an archive `(class, weight_out)` pair when
/// the *whole packet* left the tissue (probabilistic mode), so the caller —
/// which owns the per-photon scratch — can append a path archive entry.
/// Internal reflections and classical-mode partial escapes return `None`.
#[inline]
pub(crate) fn surface_stage<R: McRng>(
    sim: &Simulation,
    ctx: &SurfaceContext,
    photon: &mut Photon,
    rng: &mut R,
    tally: &mut Tally,
    detection: &mut DetectionState,
) -> Option<(u8, f64)> {
    let cos_i = photon.dir.component(ctx.axis).abs();
    let reflectance = fresnel_reflectance(ctx.n_i, ctx.n_t, cos_i);
    // Exit-angle cosine on the ambient side (Snell); escapes only
    // happen below the critical angle, so sin_t < 1 here.
    let sin_t = (ctx.n_i / ctx.n_t) * (1.0 - cos_i * cos_i).max(0.0).sqrt();
    let exit_cos = (1.0 - sin_t * sin_t).max(0.0).sqrt();
    let is_top = ctx.is_top;

    let escape = |photon: &mut Photon,
                  weight_out: f64,
                  tally: &mut Tally,
                  detection: &mut DetectionState|
     -> u8 {
        // Returns the escape's archive class; `CLASS_DETECTED` means
        // this event counts as a detection.
        if is_top {
            if let Some(profile) = tally.reflectance_r.as_mut() {
                profile.record(photon.pos.radial(), weight_out);
            }
            if sim.detector.in_aperture(photon.pos) {
                if !sim.detector.accepts_angle(exit_cos) {
                    tally.na_rejected += 1;
                    tally.reflected_weight += weight_out;
                    return archive::CLASS_NA_REJECTED;
                }
                if sim.detector.gate.accepts(photon.pathlength) {
                    tally.detected_weight += weight_out;
                    detection.weight_total += weight_out;
                    if detection.first.is_none() {
                        detection.first = Some((photon.pathlength, weight_out));
                    }
                    return archive::CLASS_DETECTED;
                } else {
                    tally.gate_rejected += 1;
                    tally.reflected_weight += weight_out;
                    return archive::CLASS_GATE_REJECTED;
                }
            }
            tally.reflected_weight += weight_out;
            archive::CLASS_MISSED_APERTURE
        } else {
            tally.transmitted_weight += weight_out;
            archive::CLASS_TRANSMITTED
        }
    };

    match sim.options.boundary_mode {
        BoundaryMode::Probabilistic => {
            if reflectance < 1.0 && rng.next_f64() >= reflectance {
                // Whole packet escapes.
                let w = photon.weight;
                let class = escape(photon, w, tally, detection);
                photon.weight = 0.0;
                photon.terminate(if class == archive::CLASS_DETECTED {
                    Fate::Detected
                } else if is_top {
                    Fate::ReflectedOut
                } else {
                    Fate::Transmitted
                });
                return Some((class, w));
            }
            // Internal reflection (total or Fresnel-sampled).
            photon.dir = photon.dir.reflect(ctx.axis);
        }
        BoundaryMode::Classical => {
            if reflectance < 1.0 {
                let escaped = photon.weight * (1.0 - reflectance);
                let _ = escape(photon, escaped, tally, detection);
                photon.weight -= escaped;
            }
            if photon.weight <= 0.0 {
                // Matched indices: everything escaped.
                photon.terminate(if detection.first.is_some() {
                    Fate::Detected
                } else if is_top {
                    Fate::ReflectedOut
                } else {
                    Fate::Transmitted
                });
            } else {
                photon.dir = photon.dir.reflect(ctx.axis);
            }
        }
    }
    None
}

/// Finish stage: terminal-fate bookkeeping — fate counts, classical-mode
/// reclassification, detected path/depth/scatter statistics, visit-grid
/// rasterization, and sample-path capture.
#[inline]
pub(crate) fn finish_stage(
    sim: &Simulation,
    photon: &Photon,
    scratch: &Scratch,
    tally: &mut Tally,
    detection: &DetectionState,
    paths_out: Option<&mut Vec<PathRecord>>,
) {
    let fate = photon.fate;
    tally.count_fate(fate);

    // Classical mode finishes with roulette death after detection
    // events; attribute path statistics to the first detection.
    let detected_event = match fate {
        Fate::Detected => Some((photon.pathlength, detection.weight_total)),
        _ => detection.first.map(|(pl, _)| (pl, detection.weight_total)),
    };

    if let Some((pathlength, _)) = detected_event {
        if let Some(hist) = tally.path_histogram.as_mut() {
            hist.record(pathlength);
        }
    }
    if let Some((pathlength, weight_out)) = detected_event {
        if fate != Fate::Detected {
            // Classical-mode photon that was detected earlier but died
            // later: reclassify the count.
            match fate {
                Fate::RouletteKilled => tally.roulette_killed -= 1,
                Fate::Absorbed => tally.fully_absorbed -= 1,
                Fate::ReflectedOut => tally.reflected -= 1,
                Fate::Transmitted => tally.transmitted -= 1,
                Fate::Expired => tally.expired -= 1,
                _ => {}
            }
            tally.detected += 1;
        }
        tally.detected_path_sum += pathlength;
        tally.detected_path_sq_sum += pathlength * pathlength;
        tally.detected_weight_path_sum += weight_out * pathlength;
        tally.detected_depth_sum += photon.max_depth;
        tally.detected_depth_max = tally.detected_depth_max.max(photon.max_depth);
        tally.detected_scatter_sum += photon.scatters as u64;
        for (count, &reached) in tally.detected_reached_layer.iter_mut().zip(&scratch.reached) {
            *count += u64::from(reached);
        }
        for (sum, &partial) in tally.detected_partial_path.iter_mut().zip(&scratch.partial_path) {
            *sum += partial;
        }

        // "save path": rasterise the trajectory into the visit grid
        // with density ∝ weight × residence length.
        if let Some(grid) = tally.path_grid.as_mut() {
            for pair in scratch.vertices.windows(2) {
                let seg_len = pair[0].distance(pair[1]);
                grid.deposit_segment(pair[0], pair[1], weight_out * seg_len);
            }
        }
        if let Some(out) = paths_out {
            if out.len() < sim.options.record_paths {
                out.push(PathRecord {
                    vertices: scratch.vertices.clone(),
                    pathlength,
                    exit_weight: weight_out,
                });
            }
        }
    }
}

/// The geometry-generic stepping loop: launch, then hop / interact /
/// surface stages until a terminal fate, then the finish stage.
/// `photon.layer` holds the current *region* index (layer or voxel
/// material); all geometric questions go through `geom`, so the layered
/// hot path compiles to exactly the code it was before the abstraction
/// (pinned by the golden-tally harness).
pub(crate) fn trace_photon<G: TissueGeometry, R: McRng>(
    sim: &Simulation,
    geom: &G,
    rng: &mut R,
    tally: &mut Tally,
    scratch: &mut Scratch,
    paths_out: Option<&mut Vec<PathRecord>>,
) -> Fate {
    // --- initialise photon ---
    let mut photon = launch_stage(sim, geom, rng, tally);

    let recording = tally.path_grid.is_some() || sim.options.record_paths > 0;
    scratch.reset(geom.region_count());
    scratch.reached[photon.layer] = true;
    if recording {
        scratch.vertices.push(photon.pos);
    }

    let mut step_mfps = 0.0_f64; // unspent dimensionless step
    let mut interactions = 0u32;
    let mut detection = DetectionState::default();

    // The current region's precomputed constants, refreshed only when
    // the photon genuinely changes region (a transmit at a boundary) —
    // reflections and interactions reuse the cached entry across any
    // number of steps/DDA faces.
    let mut region = photon.layer;
    let mut optics = geom.derived(region);

    // --- while (photon survived) ---
    while photon.survived() {
        interactions += 1;
        if interactions > sim.options.max_interactions {
            photon.terminate(Fate::Expired);
            break;
        }

        if photon.layer != region {
            region = photon.layer;
            optics = geom.derived(region);
        }
        if step_mfps <= 0.0 {
            step_mfps = sample_step_mfps(rng);
        }

        // --- move photon ---
        let path_before = photon.pathlength;
        let outcome = hop_stage(geom, &mut photon, optics, region, step_mfps);
        scratch.partial_path[region] += photon.pathlength - path_before;
        match outcome {
            StepOutcome::Stuck => {
                // Probability-zero geometry; retire the photon rather
                // than loop forever.
                photon.terminate(Fate::Expired);
                break;
            }
            StepOutcome::Interact => {
                step_mfps = 0.0;
                scratch.collisions[region] += 1;
                if recording {
                    scratch.vertices.push(photon.pos);
                }
                if !interact_stage(sim, &mut photon, optics, region, tally, rng) {
                    break;
                }
            }
            StepOutcome::Boundary { remaining_mfps, hit } => {
                step_mfps = remaining_mfps;
                if recording {
                    scratch.vertices.push(photon.pos);
                }
                // --- changed medium: internally reflect or refract ---
                let exits_tissue = hit.next_region.is_none();
                let n_i = optics.n;
                let n_t = geom.neighbour_n(region, &hit);

                if exits_tissue {
                    let ctx =
                        SurfaceContext { n_i, n_t, axis: hit.axis, is_top: hit.is_top_surface };
                    let event = surface_stage(sim, &ctx, &mut photon, rng, tally, &mut detection);
                    if let Some((class, weight_out)) = event {
                        if let Some(a) = tally.archive.as_mut() {
                            if class == archive::CLASS_DETECTED || !a.detected_only {
                                a.push(
                                    class,
                                    weight_out,
                                    photon.pos.radial(),
                                    photon.pathlength,
                                    photon.max_depth,
                                    photon.scatters,
                                    &scratch.partial_path,
                                    &scratch.collisions,
                                    &scratch.reached,
                                );
                            }
                        }
                    }
                } else {
                    // Internal interface: probabilistic branch selection
                    // in both modes (see the `sim` module docs).
                    match interact_with_boundary_axis(
                        photon.dir,
                        hit.axis,
                        n_i,
                        n_t,
                        BoundaryMode::Probabilistic,
                        rng,
                    ) {
                        BoundaryOutcome::Reflected { dir, .. } => {
                            photon.dir = dir;
                        }
                        BoundaryOutcome::Transmitted { dir, .. } => {
                            photon.dir = dir;
                            photon.layer = hit.next_region.expect("internal boundary");
                            scratch.reached[photon.layer] = true;
                        }
                    }
                }
            }
        }
    }

    // --- bookkeeping for the terminal fate ---
    finish_stage(sim, &photon, scratch, tally, &detection, paths_out);
    photon.fate
}
