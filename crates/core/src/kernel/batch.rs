//! Structure-of-arrays batch tracer — the `Fast` precision tier.
//!
//! Instead of walking one photon to its terminal fate at a time, this kernel
//! steps a pool of [`LANES`] photon lanes in lockstep *supersteps*. Each
//! superstep runs the same stages as the scalar kernel, but reorganised so
//! the per-interaction math that dominates the scalar profile — free-path
//! `ln`, the Henyey–Greenstein polar draw, the azimuthal `sin`/`cos`, the
//! direction rotation — executes as full-width loops over contiguous `f64`
//! arrays with the polynomial approximations from [`lumen_photon::approx`],
//! where the compiler autovectorizes them. Rare events (boundary crossings,
//! launches, terminal fates, roulette) drop back to the scalar stage
//! functions in [`super::scalar`], reusing their exact tally bookkeeping.
//!
//! # Determinism
//!
//! The batch kernel is fully deterministic: lanes draw from the task's RNG
//! substream in lane order at fixed points of each superstep, so the same
//! scenario + seed + task split reproduces byte-identical tallies on every
//! backend — the engine's reproducibility contract holds *within* the tier.
//! It is **not** bit-compatible with the exact tier: the stream is consumed
//! in batch order rather than per-photon order (and both spin uniforms are
//! drawn before the zero-weight check the scalar kernel short-circuits), so
//! individual trajectories differ while every tally agrees statistically.
//! The `fast_tier_validation` suite pins that agreement with tally-level
//! z-tests against the exact tier.
//!
//! # Feature surface
//!
//! [`crate::Simulation::validate`] rejects `Fast` combined with trajectory
//! recording (`path_grid`, `record_paths`, `archive`) and with classical
//! boundary splitting, so this kernel only ever runs whole-packet
//! probabilistic walks and never materializes vertex lists.

use crate::kernel::{scalar, DetectionState};
use crate::sim::{Scratch, Simulation};
use crate::tally::Tally;
use lumen_photon::approx;
use lumen_photon::fresnel::{interact_with_boundary_axis, BoundaryOutcome};
use lumen_photon::{BoundaryMode, Fate, Photon, Vec3};
use lumen_tissue::{BoundaryHit, TissueGeometry};
use mcrng::McRng;

/// Photon lanes stepped per superstep. 32 lanes of `f64` fill eight AVX2
/// (or four AVX-512) vectors per array sweep — wide enough to amortise the
/// masked-lane waste from divergent terminations, small enough that the
/// whole pool state stays resident in L1.
pub(crate) const LANES: usize = 32;

/// Same near-vertical guard as the scalar spin (`|uz|` above this uses the
/// degenerate-rotation special case).
const NEARLY_VERTICAL: f64 = 1.0 - 1e-12;

/// Everything a superstep needs besides the lane pool itself, grouped so
/// the stage methods stay well under clippy's argument limit.
struct StreamCtx<'a, G, R> {
    sim: &'a Simulation,
    geom: &'a G,
    rng: &'a mut R,
    tally: &'a mut Tally,
    /// Photons not yet launched.
    budget: u64,
}

/// The lane pool: one photon per lane, struct-of-arrays.
struct Pool {
    // Photon state (the SoA transpose of [`Photon`]).
    px: [f64; LANES],
    py: [f64; LANES],
    pz: [f64; LANES],
    ux: [f64; LANES],
    uy: [f64; LANES],
    uz: [f64; LANES],
    weight: [f64; LANES],
    pathlength: [f64; LANES],
    max_depth: [f64; LANES],
    scatters: [u32; LANES],
    layer: [usize; LANES],
    fate: [Fate; LANES],
    // Walk state.
    step_mfps: [f64; LANES],
    interactions: [u32; LANES],
    alive: [bool; LANES],
    // Cached optics of `region` (refreshed when `layer` changes), spread
    // into parallel arrays so the hot loops read contiguous f64 streams.
    region: [usize; LANES],
    mu_t: [f64; LANES],
    inv_mu_t: [f64; LANES],
    absorb_frac: [f64; LANES],
    g_hg: [f64; LANES],
    n_idx: [f64; LANES],
    transparent: [bool; LANES],
    // Per-lane per-photon bookkeeping, reusing the scalar kernel's types
    // so `finish_stage` consumes them directly.
    scratch: Vec<Scratch>,
    detection: Vec<DetectionState>,
    regions: usize,
}

impl Pool {
    fn new(regions: usize) -> Self {
        Self {
            px: [0.0; LANES],
            py: [0.0; LANES],
            pz: [0.0; LANES],
            ux: [0.0; LANES],
            uy: [0.0; LANES],
            uz: [1.0; LANES],
            weight: [0.0; LANES],
            pathlength: [0.0; LANES],
            max_depth: [0.0; LANES],
            scatters: [0; LANES],
            layer: [0; LANES],
            fate: [Fate::Alive; LANES],
            step_mfps: [0.0; LANES],
            interactions: [0; LANES],
            alive: [false; LANES],
            region: [0; LANES],
            mu_t: [0.0; LANES],
            inv_mu_t: [0.0; LANES],
            absorb_frac: [0.0; LANES],
            g_hg: [0.0; LANES],
            n_idx: [1.0; LANES],
            transparent: [false; LANES],
            scratch: (0..LANES).map(|_| Scratch::default()).collect(),
            detection: (0..LANES).map(|_| DetectionState::default()).collect(),
            regions,
        }
    }

    /// Gather lane `l` back into a [`Photon`] for the scalar stages.
    fn materialize(&self, l: usize) -> Photon {
        Photon {
            pos: Vec3::new(self.px[l], self.py[l], self.pz[l]),
            dir: Vec3::new(self.ux[l], self.uy[l], self.uz[l]),
            weight: self.weight[l],
            pathlength: self.pathlength[l],
            layer: self.layer[l],
            scatters: self.scatters[l],
            max_depth: self.max_depth[l],
            fate: self.fate[l],
        }
    }

    /// Scatter a [`Photon`] (possibly mutated by a scalar stage) back into
    /// lane `l`.
    fn write_back(&mut self, l: usize, p: &Photon) {
        self.px[l] = p.pos.x;
        self.py[l] = p.pos.y;
        self.pz[l] = p.pos.z;
        self.ux[l] = p.dir.x;
        self.uy[l] = p.dir.y;
        self.uz[l] = p.dir.z;
        self.weight[l] = p.weight;
        self.pathlength[l] = p.pathlength;
        self.layer[l] = p.layer;
        self.scatters[l] = p.scatters;
        self.max_depth[l] = p.max_depth;
        self.fate[l] = p.fate;
    }

    /// Refresh the cached optics arrays from lane `l`'s current region.
    fn refresh_optics<G: TissueGeometry>(&mut self, l: usize, geom: &G) {
        let region = self.layer[l];
        let d = geom.derived(region);
        self.region[l] = region;
        self.mu_t[l] = d.mu_t;
        self.inv_mu_t[l] = d.inv_mu_t;
        self.absorb_frac[l] = d.absorb_frac;
        self.g_hg[l] = d.g;
        self.n_idx[l] = d.n;
        self.transparent[l] = d.transparent;
    }

    /// Advance lane `l` by `distance` mm along its direction, accruing
    /// pathlength, the depth high-water mark, and the region's partial
    /// path (the scalar loop's per-hop `partial_path` update).
    fn advance(&mut self, l: usize, distance: f64) {
        self.px[l] += self.ux[l] * distance;
        self.py[l] += self.uy[l] * distance;
        self.pz[l] += self.uz[l] * distance;
        self.pathlength[l] += distance;
        if self.pz[l] > self.max_depth[l] {
            self.max_depth[l] = self.pz[l];
        }
        self.scratch[l].partial_path[self.layer[l]] += distance;
    }

    /// Fill lane `l` with the next photon from the budget. Launch misses
    /// (photons terminated by the source itself) are finished immediately
    /// and the next photon is tried; when the budget is exhausted the lane
    /// goes dark.
    fn try_launch<G: TissueGeometry, R: McRng>(&mut self, l: usize, cx: &mut StreamCtx<'_, G, R>) {
        while cx.budget > 0 {
            cx.budget -= 1;
            let photon = scalar::launch_stage(cx.sim, cx.geom, cx.rng, cx.tally);
            self.scratch[l].reset(self.regions);
            self.scratch[l].reached[photon.layer] = true;
            self.detection[l] = DetectionState::default();
            if photon.survived() {
                self.write_back(l, &photon);
                self.refresh_optics(l, cx.geom);
                self.step_mfps[l] = 0.0;
                self.interactions[l] = 0;
                self.alive[l] = true;
                return;
            }
            scalar::finish_stage(
                cx.sim,
                &photon,
                &self.scratch[l],
                cx.tally,
                &self.detection[l],
                None,
            );
        }
        self.alive[l] = false;
    }

    /// Finish lane `l`'s photon (whose terminal fate is already set in
    /// `self.fate[l]`) and refill the lane from the budget.
    fn retire<G: TissueGeometry, R: McRng>(&mut self, l: usize, cx: &mut StreamCtx<'_, G, R>) {
        let photon = self.materialize(l);
        scalar::finish_stage(cx.sim, &photon, &self.scratch[l], cx.tally, &self.detection[l], None);
        self.try_launch(l, cx);
    }

    /// Resolve a boundary encounter on lane `l`: external surfaces run the
    /// exact scalar surface stage (Fresnel escape / detection / internal
    /// reflection); internal interfaces do probabilistic whole-packet
    /// reflection or refraction.
    fn boundary_event<G: TissueGeometry, R: McRng>(
        &mut self,
        l: usize,
        hit: BoundaryHit,
        cx: &mut StreamCtx<'_, G, R>,
    ) {
        let n_i = self.n_idx[l];
        let n_t = cx.geom.neighbour_n(self.layer[l], &hit);
        if let Some(next) = hit.next_region {
            let dir = Vec3::new(self.ux[l], self.uy[l], self.uz[l]);
            match interact_with_boundary_axis(
                dir,
                hit.axis,
                n_i,
                n_t,
                BoundaryMode::Probabilistic,
                cx.rng,
            ) {
                BoundaryOutcome::Reflected { dir, .. } => {
                    self.ux[l] = dir.x;
                    self.uy[l] = dir.y;
                    self.uz[l] = dir.z;
                }
                BoundaryOutcome::Transmitted { dir, .. } => {
                    self.ux[l] = dir.x;
                    self.uy[l] = dir.y;
                    self.uz[l] = dir.z;
                    self.layer[l] = next;
                    self.scratch[l].reached[next] = true;
                }
            }
        } else {
            let mut photon = self.materialize(l);
            let ctx =
                scalar::SurfaceContext { n_i, n_t, axis: hit.axis, is_top: hit.is_top_surface };
            // The archive event is irrelevant here: validate() rejects
            // Fast + archive, so there is no archive to append to.
            let _event = scalar::surface_stage(
                cx.sim,
                &ctx,
                &mut photon,
                cx.rng,
                cx.tally,
                &mut self.detection[l],
            );
            self.write_back(l, &photon);
            if !photon.survived() {
                self.retire(l, cx);
            }
        }
    }

    /// One lockstep superstep: every live lane attempts one hop and, when
    /// the step ends inside the medium, one interaction.
    fn superstep<G: TissueGeometry, R: McRng>(&mut self, cx: &mut StreamCtx<'_, G, R>) {
        // --- bookkeeping + fresh-step draws (lane order) ---
        let mut u_step = [1.0_f64; LANES];
        for (l, u) in u_step.iter_mut().enumerate() {
            if !self.alive[l] {
                continue;
            }
            self.interactions[l] += 1;
            if self.interactions[l] > cx.sim.options.max_interactions {
                self.fate[l] = Fate::Expired;
                self.retire(l, cx);
                continue;
            }
            if self.layer[l] != self.region[l] {
                self.refresh_optics(l, cx.geom);
            }
            if self.step_mfps[l] <= 0.0 {
                *u = cx.rng.next_f64_open();
            }
        }

        // --- free-path sampling (full width, vectorizable) ---
        // Lanes with unspent step budget drew no uniform (u = 1, ln 1 = 0),
        // so the masked select folds into a single branch-free update.
        let mut fresh = [0.0_f64; LANES];
        for (f, u) in fresh.iter_mut().zip(&u_step) {
            *f = -approx::fast_ln(*u);
        }
        for (s, f) in self.step_mfps.iter_mut().zip(&fresh) {
            *s = s.max(0.0) + f;
        }

        // --- hop: advance, classify, resolve boundaries (lane order) ---
        // Lanes (re)launched mid-superstep hold step_mfps == 0 and wait for
        // the next superstep.
        let mut interact = [false; LANES];
        for (l, flag) in interact.iter_mut().enumerate() {
            if !self.alive[l] || self.step_mfps[l] <= 0.0 {
                continue;
            }
            let pos = Vec3::new(self.px[l], self.py[l], self.pz[l]);
            if !self.transparent[l] {
                let geometric = self.step_mfps[l] * self.inv_mu_t[l];
                // Same factor-2 safety margin as the scalar hop stage.
                if geometric <= 0.5 * cx.geom.min_boundary_distance(pos, self.layer[l]) {
                    self.advance(l, geometric);
                    self.step_mfps[l] = 0.0;
                    *flag = true;
                    continue;
                }
            }
            let dir = Vec3::new(self.ux[l], self.uy[l], self.uz[l]);
            let hit = cx.geom.boundary_hit(pos, dir, self.layer[l]);
            if self.transparent[l] {
                if !hit.distance.is_finite() {
                    // Degenerate geometry (horizontal flight in a
                    // transparent slab): retire rather than loop forever.
                    self.fate[l] = Fate::Expired;
                    self.retire(l, cx);
                    continue;
                }
                self.advance(l, hit.distance);
                self.boundary_event(l, hit, cx);
                continue;
            }
            let geometric = self.step_mfps[l] * self.inv_mu_t[l];
            if geometric <= hit.distance {
                self.advance(l, geometric);
                self.step_mfps[l] = 0.0;
                *flag = true;
            } else {
                self.advance(l, hit.distance);
                self.step_mfps[l] = (self.step_mfps[l] - hit.distance * self.mu_t[l]).max(0.0);
                self.boundary_event(l, hit, cx);
            }
        }

        // --- drop + spin draws (lane order) ---
        // Both spin uniforms are drawn up front even for the (pure-absorber
        // only) lanes the weight check then kills — unlike the scalar
        // kernel, which short-circuits; the tiers own distinct stream
        // disciplines anyway.
        let mut u_hg = [0.5_f64; LANES];
        let mut u_az = [0.0_f64; LANES];
        for l in 0..LANES {
            if !interact[l] {
                continue;
            }
            u_hg[l] = cx.rng.next_f64();
            u_az[l] = cx.rng.next_f64();
            self.scratch[l].collisions[self.layer[l]] += 1;
            let deposited = self.weight[l] * self.absorb_frac[l];
            self.weight[l] -= deposited;
            cx.tally.absorbed_by_layer[self.layer[l]] += deposited;
            if cx.tally.absorption_grid.is_some() || cx.tally.absorption_rz.is_some() {
                let pos = Vec3::new(self.px[l], self.py[l], self.pz[l]);
                if let Some(grid) = cx.tally.absorption_grid.as_mut() {
                    grid.deposit(pos, deposited);
                }
                if let Some(rz) = cx.tally.absorption_rz.as_mut() {
                    rz.deposit(pos.radial(), pos.z, deposited);
                }
            }
            if self.weight[l] <= 0.0 {
                interact[l] = false;
                self.fate[l] = Fate::Absorbed;
                self.retire(l, cx);
            }
        }

        // --- spin (full width, vectorizable) ---
        // Every lane computes; the masked write-back below discards the
        // lanes that did not interact. Divisions by zero in dead or
        // degenerate lanes produce inf/NaN that the selects drop.
        let mut nx = [0.0_f64; LANES];
        let mut ny = [0.0_f64; LANES];
        let mut nz = [0.0_f64; LANES];
        for l in 0..LANES {
            // Henyey–Greenstein polar cosine (same formula and isotropic
            // fallback as `mcrng::henyey_greenstein_cos`, selected
            // branch-free).
            let g = self.g_hg[l];
            let u = u_hg[l];
            let iso_like = g.abs() < 1e-6;
            let g_safe = if iso_like { 1.0 } else { g };
            let frac = (1.0 - g * g) / (1.0 - g + 2.0 * g * u);
            let hg = (1.0 + g * g - frac * frac) / (2.0 * g_safe);
            let cos_t = (if iso_like { 2.0 * u - 1.0 } else { hg }).clamp(-1.0, 1.0);
            let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
            let (sin_p, cos_p) = approx::sincos_unit(u_az[l]);
            // MCML rotation, with the near-vertical special case.
            let (dx, dy, dz) = (self.ux[l], self.uy[l], self.uz[l]);
            let denom = (1.0 - dz * dz).sqrt();
            let inv_denom = 1.0 / denom;
            let gx = sin_t * (dx * dz * cos_p - dy * sin_p) * inv_denom + dx * cos_t;
            let gy = sin_t * (dy * dz * cos_p + dx * sin_p) * inv_denom + dy * cos_t;
            let gz = -sin_t * cos_p * denom + dz * cos_t;
            let vertical = dz.abs() > NEARLY_VERTICAL;
            let (mut x, mut y, mut z) = if vertical {
                (sin_t * cos_p, sin_t * sin_p, cos_t * dz.signum())
            } else {
                (gx, gy, gz)
            };
            // One Newton–Raphson step towards unit norm (replaces the
            // scalar kernel's division by the exact norm; the residual is
            // quadratically small for near-unit inputs, so drift stays
            // bounded over arbitrarily long walks).
            let nn = x * x + y * y + z * z;
            let scale = 1.5 - 0.5 * nn;
            x *= scale;
            y *= scale;
            z *= scale;
            nx[l] = x;
            ny[l] = y;
            nz[l] = z;
        }
        for l in 0..LANES {
            if interact[l] {
                self.ux[l] = nx[l];
                self.uy[l] = ny[l];
                self.uz[l] = nz[l];
                self.scatters[l] += 1;
            }
        }

        // --- roulette (lane order, rare) ---
        let cfg = cx.sim.options.roulette;
        for (l, &interacted) in interact.iter().enumerate() {
            if !interacted || self.weight[l] >= cfg.threshold {
                continue;
            }
            if cx.rng.next_f64() < cfg.survival {
                self.weight[l] /= cfg.survival;
            } else {
                self.weight[l] = 0.0;
                self.fate[l] = Fate::RouletteKilled;
                self.retire(l, cx);
            }
        }
    }
}

/// Run `n` photons of the fast tier from `rng` into `tally`.
///
/// The pool keeps every lane busy until the photon budget runs dry: a lane
/// whose photon terminates refills itself immediately, so tail divergence
/// only costs idle lanes during the final [`LANES`] photons of the stream.
pub(crate) fn run_stream<G: TissueGeometry, R: McRng>(
    sim: &Simulation,
    geom: &G,
    n: u64,
    rng: &mut R,
    tally: &mut Tally,
) {
    let mut cx = StreamCtx { sim, geom, rng, tally, budget: n };
    let mut pool = Pool::new(geom.region_count());
    for l in 0..LANES {
        pool.try_launch(l, &mut cx);
    }
    while pool.alive.contains(&true) {
        pool.superstep(&mut cx);
    }
}
