//! Kernel-stage architecture for the photon transport loop.
//!
//! The paper's Fig 1 loop decomposes into five stages — **launch**, **hop**
//! (free-path sampling + propagation), **interact** (drop/spin/roulette),
//! **surface** (Fresnel escape/reflection at external boundaries), and
//! **finish** (terminal-fate bookkeeping). [`scalar`] implements them as the
//! bit-pinned reference path: pure code motion out of the former monolithic
//! `trace_photon_in`, byte-identical to every pre-refactor golden snapshot.
//!
//! [`batch`] is the second implementation of the same stages: a
//! structure-of-arrays tracer that steps a pool of photon lanes in lockstep,
//! replacing the libm calls that dominate the scalar profile (sincos ~14 ns,
//! ln ~7 ns of ~55 ns per interaction — see `docs/PERFORMANCE.md`) with the
//! polynomial approximations in [`lumen_photon::approx`]. It backs the
//! [`Precision::Fast`](crate::sim::Precision) tier and is validated
//! statistically (tally-level z-tests), not bit-for-bit.
//!
//! The dispatch seam is [`crate::Simulation::run_stream`]: `Exact` scenarios
//! run [`scalar`], `Fast` scenarios run [`batch`]. Everything above that
//! seam — task decomposition, RNG substreams, tally merging, every backend —
//! is tier-agnostic.

pub(crate) mod batch;
pub(crate) mod scalar;

/// Detection bookkeeping accumulated while one photon walks.
///
/// Probabilistic boundary mode detects at most once (the walk ends there);
/// classical mode can split one packet across several escape events, so the
/// *first* detection supplies the path statistics while `weight_total`
/// accumulates every detected fraction.
#[derive(Default)]
pub(crate) struct DetectionState {
    /// `(pathlength, weight_out)` of the first detected escape.
    pub first: Option<(f64, f64)>,
    /// Total weight carried out through the detector by this photon.
    pub weight_total: f64,
}
