//! Light sources: the paper's "different sources (delta, Gaussian,
//! uniform)".
//!
//! All sources launch photons downward (+z) at the tissue surface z = 0,
//! centred on the origin; they differ in the transverse footprint:
//!
//! * [`Source::Delta`] — an idealised laser/pencil beam: every photon
//!   enters at exactly (0, 0, 0);
//! * [`Source::Gaussian`] — beam with a Gaussian irradiance profile of the
//!   given 1/e² radius (common for real laser optodes);
//! * [`Source::Uniform`] — flat-top footprint of the given radius (fibre
//!   bundle / LED).
//!
//! On entry the packet suffers specular reflection at the air–tissue
//! interface; the reflected fraction `R_sp = ((n₀−n₁)/(n₀+n₁))²` is removed
//! from the packet weight and reported to the tally, matching MCML.

use lumen_photon::{fresnel_reflectance, Fate, Photon, Vec3};
use lumen_tissue::TissueGeometry;
use mcrng::{gaussian_pair, uniform_disc, McRng};
use serde::{Deserialize, Serialize};

/// Source footprint on the tissue surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Source {
    /// Idealised laser: all photons at the origin.
    Delta,
    /// Gaussian profile; `radius` is the 1/e² intensity radius (mm).
    Gaussian { radius: f64 },
    /// Uniform (flat-top) disc of the given radius (mm).
    Uniform { radius: f64 },
}

impl Source {
    /// Validate footprint parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Source::Delta => Ok(()),
            Source::Gaussian { radius } | Source::Uniform { radius } => {
                if radius > 0.0 && radius.is_finite() {
                    Ok(())
                } else {
                    Err(format!("source radius must be finite and positive, got {radius}"))
                }
            }
        }
    }

    /// Human-readable name, used in experiment printouts.
    pub fn name(&self) -> &'static str {
        match self {
            Source::Delta => "delta",
            Source::Gaussian { .. } => "gaussian",
            Source::Uniform { .. } => "uniform",
        }
    }

    /// Sample an entry position on the surface plane.
    pub fn sample_position<R: McRng>(&self, rng: &mut R) -> Vec3 {
        match *self {
            Source::Delta => Vec3::ZERO,
            Source::Gaussian { radius } => {
                // 1/e² radius ⇒ irradiance ∝ exp(−2 r²/radius²), i.e. each
                // Cartesian coordinate is N(0, σ²) with σ = radius / 2.
                let sigma = radius / 2.0;
                let (gx, gy) = gaussian_pair(rng);
                Vec3::new(sigma * gx, sigma * gy, 0.0)
            }
            Source::Uniform { radius } => {
                let (x, y) = uniform_disc(rng, radius);
                Vec3::new(x, y, 0.0)
            }
        }
    }

    /// Launch one photon into the tissue: sample the footprint, apply
    /// specular reflection at the air–tissue interface, and return the
    /// photon plus the specularly reflected weight (for the tally).
    ///
    /// A footprint sample that falls outside a finite geometry's lateral
    /// extent (possible only for voxel grids) never enters the tissue: the
    /// returned photon is already terminated as [`Fate::ReflectedOut`] with
    /// its full weight, and the engine tallies it as diffuse reflectance.
    pub fn launch<G: TissueGeometry + ?Sized, R: McRng>(
        &self,
        geometry: &G,
        rng: &mut R,
    ) -> (Photon, f64) {
        let pos = self.sample_position(rng);
        match geometry.entry_region(pos) {
            Some(region) => {
                let mut photon = Photon::launch(pos, Vec3::PLUS_Z, region);
                // Normal incidence specular reflection ambient -> surface.
                let r_sp =
                    fresnel_reflectance(geometry.ambient_n(), geometry.optics(region).n, 1.0);
                photon.weight -= r_sp;
                (photon, r_sp)
            }
            None => {
                let mut photon = Photon::launch(pos, Vec3::PLUS_Z, 0);
                photon.terminate(Fate::ReflectedOut);
                (photon, 0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_tissue::presets::homogeneous_white_matter;
    use mcrng::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(17)
    }

    #[test]
    fn delta_always_origin() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(Source::Delta.sample_position(&mut r), Vec3::ZERO);
        }
    }

    #[test]
    fn uniform_within_radius() {
        let mut r = rng();
        let s = Source::Uniform { radius: 1.5 };
        for _ in 0..10_000 {
            let p = s.sample_position(&mut r);
            assert!(p.radial() <= 1.5 + 1e-12);
            assert_eq!(p.z, 0.0);
        }
    }

    #[test]
    fn gaussian_radius_statistics() {
        // With sigma = radius/2, E[r²] = 2 sigma² = radius²/2.
        let mut r = rng();
        let radius = 2.0;
        let s = Source::Gaussian { radius };
        let n = 100_000;
        let mean_r2: f64 = (0..n)
            .map(|_| {
                let p = s.sample_position(&mut r);
                p.x * p.x + p.y * p.y
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean_r2 - radius * radius / 2.0).abs() < 0.05, "E[r2] = {mean_r2}");
    }

    #[test]
    fn launch_applies_specular_reflection() {
        let tissue = homogeneous_white_matter();
        let mut r = rng();
        let (photon, r_sp) = Source::Delta.launch(&tissue, &mut r);
        // air (1.0) -> tissue (1.4): R_sp = (0.4/2.4)^2.
        let expect = (0.4f64 / 2.4).powi(2);
        assert!((r_sp - expect).abs() < 1e-12);
        assert!((photon.weight - (1.0 - expect)).abs() < 1e-12);
        assert_eq!(photon.dir, Vec3::PLUS_Z);
        assert_eq!(photon.layer, 0);
    }

    #[test]
    fn footprint_means_are_centred() {
        let mut r = rng();
        for s in [Source::Gaussian { radius: 1.0 }, Source::Uniform { radius: 1.0 }] {
            let n = 50_000;
            let (mut sx, mut sy) = (0.0, 0.0);
            for _ in 0..n {
                let p = s.sample_position(&mut r);
                sx += p.x;
                sy += p.y;
            }
            assert!((sx / n as f64).abs() < 0.01, "{}", s.name());
            assert!((sy / n as f64).abs() < 0.01, "{}", s.name());
        }
    }

    #[test]
    fn validation() {
        assert!(Source::Delta.validate().is_ok());
        assert!(Source::Gaussian { radius: 1.0 }.validate().is_ok());
        assert!(Source::Gaussian { radius: 0.0 }.validate().is_err());
        assert!(Source::Uniform { radius: -1.0 }.validate().is_err());
        assert!(Source::Uniform { radius: f64::NAN }.validate().is_err());
    }

    #[test]
    fn names() {
        assert_eq!(Source::Delta.name(), "delta");
        assert_eq!(Source::Gaussian { radius: 1.0 }.name(), "gaussian");
        assert_eq!(Source::Uniform { radius: 1.0 }.name(), "uniform");
    }
}
