//! Detector geometry and pathlength gating.
//!
//! In the paper a photon "passes through the detector" when it exits the
//! top surface inside the detector aperture; its path is then saved and the
//! walk ends. The aperture is a circle of radius `radius` centred at
//! `(separation, 0, 0)` — `separation` is the source–detector spacing the
//! NIRS literature parameterises everything by (20–60 mm in the paper's
//! discussion).
//!
//! The paper also supports *gated differential pathlengths*: in a real
//! pulsed experiment source and detector only operate between pulses, so
//! only photons whose total pathlength falls inside a gate window are
//! accepted. [`GateWindow`] reproduces this.

use crate::error::ConfigError;
use lumen_photon::Vec3;
use serde::{Deserialize, Serialize};

/// Acceptance window on photon pathlength (mm), simulating time gating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateWindow {
    /// Minimum accepted pathlength (mm).
    pub min_mm: f64,
    /// Maximum accepted pathlength (mm); `f64::INFINITY` = ungated upper end.
    pub max_mm: f64,
}

impl GateWindow {
    /// A window accepting everything (gating disabled).
    pub const OPEN: GateWindow = GateWindow { min_mm: 0.0, max_mm: f64::INFINITY };

    /// Construct a validated window.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(a > b)` also rejects NaN
    pub fn new(min_mm: f64, max_mm: f64) -> Result<Self, ConfigError> {
        if min_mm < 0.0 || !(max_mm > min_mm) {
            return Err(ConfigError::BadGate { min_mm, max_mm });
        }
        Ok(Self { min_mm, max_mm })
    }

    /// Whether a pathlength passes the gate.
    #[inline]
    pub fn accepts(&self, pathlength_mm: f64) -> bool {
        pathlength_mm >= self.min_mm && pathlength_mm <= self.max_mm
    }

    /// True when the window is fully open.
    pub fn is_open(&self) -> bool {
        self.min_mm == 0.0 && self.max_mm.is_infinite()
    }
}

impl Default for GateWindow {
    fn default() -> Self {
        Self::OPEN
    }
}

/// Detector aperture on the tissue surface.
///
/// Two geometries are supported:
///
/// * a **disc** of radius `radius` centred at `(separation, 0)` — a
///   physical optode (the default);
/// * a **ring** accepting any exit whose radial distance from the source
///   axis is within `radius` of `separation`. By azimuthal symmetry of the
///   source this measures the same physics as the disc but with far higher
///   statistical efficiency (MCML's radially-binned reflectance uses the
///   same trick); use it for penetration/pathlength statistics at large
///   separations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// Source–detector separation along +x (mm).
    pub separation: f64,
    /// Aperture radius (disc) or half-width (ring), in mm.
    pub radius: f64,
    /// Ring (annular) geometry instead of a disc.
    pub ring: bool,
    /// Minimum cosine (in the ambient medium) of the exit angle a photon
    /// may have and still be collected — `None` accepts all angles.
    /// Set via [`Detector::with_numerical_aperture`].
    pub min_exit_cos: Option<f64>,
    /// Pathlength gate; photons outside the window are treated as ordinary
    /// diffuse reflectance rather than detections.
    pub gate: GateWindow,
}

impl Detector {
    /// Disc detector of radius `radius` at the given separation, ungated.
    pub fn new(separation: f64, radius: f64) -> Self {
        Self { separation, radius, ring: false, min_exit_cos: None, gate: GateWindow::OPEN }
    }

    /// Annular detector accepting exits at radial distance
    /// `separation ± half_width` from the source axis, ungated.
    pub fn ring(separation: f64, half_width: f64) -> Self {
        Self {
            separation,
            radius: half_width,
            ring: true,
            min_exit_cos: None,
            gate: GateWindow::OPEN,
        }
    }

    /// Restrict collection to a fibre numerical aperture: only photons
    /// exiting within `asin(na / n_ambient)` of the surface normal are
    /// detected (a real optode's acceptance cone). `na >= n_ambient`
    /// accepts everything.
    pub fn with_numerical_aperture(mut self, na: f64, n_ambient: f64) -> Self {
        assert!(na > 0.0 && n_ambient >= 1.0, "invalid numerical aperture");
        let sin_max = (na / n_ambient).min(1.0);
        self.min_exit_cos = Some((1.0 - sin_max * sin_max).sqrt());
        self
    }

    /// Does an exit-angle cosine (ambient side) pass the acceptance cone?
    #[inline]
    pub fn accepts_angle(&self, exit_cos: f64) -> bool {
        match self.min_exit_cos {
            Some(min) => exit_cos >= min,
            None => true,
        }
    }

    /// Attach a pathlength gate.
    pub fn with_gate(mut self, gate: GateWindow) -> Self {
        self.gate = gate;
        self
    }

    /// Validate geometry.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.separation >= 0.0 && self.separation.is_finite()) {
            return Err(format!(
                "detector separation must be finite >= 0, got {}",
                self.separation
            ));
        }
        if !(self.radius > 0.0 && self.radius.is_finite()) {
            return Err(format!("detector radius must be finite > 0, got {}", self.radius));
        }
        if self.gate.min_mm < 0.0 || self.gate.max_mm <= self.gate.min_mm {
            return Err(format!("invalid gate [{}, {}]", self.gate.min_mm, self.gate.max_mm));
        }
        if let Some(c) = self.min_exit_cos {
            if !(0.0..=1.0).contains(&c) {
                return Err(format!("acceptance cosine must be in [0,1], got {c}"));
            }
        }
        Ok(())
    }

    /// Does a photon exiting the surface at `exit_pos` hit the aperture?
    /// (Geometry only; gating is checked separately so the tally can count
    /// gate rejections.)
    #[inline]
    pub fn in_aperture(&self, exit_pos: Vec3) -> bool {
        if self.ring {
            (exit_pos.radial() - self.separation).abs() <= self.radius
        } else {
            let dx = exit_pos.x - self.separation;
            let dy = exit_pos.y;
            dx * dx + dy * dy <= self.radius * self.radius
        }
    }

    /// Full detection test: aperture and gate.
    #[inline]
    pub fn detects(&self, exit_pos: Vec3, pathlength_mm: f64) -> bool {
        self.in_aperture(exit_pos) && self.gate.accepts(pathlength_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aperture_geometry() {
        let d = Detector::new(30.0, 2.0);
        assert!(d.in_aperture(Vec3::new(30.0, 0.0, 0.0)));
        assert!(d.in_aperture(Vec3::new(31.9, 0.0, 0.0)));
        assert!(d.in_aperture(Vec3::new(30.0, -1.9, 0.0)));
        assert!(!d.in_aperture(Vec3::new(32.1, 0.0, 0.0)));
        assert!(!d.in_aperture(Vec3::new(0.0, 0.0, 0.0)));
        // Exactly on the rim counts.
        assert!(d.in_aperture(Vec3::new(32.0, 0.0, 0.0)));
    }

    #[test]
    fn gate_accepts_window() {
        let g = GateWindow::new(50.0, 200.0).unwrap();
        assert!(!g.accepts(49.9));
        assert!(g.accepts(50.0));
        assert!(g.accepts(125.0));
        assert!(g.accepts(200.0));
        assert!(!g.accepts(200.1));
    }

    #[test]
    fn open_gate_accepts_everything() {
        assert!(GateWindow::OPEN.is_open());
        assert!(GateWindow::OPEN.accepts(0.0));
        assert!(GateWindow::OPEN.accepts(1e12));
    }

    #[test]
    fn gated_detection_combines_both() {
        let d = Detector::new(10.0, 1.0).with_gate(GateWindow::new(20.0, 100.0).unwrap());
        let at = Vec3::new(10.0, 0.0, 0.0);
        assert!(d.detects(at, 50.0));
        assert!(!d.detects(at, 10.0)); // too early
        assert!(!d.detects(at, 150.0)); // too late
        assert!(!d.detects(Vec3::new(20.0, 0.0, 0.0), 50.0)); // misses aperture
    }

    #[test]
    fn ring_aperture_accepts_any_azimuth() {
        let d = Detector::ring(30.0, 2.0);
        assert!(d.in_aperture(Vec3::new(30.0, 0.0, 0.0)));
        assert!(d.in_aperture(Vec3::new(0.0, 30.0, 0.0)));
        assert!(d.in_aperture(Vec3::new(-21.5, -21.5, 0.0))); // r ≈ 30.4
        assert!(d.in_aperture(Vec3::new(28.1, 0.0, 0.0)));
        assert!(!d.in_aperture(Vec3::new(27.9, 0.0, 0.0)));
        assert!(!d.in_aperture(Vec3::new(0.0, 0.0, 0.0)));
        assert!(!d.in_aperture(Vec3::new(33.0, 0.0, 0.0)));
    }

    #[test]
    fn numerical_aperture_restricts_angles() {
        // NA 0.5 in air: sin_max = 0.5, cos_min = sqrt(0.75) ~ 0.866.
        let d = Detector::new(10.0, 1.0).with_numerical_aperture(0.5, 1.0);
        assert!(d.accepts_angle(1.0)); // normal exit
        assert!(d.accepts_angle(0.90));
        assert!(!d.accepts_angle(0.80)); // outside the cone

        // No NA accepts grazing exits.
        assert!(Detector::new(10.0, 1.0).accepts_angle(0.01));
        // NA >= n accepts everything.
        let open = Detector::new(10.0, 1.0).with_numerical_aperture(2.0, 1.0);
        assert!(open.accepts_angle(0.0));
    }

    #[test]
    fn bad_windows_rejected_with_typed_errors() {
        assert_eq!(
            GateWindow::new(-1.0, 10.0),
            Err(ConfigError::BadGate { min_mm: -1.0, max_mm: 10.0 })
        );
        assert_eq!(
            GateWindow::new(10.0, 10.0),
            Err(ConfigError::BadGate { min_mm: 10.0, max_mm: 10.0 })
        );
        assert!(GateWindow::new(10.0, 5.0).is_err());
        assert!(GateWindow::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn detector_validation() {
        assert!(Detector::new(30.0, 2.0).validate().is_ok());
        assert!(Detector::new(-1.0, 2.0).validate().is_err());
        assert!(Detector::new(30.0, 0.0).validate().is_err());
        let mut d = Detector::new(30.0, 2.0);
        d.gate = GateWindow { min_mm: 5.0, max_mm: 1.0 };
        assert!(d.validate().is_err());
    }
}
