//! Path archive + reweight evaluator — white/perturbation Monte Carlo.
//!
//! One expensive simulation can answer *any* nearby optical-property query:
//! record, per escaping photon packet, its per-region pathlengths `L_r` and
//! collision counts `k_r` ([`PathArchive`], a compact SoA), then re-score
//! every archived path for a query property set (μa′, μs′) with the standard
//! perturbation-MC likelihood ratio
//!
//! ```text
//! ratio = Π_r (μs′_r / μs_r)^{k_r} · exp(−Σ_r (μt′_r − μt_r) · L_r)
//! ```
//!
//! ([`Reweight`], a [`Backend`] that never traces a photon). The ratio is
//! evaluated in log space — one `exp` per path — so a query over a detected
//! photon set costs microseconds, not the tens of seconds of a fresh run.
//!
//! **Soundness.** Under implicit capture every collision multiplies the
//! packet weight by the albedo μs/μt and the path density contributes
//! μt·exp(−μt·ℓ) per segment; the product of (new weight)/(old weight) with
//! the path-density likelihood ratio collapses to the formula above. The
//! scattering *direction* distribution (anisotropy `g`) and the boundary
//! physics (`n`) are part of the sampled path measure, so queries must keep
//! `g` and `n` at their recorded values.
//!
//! The tally also carries *unweighted* per-photon path statistics (mean
//! pathlength, penetration depth, the per-region partial pathlengths).
//! Those are expectations over detected *trajectories*, not weighted
//! signal, so their importance factor is the trajectory-density ratio alone:
//!
//! ```text
//! λ = Π_r (μt′_r / μt_r)^{k_r} · exp(−Σ_r (μt′_r − μt_r) · L_r)
//! ```
//!
//! (collisions are sampled against μt, not μs). [`PathArchive::ratios`]
//! returns both factors from one pass; both are exactly 1.0 at the
//! recorded properties, which keeps identity replays bit-exact.
//!
//! Russian roulette cancels out of all *weighted* sums identically — a
//! survivor's 1/p weight boost is matched by the p in its path density, so
//! the weight aggregates reweight exactly on any geometry. The unweighted
//! λ-reweighted statistics ignore roulette: they are exact while detected
//! paths stay under the roulette horizon `|ln threshold| / μa` (bounded
//! geometries), and biased where the recording run roulette-thinned the
//! long-path population a μa-*lowering* query would revive —
//! `reweight_validation.rs` measures exactly this on the semi-infinite
//! adult head.
//!
//! **When it breaks.** Reweighting is exact in expectation but its variance
//! grows exponentially with the perturbation size: the log-ratio variance of
//! a scattering query scales like `k̄ (ln μs′/μs)²` with k̄ the mean
//! collision count, so archives of deep, highly scattering media only reach
//! a few percent in μs (absorption queries stay efficient to ±30% and
//! beyond — Δμa enters through pathlengths, not collision counts). The
//! [`ReweightReport::ess`] field (effective sample size,
//! `(Σ ratio)² / Σ ratio²` over detected paths) quantifies this collapse —
//! at the recorded properties it equals the detected count exactly; treat
//! results with `ess ≪ detected` as noise.

use crate::engine::{Backend, EngineError, Progress, RunReport, Scenario, WorkerAccount};
use crate::radial::RadialSpec;
use crate::results::SimulationResult;
use crate::tally::Tally;
use lumen_photon::OpticalProperties;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Archive entry class: top-surface escape outside the detector aperture.
pub const CLASS_MISSED_APERTURE: u8 = 0;
/// Archive entry class: in the aperture but outside the numerical aperture.
pub const CLASS_NA_REJECTED: u8 = 1;
/// Archive entry class: in the aperture but outside the pathlength gate.
pub const CLASS_GATE_REJECTED: u8 = 2;
/// Archive entry class: detected (aperture + angle + gate all accepted).
pub const CLASS_DETECTED: u8 = 3;
/// Archive entry class: launched outside a finite grid's lateral extent and
/// reflected at the surface with full weight (zero tissue pathlength, so
/// its weight ratio is exactly 1 under every query).
pub const CLASS_LAUNCH_MISS: u8 = 4;
/// Archive entry class: escaped through the bottom or a lateral face.
pub const CLASS_TRANSMITTED: u8 = 5;

/// Task id stamped on entries before the engine assigns the real one
/// (see [`PathArchive::stamp_task`]).
pub const TASK_UNSTAMPED: u64 = u64::MAX;

/// Knobs for archive recording, carried in
/// [`SimulationOptions::archive`](crate::SimulationOptions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordOptions {
    /// Keep only detected packets. The full archive replays every weighted
    /// tally (R(r), diffuse reflectance, transmittance); a detected-only
    /// archive answers detected-signal queries at a fraction of the memory
    /// and evaluation cost — the shape the `reweight_qps` benchmark and the
    /// inverse-solver loop want.
    pub detected_only: bool,
}

/// Compact SoA record of every escape event of a recording run, plus the
/// property-independent launch aggregates needed to rebuild a tally.
///
/// Per-entry arrays are parallel; the per-region arrays (`partial_path`,
/// `collisions`, `reached`) are row-major with stride [`regions`]
/// (`entry * regions + region`). Entries appear in trace order within a
/// task and in task-merge order across tasks, which is what makes an
/// identity reweight reproduce the recording tally's float sums bit for
/// bit.
///
/// [`regions`]: PathArchive::regions
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathArchive {
    /// Number of geometry regions (stride of the per-region arrays).
    pub regions: usize,
    /// True when only [`CLASS_DETECTED`] entries were kept.
    pub detected_only: bool,
    /// The recording run's optical properties, one per region — the
    /// denominator of every weight ratio.
    pub base: Vec<OpticalProperties>,
    /// Photons launched by the recording run.
    pub launched: u64,
    /// Specular weight lost at launch (property-independent).
    pub specular_weight: f64,
    /// Entry class ([`CLASS_MISSED_APERTURE`] .. [`CLASS_TRANSMITTED`]).
    pub class: Vec<u8>,
    /// Task id that traced each entry ([`TASK_UNSTAMPED`] until the engine
    /// stamps it); the key for [`canonical_order`](Self::canonical_order).
    pub task: Vec<u64>,
    /// Packet weight carried out at escape.
    pub exit_weight: Vec<f64>,
    /// Exit radial position √(x²+y²) (mm) — rebuilds R(r).
    pub exit_radius: Vec<f64>,
    /// Total pathlength at escape (mm); exit time is `pathlength · n / c`,
    /// or per-region via `partial_path` (see `lumen-analysis`'s ToF tools).
    pub pathlength: Vec<f64>,
    /// Deepest z reached (mm).
    pub max_depth: Vec<f64>,
    /// Scattering events over the whole walk.
    pub scatters: Vec<u32>,
    /// Pathlength accrued per region (mm), stride `regions`.
    pub partial_path: Vec<f64>,
    /// Collision (interaction) count per region, stride `regions` — the
    /// exponent `k_r` of the scattering ratio.
    pub collisions: Vec<u32>,
    /// 1 where the walk entered the region, stride `regions`.
    pub reached: Vec<u8>,
}

/// Per-region coefficients precomputed once per query so each path costs a
/// dot product and a single `exp`:
/// `ratio = exp(Σ_r k_r·ln(μs′/μs) − Σ_r Δμt_r·L_r)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCoeffs {
    /// `ln(μs′_r / μs_r)`, forced to exactly 0.0 when the query matches.
    ln_mu_s_ratio: Vec<f64>,
    /// `ln(μt′_r / μt_r)`, forced to exactly 0.0 when the query matches —
    /// the collision-power term of the *trajectory-density* ratio λ, used
    /// to reweight the tally's unweighted path statistics.
    ln_mu_t_ratio: Vec<f64>,
    /// `μt′_r − μt_r` as `(μa′−μa) + (μs′−μs)` — exactly 0.0 at identity.
    d_mu_t: Vec<f64>,
}

/// Result of one reweight evaluation: a replayed [`Tally`] plus the
/// diagnostics a caller needs to judge it.
///
/// Only quantities an escape-event archive determines are populated:
/// launch/specular aggregates, escape counts and weights, detected-photon
/// statistics, R(r), and the pathlength histogram. Absorption by layer,
/// roulette/absorbed/expired counts, and visit grids stay zero/absent —
/// they live on path interiors the archive does not store.
#[derive(Debug, Clone, PartialEq)]
pub struct ReweightReport {
    /// The replayed tally under the query properties.
    pub tally: Tally,
    /// Effective sample size `(Σ ratio)² / Σ ratio²` over detected paths.
    /// Equals the detected count exactly at the recorded properties and
    /// collapses toward 1 as the perturbation grows.
    pub ess: f64,
    /// Detected entries evaluated.
    pub detected_entries: u64,
    /// Σ ratio over detected entries — the normalizer for ratio-weighted
    /// sums (the tally's integer `detected` count keeps the *recorded*
    /// count, so means formed against it are exact only at identity).
    pub sum_ratio: f64,
}

impl PathArchive {
    /// Empty archive for `regions` regions recorded at `base` properties.
    pub fn new(regions: usize, base: Vec<OpticalProperties>, options: RecordOptions) -> Self {
        assert_eq!(base.len(), regions, "one base optics entry per region");
        Self {
            regions,
            detected_only: options.detected_only,
            base,
            launched: 0,
            specular_weight: 0.0,
            class: Vec::new(),
            task: Vec::new(),
            exit_weight: Vec::new(),
            exit_radius: Vec::new(),
            pathlength: Vec::new(),
            max_depth: Vec::new(),
            scatters: Vec::new(),
            partial_path: Vec::new(),
            collisions: Vec::new(),
            reached: Vec::new(),
        }
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// True when no entries are archived.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Record a launch (property-independent aggregates).
    #[inline]
    pub fn on_launch(&mut self, specular: f64) {
        self.launched += 1;
        self.specular_weight += specular;
    }

    /// Append one escape event.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn push(
        &mut self,
        class: u8,
        exit_weight: f64,
        exit_radius: f64,
        pathlength: f64,
        max_depth: f64,
        scatters: u32,
        partial_path: &[f64],
        collisions: &[u32],
        reached: &[bool],
    ) {
        debug_assert!(class <= CLASS_TRANSMITTED);
        debug_assert_eq!(partial_path.len(), self.regions);
        self.class.push(class);
        self.task.push(TASK_UNSTAMPED);
        self.exit_weight.push(exit_weight);
        self.exit_radius.push(exit_radius);
        self.pathlength.push(pathlength);
        self.max_depth.push(max_depth);
        self.scatters.push(scatters);
        self.partial_path.extend_from_slice(partial_path);
        self.collisions.extend_from_slice(collisions);
        self.reached.extend(reached.iter().map(|&r| u8::from(r)));
    }

    /// Append a launch that missed a finite grid's lateral extent: full
    /// weight reflects with zero tissue pathlength (ratio ≡ 1).
    pub fn push_launch_miss(&mut self, weight: f64, radius: f64) {
        let zeros_f = vec![0.0; self.regions];
        let zeros_u = vec![0u32; self.regions];
        let zeros_b = vec![false; self.regions];
        self.push(CLASS_LAUNCH_MISS, weight, radius, 0.0, 0.0, 0, &zeros_f, &zeros_u, &zeros_b);
    }

    /// Stamp every entry with the task id that traced it (the engine calls
    /// this right after `run_stream`, when the whole per-task archive
    /// belongs to one task).
    pub fn stamp_task(&mut self, task_id: u64) {
        self.task.fill(task_id);
    }

    /// Append another archive (same regions, mode, and base properties).
    /// The engines merge per-task archives in task order, so merged entry
    /// order is deterministic across backends.
    pub fn merge(&mut self, other: &PathArchive) {
        assert_eq!(self.regions, other.regions, "region count mismatch in archive merge");
        assert_eq!(self.detected_only, other.detected_only, "archive mode mismatch in merge");
        assert_eq!(self.base, other.base, "base optics mismatch in archive merge");
        self.launched += other.launched;
        self.specular_weight += other.specular_weight;
        self.class.extend_from_slice(&other.class);
        self.task.extend_from_slice(&other.task);
        self.exit_weight.extend_from_slice(&other.exit_weight);
        self.exit_radius.extend_from_slice(&other.exit_radius);
        self.pathlength.extend_from_slice(&other.pathlength);
        self.max_depth.extend_from_slice(&other.max_depth);
        self.scatters.extend_from_slice(&other.scatters);
        self.partial_path.extend_from_slice(&other.partial_path);
        self.collisions.extend_from_slice(&other.collisions);
        self.reached.extend_from_slice(&other.reached);
    }

    /// Stable-sort entries by task id, making archives comparable across
    /// merge orders (requeues, completion races). Entries within a task
    /// keep their trace order.
    pub fn canonical_order(&mut self) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| self.task[i]);
        fn apply<T: Copy>(v: &mut Vec<T>, idx: &[usize]) {
            *v = idx.iter().map(|&i| v[i]).collect();
        }
        fn apply_rows<T: Copy>(v: &mut Vec<T>, idx: &[usize], stride: usize) {
            let mut out = Vec::with_capacity(v.len());
            for &i in idx {
                out.extend_from_slice(&v[i * stride..(i + 1) * stride]);
            }
            *v = out;
        }
        apply(&mut self.class, &idx);
        apply(&mut self.task, &idx);
        apply(&mut self.exit_weight, &idx);
        apply(&mut self.exit_radius, &idx);
        apply(&mut self.pathlength, &idx);
        apply(&mut self.max_depth, &idx);
        apply(&mut self.scatters, &idx);
        apply_rows(&mut self.partial_path, &idx, self.regions);
        apply_rows(&mut self.collisions, &idx, self.regions);
        apply_rows(&mut self.reached, &idx, self.regions);
    }

    /// Precompute the per-region log-space coefficients for a query.
    ///
    /// Rejects queries the archive cannot answer soundly: region-count
    /// mismatch, invalid properties, changed `g` or `n` (they alter the
    /// sampled path measure, not just the weights), or scattering added to
    /// a region the recording run could never scatter in.
    pub fn coeffs(&self, query: &[OpticalProperties]) -> Result<QueryCoeffs, String> {
        if query.len() != self.regions {
            return Err(format!("query has {} regions, archive has {}", query.len(), self.regions));
        }
        let mut ln_mu_s_ratio = Vec::with_capacity(self.regions);
        let mut ln_mu_t_ratio = Vec::with_capacity(self.regions);
        let mut d_mu_t = Vec::with_capacity(self.regions);
        for (r, (q, b)) in query.iter().zip(&self.base).enumerate() {
            q.validate().map_err(|e| format!("region {r}: {e}"))?;
            if q.g != b.g || q.n != b.n {
                return Err(format!(
                    "region {r}: g and n must match the recording run (got g {} n {}, \
                     recorded g {} n {}); they shape the paths, not just the weights",
                    q.g, q.n, b.g, b.n
                ));
            }
            if b.mu_s == 0.0 && q.mu_s != 0.0 {
                return Err(format!(
                    "region {r}: cannot reweight mu_s to {} — the recording run never \
                     scattered there (recorded mu_s 0)",
                    q.mu_s
                ));
            }
            // Force exact zeros at identity so `exp(0.0) == 1.0` makes the
            // identity reweight bit-exact; the `k != 0` guard in `ratios`
            // keeps a 0/0 region (ln undefined) out of the sums — a region
            // with base μt = 0 cannot host a collision.
            ln_mu_s_ratio.push(if q.mu_s == b.mu_s { 0.0 } else { (q.mu_s / b.mu_s).ln() });
            let (qt, bt) = (q.mu_a + q.mu_s, b.mu_a + b.mu_s);
            ln_mu_t_ratio.push(if qt == bt || bt == 0.0 { 0.0 } else { (qt / bt).ln() });
            d_mu_t.push((q.mu_a - b.mu_a) + (q.mu_s - b.mu_s));
        }
        Ok(QueryCoeffs { ln_mu_s_ratio, ln_mu_t_ratio, d_mu_t })
    }

    /// The weight ratio of one entry under a query (one `exp` per call).
    #[inline]
    pub fn ratio(&self, entry: usize, c: &QueryCoeffs) -> f64 {
        self.ratios(entry, c).0
    }

    /// Both importance ratios of one entry under a query:
    ///
    /// * the **weight ratio** `Π (μs′/μs)^k · exp(−Σ Δμt·L)` — scales
    ///   every weight-carrying accumulator (`exit_weight`-based sums,
    ///   R(r)), because the packet's survival weighting and the sampled
    ///   path density combine into exactly this factor;
    /// * the **trajectory-density ratio** `λ = Π (μt′/μt)^k ·
    ///   exp(−Σ Δμt·L)` — scales the tally's *unweighted* per-photon path
    ///   statistics (pathlength, depth, partial-path sums), because steps
    ///   are sampled against μt, so λ alone converts an expectation over
    ///   recorded trajectories into one over perturbed trajectories.
    ///
    /// Both are exactly 1.0 at the recorded properties (their exponents
    /// are forced to 0.0 coefficient-wise), which is what makes an
    /// identity replay bit-exact.
    #[inline]
    pub fn ratios(&self, entry: usize, c: &QueryCoeffs) -> (f64, f64) {
        let row = entry * self.regions;
        let mut expo = 0.0;
        let mut pow_s = 0.0;
        let mut pow_t = 0.0;
        for r in 0..self.regions {
            let k = self.collisions[row + r];
            if k != 0 {
                pow_s += f64::from(k) * c.ln_mu_s_ratio[r];
                pow_t += f64::from(k) * c.ln_mu_t_ratio[r];
            }
            expo -= c.d_mu_t[r] * self.partial_path[row + r];
        }
        ((pow_s + expo).exp(), (pow_t + expo).exp())
    }

    /// Evaluate a query with no optional tallies attached.
    pub fn evaluate(&self, query: &[OpticalProperties]) -> Result<ReweightReport, String> {
        self.evaluate_shaped(query, None, None)
    }

    /// Re-score every archived path for `query` properties, replaying the
    /// recording run's escape events into a fresh tally — optionally with
    /// an R(r) profile and a pathlength histogram attached.
    ///
    /// At the recorded properties every ratio is exactly 1.0 and the
    /// replay reproduces the recording tally's escape-side accumulators
    /// bit for bit: entries replay in the original accumulation order,
    /// grouped into per-task partial sums that merge in task order — the
    /// same summation tree the engine's `merge_in_task_order` builds, so
    /// even the float rounding matches.
    pub fn evaluate_shaped(
        &self,
        query: &[OpticalProperties],
        reflectance: Option<RadialSpec>,
        histogram: Option<(f64, usize)>,
    ) -> Result<ReweightReport, String> {
        let c = self.coeffs(query)?;
        let fresh = || {
            let mut t = Tally::new(self.regions, None, None);
            if let Some((max_mm, bins)) = histogram {
                t = t.with_path_histogram(max_mm, bins);
            }
            if let Some(spec) = reflectance {
                t = t.with_reflectance_profile(spec);
            }
            t
        };
        let mut total = fresh();
        let mut tally = fresh();
        let mut current_task: Option<u64> = None;

        let mut sum_ratio = 0.0;
        let mut sum_ratio_sq = 0.0;
        let mut detected_entries = 0u64;
        for i in 0..self.len() {
            if current_task != Some(self.task[i]) {
                if current_task.is_some() {
                    total.merge(&tally);
                    tally = fresh();
                }
                current_task = Some(self.task[i]);
            }
            let (ratio, lambda) = self.ratios(i, &c);
            let w = ratio * self.exit_weight[i];
            let class = self.class[i];
            // R(r) sees every top-surface escape, exactly as the recording
            // run's escape handler ordered them.
            if class <= CLASS_DETECTED {
                if let Some(p) = tally.reflectance_r.as_mut() {
                    p.record(self.exit_radius[i], w);
                }
            }
            match class {
                CLASS_DETECTED => {
                    detected_entries += 1;
                    sum_ratio += ratio;
                    sum_ratio_sq += ratio * ratio;
                    let l = self.pathlength[i];
                    let row = i * self.regions;
                    tally.detected += 1;
                    tally.detected_weight += w;
                    // The live tally's path statistics are *unweighted* sums
                    // over detected photons, so their importance factor is
                    // the trajectory-density ratio λ, not the weight ratio.
                    tally.detected_path_sum += lambda * l;
                    tally.detected_path_sq_sum += lambda * (l * l);
                    tally.detected_weight_path_sum += w * l;
                    tally.detected_depth_sum += lambda * self.max_depth[i];
                    tally.detected_depth_max = tally.detected_depth_max.max(self.max_depth[i]);
                    tally.detected_scatter_sum += u64::from(self.scatters[i]);
                    for r in 0..self.regions {
                        tally.detected_reached_layer[r] += u64::from(self.reached[row + r] != 0);
                        tally.detected_partial_path[r] += lambda * self.partial_path[row + r];
                    }
                    if let Some(h) = tally.path_histogram.as_mut() {
                        h.record(l);
                    }
                }
                CLASS_MISSED_APERTURE | CLASS_LAUNCH_MISS => {
                    tally.reflected += 1;
                    tally.reflected_weight += w;
                }
                CLASS_NA_REJECTED => {
                    tally.reflected += 1;
                    tally.na_rejected += 1;
                    tally.reflected_weight += w;
                }
                CLASS_GATE_REJECTED => {
                    tally.reflected += 1;
                    tally.gate_rejected += 1;
                    tally.reflected_weight += w;
                }
                CLASS_TRANSMITTED => {
                    tally.transmitted += 1;
                    tally.transmitted_weight += w;
                }
                other => return Err(format!("corrupt archive: entry class {other}")),
            }
        }
        if current_task.is_some() {
            total.merge(&tally);
        }
        total.launched = self.launched;
        total.specular_weight = self.specular_weight;
        let ess = if sum_ratio_sq > 0.0 { sum_ratio * sum_ratio / sum_ratio_sq } else { 0.0 };
        Ok(ReweightReport { tally: total, ess, detected_entries, sum_ratio })
    }

    /// Evaluate a whole sweep of queries, fanning out across the rayon
    /// pool — one [`PathArchive::evaluate`] per query, sharing the
    /// read-only archive.
    ///
    /// Queries are independent (nothing is accumulated *across* them),
    /// so each report is bit-identical to its sequential
    /// `evaluate(query)` and results come back in query order; only the
    /// wall-clock changes. This is the batch API the `reweight` bench
    /// leg drives: property sweeps are the archive's whole reason to
    /// exist, and they are embarrassingly parallel.
    pub fn evaluate_many(
        &self,
        queries: &[Vec<OpticalProperties>],
    ) -> Vec<Result<ReweightReport, String>> {
        use rayon::prelude::*;
        queries.par_iter().map(|query| self.evaluate(query)).collect()
    }
}

/// A [`Backend`] that answers scenarios from a stored [`PathArchive`]
/// instead of tracing photons: the scenario's tissue supplies the query
/// properties (μa′, μs′ per region), and the replayed tally comes back in
/// an ordinary [`RunReport`]. Registered in the cluster backend registry
/// as `reweight <archive-file>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reweight {
    /// The stored recording to re-score.
    pub archive: PathArchive,
}

impl Reweight {
    /// Wrap a recorded archive.
    pub fn new(archive: PathArchive) -> Self {
        Self { archive }
    }

    /// Evaluate a bare property-set query, with the full
    /// [`ReweightReport`] diagnostics ([`ess`](ReweightReport::ess)).
    pub fn query(&self, query: &[OpticalProperties]) -> Result<ReweightReport, String> {
        self.archive.evaluate(query)
    }

    /// Evaluate a sweep of queries in parallel; see
    /// [`PathArchive::evaluate_many`] for the ordering and bit-identity
    /// contract.
    pub fn query_many(
        &self,
        queries: &[Vec<OpticalProperties>],
    ) -> Vec<Result<ReweightReport, String>> {
        self.archive.evaluate_many(queries)
    }
}

impl Backend for Reweight {
    fn name(&self) -> &'static str {
        "reweight"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        scenario.validate()?;
        let err = |reason: String| EngineError::backend("reweight", reason);
        if scenario.options.archive.is_some() {
            return Err(err("cannot record a new archive while reweighting one".into()));
        }
        if scenario.options.path_grid.is_some()
            || scenario.options.absorption_grid.is_some()
            || scenario.options.absorption_rz.is_some()
        {
            return Err(err(
                "reweighting cannot reconstruct absorption/visit grids; drop path_grid, \
                 absorption_grid and absorption_rz from the query scenario"
                    .into(),
            ));
        }
        let query: Vec<OpticalProperties> =
            (0..scenario.tissue.region_count()).map(|r| *scenario.tissue.optics(r)).collect();
        let started = Instant::now();
        let report = self
            .archive
            .evaluate_shaped(
                &query,
                scenario.options.reflectance_profile,
                scenario.options.path_histogram,
            )
            .map_err(err)?;
        let launched = report.tally.launched;
        progress.on_photons(launched, launched);
        Ok(RunReport {
            workers: vec![WorkerAccount { tasks_completed: 1, tasks_failed: 0, photons: launched }],
            result: SimulationResult::new(report.tally, Vec::new()),
            requeues: 0,
            wall_seconds: started.elapsed().as_secs_f64(),
            virtual_seconds: None,
            backend: self.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base2() -> Vec<OpticalProperties> {
        vec![
            OpticalProperties::new(0.05, 10.0, 0.9, 1.4),
            OpticalProperties::new(0.02, 15.0, 0.9, 1.4),
        ]
    }

    fn archive_with_one_path() -> PathArchive {
        let mut a = PathArchive::new(2, base2(), RecordOptions::default());
        a.on_launch(0.02);
        a.push(CLASS_DETECTED, 0.5, 2.0, 30.0, 4.0, 12, &[20.0, 10.0], &[200, 120], &[true, true]);
        a
    }

    #[test]
    fn identity_ratio_is_exactly_one() {
        let a = archive_with_one_path();
        let c = a.coeffs(&base2()).unwrap();
        assert_eq!(a.ratio(0, &c), 1.0);
    }

    #[test]
    fn higher_mu_a_lowers_the_ratio() {
        let a = archive_with_one_path();
        let mut q = base2();
        q[0].mu_a *= 1.5;
        let c = a.coeffs(&q).unwrap();
        let r = a.ratio(0, &c);
        assert!(r < 1.0, "ratio {r}");
        // exp(−Δμa · L_0) with Δμa = 0.025, L_0 = 20.
        assert!((r - (-0.025f64 * 20.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn queries_that_change_the_path_measure_are_rejected() {
        let a = archive_with_one_path();
        let mut g = base2();
        g[1].g = 0.5;
        assert!(a.coeffs(&g).unwrap_err().contains("g and n"));
        let mut n = base2();
        n[0].n = 1.33;
        assert!(a.coeffs(&n).unwrap_err().contains("g and n"));
        let short = vec![base2()[0]];
        assert!(a.coeffs(&short).unwrap_err().contains("regions"));
        let mut bad = base2();
        bad[0].mu_a = -1.0;
        assert!(a.coeffs(&bad).is_err());
    }

    #[test]
    fn scattering_cannot_be_added_to_a_dead_region() {
        let base = vec![OpticalProperties::new(0.1, 0.0, 0.0, 1.0)];
        let a = PathArchive::new(1, base, RecordOptions::default());
        let q = vec![OpticalProperties::new(0.1, 5.0, 0.0, 1.0)];
        assert!(a.coeffs(&q).unwrap_err().contains("never"));
    }

    #[test]
    fn merge_appends_and_canonical_order_sorts_by_task() {
        let mut a = archive_with_one_path();
        a.stamp_task(7);
        let mut b = archive_with_one_path();
        b.push_launch_miss(1.0, 9.0);
        b.stamp_task(2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_ne!(ab, ba, "merge order shows before canonicalization");
        ab.canonical_order();
        ba.canonical_order();
        assert_eq!(ab, ba);
        assert_eq!(ab.launched, 2);
        assert_eq!(ab.task, vec![2, 2, 7]);
    }

    #[test]
    fn evaluate_replays_aggregates_and_reports_ess() {
        let mut a = archive_with_one_path();
        a.push(CLASS_DETECTED, 0.25, 2.1, 40.0, 5.0, 15, &[25.0, 15.0], &[260, 170], &[true, true]);
        a.push(
            CLASS_MISSED_APERTURE,
            0.8,
            11.0,
            12.0,
            2.0,
            4,
            &[8.0, 4.0],
            &[80, 40],
            &[true, true],
        );
        let rep = a.evaluate(&base2()).unwrap();
        assert_eq!(rep.detected_entries, 2);
        assert_eq!(rep.ess, 2.0);
        assert_eq!(rep.sum_ratio, 2.0);
        assert_eq!(rep.tally.detected, 2);
        assert_eq!(rep.tally.reflected, 1);
        assert_eq!(rep.tally.detected_weight, 0.75);
        assert_eq!(rep.tally.reflected_weight, 0.8);
        assert_eq!(rep.tally.launched, 1);
        assert_eq!(rep.tally.specular_weight, 0.02);

        // A far perturbation collapses the ESS below the detected count.
        let mut q = base2();
        q[0].mu_s *= 3.0;
        q[1].mu_s *= 3.0;
        let far = a.evaluate(&q).unwrap();
        assert!(far.ess < 2.0, "ess {}", far.ess);
    }
}
