//! The unified execution API: one [`Scenario`] description, many
//! interchangeable [`Backend`]s.
//!
//! The reproduced paper's central claim is that the *same* photon-transport
//! workload runs on one core, a shared-memory machine, or a non-dedicated
//! master/worker cluster with identical results. This module makes that a
//! type: a [`Scenario`] fully describes an experiment — geometry, source,
//! detector, engine options, photon budget, task decomposition, and seed —
//! and a [`Backend`] is any way of executing it. Because the task split and
//! the RNG stream family are part of the scenario (not the backend), every
//! backend produces **bit-identical tallies** for the same scenario:
//!
//! ```
//! use lumen_core::engine::{Backend, Rayon, Scenario, Sequential};
//! use lumen_core::{Detector, Source};
//! use lumen_tissue::presets::semi_infinite_phantom;
//!
//! let scenario = Scenario::new(
//!     semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
//!     Source::Delta,
//!     Detector::new(2.0, 0.5),
//! )
//! .with_photons(4_000)
//! .with_tasks(8)
//! .with_seed(42);
//!
//! let seq = Sequential.run(&scenario).unwrap();
//! let par = Rayon::default().run(&scenario).unwrap();
//! assert_eq!(seq.result.tally, par.result.tally); // bit-identical
//! ```
//!
//! `lumen-core` ships the in-process backends ([`Sequential`], [`Rayon`]);
//! the distributed ones (`ThreadedCluster`, `Tcp`, `SimulatedCluster`) live
//! in `lumen-cluster`, which registers them on the same trait — see
//! `lumen_cluster::backend`. Long runs can observe completion through the
//! [`Progress`] hook, and all failure paths report a typed [`EngineError`]
//! instead of panicking on ad-hoc strings.

use crate::detector::Detector;
use crate::parallel::batch_sizes;
use crate::results::SimulationResult;
use crate::sim::{PathRecord, Simulation, SimulationOptions};
use crate::source::Source;
use crate::tally::Tally;
use lumen_tissue::{Geometry, GeometryError};
use mcrng::StreamFactory;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Typed errors from scenario validation and backend execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The scenario or backend parameters are inconsistent (bad geometry,
    /// zero tasks, zero workers, a failure rate outside `[0, 1)`, ...).
    InvalidConfig(String),
    /// A backend failed while executing a valid scenario (I/O, protocol
    /// violation, thread-pool construction, lost workers).
    Backend {
        /// Name of the backend that failed (see [`Backend::name`]).
        backend: String,
        /// What went wrong.
        reason: String,
    },
}

impl EngineError {
    /// Convenience constructor for backend-side failures.
    pub fn backend(name: impl Into<String>, reason: impl Into<String>) -> Self {
        EngineError::Backend { backend: name.into(), reason: reason.into() }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            EngineError::Backend { backend, reason } => {
                write!(f, "backend `{backend}` failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GeometryError> for EngineError {
    /// Geometry construction/validation failures are configuration errors.
    fn from(e: GeometryError) -> Self {
        EngineError::InvalidConfig(e.to_string())
    }
}

impl From<crate::error::ConfigError> for EngineError {
    /// Typed validation failures are configuration errors.
    fn from(e: crate::error::ConfigError) -> Self {
        EngineError::InvalidConfig(e.to_string())
    }
}

/// A fully specified experiment: what to simulate and how the work is
/// decomposed, independent of where it executes.
///
/// The `(seed, tasks)` pair fixes every random draw: task `i` simulates its
/// batch from RNG stream `i` of the seed's stream family, so *any* backend
/// — sequential, rayon, threaded cluster, TCP — produces bit-identical
/// tallies for the same scenario. This is the paper's reproducibility
/// contract, promoted from a convention to the type itself.
///
/// The CLI's `key = value` config format maps onto this struct 1:1, and
/// `lumen_cluster::wire` gives it a binary encoding for multi-machine
/// deployments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The tissue model — layered stack or voxel grid.
    pub tissue: Geometry,
    /// Source footprint.
    pub source: Source,
    /// Detector geometry and gating.
    pub detector: Detector,
    /// Engine knobs (boundary mode, roulette, attached tallies, ...).
    pub options: SimulationOptions,
    /// Photon budget.
    pub photons: u64,
    /// Number of batches the budget splits into. Part of the scenario —
    /// not the backend — so results never depend on the execution
    /// substrate. More tasks load-balance better; batches may be empty
    /// when `tasks > photons`.
    pub tasks: u64,
    /// Experiment seed.
    pub seed: u64,
    /// First RNG stream index: task `i` draws from stream
    /// `task_offset + i`. Zero for standalone runs. A non-zero offset is
    /// how a *continuation* run extends an earlier one — the earlier run
    /// consumed streams `0..k`, the continuation starts at `k` — so the
    /// two merged tallies are bit-identical to one run over all streams
    /// (stream identity depends only on `(seed, index)`).
    pub task_offset: u64,
}

impl Scenario {
    /// Default photon budget (override with [`Scenario::with_photons`]).
    pub const DEFAULT_PHOTONS: u64 = 100_000;
    /// Default task count, matching the old `ParallelConfig::new`.
    pub const DEFAULT_TASKS: u64 = 64;
    /// Default seed, matching the CLI default.
    pub const DEFAULT_SEED: u64 = 42;

    /// A scenario with default options, budget, task count, and seed.
    /// Accepts a bare [`lumen_tissue::LayeredTissue`] or
    /// [`lumen_tissue::VoxelTissue`] as well as a [`Geometry`] value.
    pub fn new(tissue: impl Into<Geometry>, source: Source, detector: Detector) -> Self {
        Self {
            tissue: tissue.into(),
            source,
            detector,
            options: SimulationOptions::default(),
            photons: Self::DEFAULT_PHOTONS,
            tasks: Self::DEFAULT_TASKS,
            seed: Self::DEFAULT_SEED,
            task_offset: 0,
        }
    }

    /// Wrap an existing [`Simulation`] (geometry + options) as a scenario.
    pub fn from_simulation(sim: &Simulation, photons: u64, seed: u64) -> Self {
        Self {
            tissue: sim.tissue.clone(),
            source: sim.source,
            detector: sim.detector,
            options: sim.options.clone(),
            photons,
            tasks: Self::DEFAULT_TASKS,
            seed,
            task_offset: 0,
        }
    }

    /// Override the photon budget (builder style).
    pub fn with_photons(mut self, photons: u64) -> Self {
        self.photons = photons;
        self
    }

    /// Override the task decomposition (builder style).
    pub fn with_tasks(mut self, tasks: u64) -> Self {
        self.tasks = tasks;
        self
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the first RNG stream index (builder style). See the
    /// [`Scenario::task_offset`] field for the continuation contract.
    pub fn with_task_offset(mut self, task_offset: u64) -> Self {
        self.task_offset = task_offset;
        self
    }

    /// Override the engine options (builder style).
    pub fn with_options(mut self, options: SimulationOptions) -> Self {
        self.options = options;
        self
    }

    /// The geometry/options part of the scenario as a [`Simulation`].
    pub fn simulation(&self) -> Simulation {
        Simulation {
            tissue: self.tissue.clone(),
            source: self.source,
            detector: self.detector,
            options: self.options.clone(),
        }
    }

    /// Validate the complete scenario.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.tasks == 0 {
            return Err(EngineError::InvalidConfig("tasks must be >= 1".into()));
        }
        if self.task_offset.checked_add(self.tasks).is_none() {
            return Err(EngineError::InvalidConfig(
                "task_offset + tasks overflows the stream index space".into(),
            ));
        }
        self.simulation().validate().map_err(EngineError::from)
    }

    /// The per-task batch sizes this scenario decomposes into.
    pub fn batches(&self) -> Vec<u64> {
        batch_sizes(self.photons, self.tasks)
    }

    /// Run on the given backend — sugar for `backend.run(self)`.
    pub fn run_on(&self, backend: &dyn Backend) -> Result<RunReport, EngineError> {
        backend.run(self)
    }
}

/// Observer for long-running executions.
///
/// Backends call these hooks from worker/aggregator threads, so
/// implementations must be `Sync`. All methods default to no-ops —
/// implement only what you need.
pub trait Progress: Sync {
    /// Photons completed so far (cumulative) out of the scenario budget.
    /// Called after each completed batch, in completion order.
    fn on_photons(&self, completed: u64, total: u64) {
        let _ = (completed, total);
    }

    /// A task failed (e.g. a worker was reclaimed) and was re-queued.
    fn on_task_retry(&self, task_id: u64) {
        let _ = task_id;
    }

    /// The connected worker-pool size changed (elastic backends only: a
    /// client joined, disconnected, or had its lease revoked). Called
    /// with the pool size after the change.
    fn on_clients(&self, connected: usize) {
        let _ = connected;
    }
}

/// The no-op observer used by [`Backend::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl Progress for NoProgress {}

/// Per-worker accounting carried by every [`RunReport`] — the paper's
/// "which machine did how much" table, normalised across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerAccount {
    /// Tasks completed by this worker.
    pub tasks_completed: u64,
    /// Tasks this worker failed (failure injection / lost connections).
    pub tasks_failed: u64,
    /// Photons simulated by this worker.
    pub photons: u64,
}

/// The unified outcome of running a [`Scenario`] on any [`Backend`] —
/// one report type where the seed API had `SimulationResult`,
/// `DistributedReport`, and `NetReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The merged physics: tally plus recorded sample paths.
    pub result: SimulationResult,
    /// Per-worker accounting, indexed by worker id. In-process backends
    /// report a single aggregate entry.
    pub workers: Vec<WorkerAccount>,
    /// How many tasks were re-queued after failures.
    pub requeues: u64,
    /// Wall-clock duration of the run (s).
    pub wall_seconds: f64,
    /// Virtual makespan for simulated backends (the DES); `None` for
    /// backends that executed real photon transport.
    pub virtual_seconds: Option<f64>,
    /// Name of the backend that produced this report.
    pub backend: String,
}

impl RunReport {
    /// Measured throughput (photons per wall-clock second).
    pub fn photons_per_second(&self) -> f64 {
        self.result.launched() as f64 / self.wall_seconds.max(1e-9)
    }

    /// True when the report's timing is simulated rather than measured
    /// (its tally is then empty — the DES models time, not photons).
    pub fn is_virtual(&self) -> bool {
        self.virtual_seconds.is_some()
    }
}

impl std::ops::Deref for RunReport {
    type Target = SimulationResult;

    /// A report answers all the derived-physics questions its result does
    /// (`report.diffuse_reflectance()`, `report.tally`, ...).
    fn deref(&self) -> &SimulationResult {
        &self.result
    }
}

/// An execution substrate for scenarios.
///
/// Implementations must honour the scenario's `(seed, tasks)` contract:
/// task `i` runs `scenario.batches()[i]` photons from RNG stream `i`, and
/// tallies merge in task order, so every backend returns bit-identical
/// tallies for the same scenario. (Sample-path recording is best-effort:
/// distributed backends may return fewer recorded paths than in-process
/// ones, but the tally never differs.)
pub trait Backend {
    /// Short stable name ("sequential", "rayon", "cluster", "tcp", "sim").
    fn name(&self) -> &'static str;

    /// Execute the scenario, streaming status to `progress`.
    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError>;

    /// Execute the scenario without observation.
    fn run(&self, scenario: &Scenario) -> Result<RunReport, EngineError> {
        self.run_with_progress(scenario, &NoProgress)
    }
}

/// Merge per-task tallies in task order. Fixing the float accumulation
/// order is what makes results identical across thread counts, schedules,
/// and backends (a tree reduction would not be).
fn merge_in_task_order(
    sim: &Simulation,
    per_task: Vec<(Tally, Vec<PathRecord>)>,
) -> SimulationResult {
    let cap = sim.options.record_paths;
    let mut tally = sim.new_tally();
    let mut paths = Vec::new();
    for (t, p) in per_task {
        tally.merge(&t);
        if paths.len() < cap {
            paths.extend(p.into_iter().take(cap - paths.len()));
        }
    }
    SimulationResult::new(tally, paths)
}

/// Run one task's batch into a fresh tally.
fn run_one_task(
    sim: &Simulation,
    factory: &StreamFactory,
    task_idx: u64,
    batch: u64,
) -> (Tally, Vec<PathRecord>) {
    let mut rng = factory.stream(task_idx);
    let mut tally = sim.new_tally();
    let mut paths: Vec<PathRecord> = Vec::new();
    let want_paths = sim.options.record_paths > 0;
    sim.run_stream(batch, &mut rng, &mut tally, if want_paths { Some(&mut paths) } else { None });
    if let Some(a) = tally.archive.as_mut() {
        a.stamp_task(task_idx);
    }
    (tally, paths)
}

/// Single-threaded in-process backend: the scenario's tasks run one after
/// another on the calling thread. The paper's "one core" configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl Backend for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        scenario.validate()?;
        let started = Instant::now();
        let sim = scenario.simulation();
        let factory = StreamFactory::new(scenario.seed);
        let sizes = scenario.batches();

        let mut done = 0u64;
        let per_task: Vec<(Tally, Vec<PathRecord>)> = sizes
            .iter()
            .enumerate()
            .map(|(task_idx, &batch)| {
                let out =
                    run_one_task(&sim, &factory, scenario.task_offset + task_idx as u64, batch);
                done += batch;
                progress.on_photons(done, scenario.photons);
                out
            })
            .collect();

        let tasks_completed = per_task.len() as u64;
        let result = merge_in_task_order(&sim, per_task);
        Ok(RunReport {
            workers: vec![WorkerAccount {
                tasks_completed,
                tasks_failed: 0,
                photons: result.launched(),
            }],
            result,
            requeues: 0,
            wall_seconds: started.elapsed().as_secs_f64(),
            virtual_seconds: None,
            backend: self.name().to_string(),
        })
    }
}

/// Shared-memory parallel backend on the rayon thread pool — the
/// DataManager/client decomposition collapsed into one address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rayon {
    /// Pin the pool size; `None` uses the global pool (one thread per
    /// logical CPU). Results do not depend on this — only speed does.
    pub threads: Option<usize>,
}

impl Rayon {
    /// A backend pinned to `threads` worker threads.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: Some(threads) }
    }

    fn run_on_current_pool(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        let started = Instant::now();
        let sim = scenario.simulation();
        let factory = StreamFactory::new(scenario.seed);
        let sizes = scenario.batches();

        // The counter and the callback share one lock so observers see a
        // strictly monotonic photon count in call order, as the Progress
        // contract promises. Batch completions are coarse-grained, so the
        // critical section is negligible next to the transport work.
        let done = Mutex::new(0u64);
        let per_task: Vec<(Tally, Vec<PathRecord>)> = sizes
            .par_iter()
            .enumerate()
            .map(|(task_idx, &batch)| {
                let out =
                    run_one_task(&sim, &factory, scenario.task_offset + task_idx as u64, batch);
                {
                    let mut done = done.lock().expect("progress lock");
                    *done += batch;
                    progress.on_photons(*done, scenario.photons);
                }
                out
            })
            .collect();

        let tasks_completed = per_task.len() as u64;
        let result = merge_in_task_order(&sim, per_task);
        Ok(RunReport {
            workers: vec![WorkerAccount {
                tasks_completed,
                tasks_failed: 0,
                photons: result.launched(),
            }],
            result,
            requeues: 0,
            wall_seconds: started.elapsed().as_secs_f64(),
            virtual_seconds: None,
            backend: self.name().to_string(),
        })
    }
}

impl Backend for Rayon {
    fn name(&self) -> &'static str {
        "rayon"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        scenario.validate()?;
        match self.threads {
            None => self.run_on_current_pool(scenario, progress),
            Some(k) => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(k)
                    .build()
                    .map_err(|e| EngineError::backend(self.name(), e.to_string()))?;
                pool.install(|| self.run_on_current_pool(scenario, progress))
            }
        }
    }
}

/// Resolve a backend-spec string to one of the **core** backends:
/// `sequential`, `rayon`, or `rayon <threads>`.
///
/// The cluster backends (`cluster`, `tcp`, `sim`) are registered on top of
/// this vocabulary by `lumen_cluster::backend::from_spec`, which falls back
/// here — that one-way registration is what keeps `lumen-core` free of any
/// cluster dependency.
pub fn from_spec(spec: &str) -> Result<Box<dyn Backend>, EngineError> {
    let mut parts = spec.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();
    match (kind, args.as_slice()) {
        ("sequential", []) => Ok(Box::new(Sequential)),
        ("rayon", []) => Ok(Box::new(Rayon::default())),
        ("rayon", [threads]) => {
            let threads: usize = threads.parse().map_err(|_| {
                EngineError::InvalidConfig(format!(
                    "rayon thread count `{threads}` is not a number"
                ))
            })?;
            if threads == 0 {
                return Err(EngineError::InvalidConfig("rayon thread count must be >= 1".into()));
            }
            Ok(Box::new(Rayon::with_threads(threads)))
        }
        _ => Err(EngineError::InvalidConfig(format!(
            "unknown backend `{spec}` (core backends: sequential | rayon [threads])"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::source::Source;
    use lumen_tissue::presets::semi_infinite_phantom;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn scenario() -> Scenario {
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
        .with_photons(4_000)
        .with_tasks(8)
        .with_seed(5)
    }

    #[test]
    fn sequential_and_rayon_are_bit_identical() {
        let s = scenario();
        let seq = Sequential.run(&s).unwrap();
        let par = Rayon::default().run(&s).unwrap();
        assert_eq!(seq.result.tally, par.result.tally);
        assert_eq!(seq.result.sample_paths, par.result.sample_paths);
    }

    #[test]
    fn pinned_thread_count_does_not_change_results() {
        let s = scenario();
        let a = Rayon::with_threads(1).run(&s).unwrap();
        let b = Rayon::with_threads(2).run(&s).unwrap();
        assert_eq!(a.result.tally, b.result.tally);
    }

    #[test]
    fn single_task_scenario_matches_legacy_sequential_run() {
        let s = scenario().with_tasks(1).with_photons(3_000).with_seed(9);
        let legacy = s.simulation().run(3_000, 9);
        let report = Sequential.run(&s).unwrap();
        assert_eq!(legacy.tally, report.result.tally);
    }

    #[test]
    fn report_carries_accounting_and_throughput() {
        let s = scenario();
        let report = Rayon::default().run(&s).unwrap();
        assert_eq!(report.backend, "rayon");
        assert_eq!(report.launched(), 4_000); // via Deref
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].photons, 4_000);
        assert_eq!(report.workers[0].tasks_completed, 8);
        assert_eq!(report.requeues, 0);
        assert!(report.wall_seconds >= 0.0);
        assert!(report.photons_per_second() > 0.0);
        assert!(!report.is_virtual());
    }

    #[test]
    fn progress_observer_sees_every_batch() {
        struct Counter {
            calls: AtomicUsize,
            last: AtomicU64,
        }
        impl Progress for Counter {
            fn on_photons(&self, completed: u64, total: u64) {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.last.fetch_max(completed, Ordering::Relaxed);
                assert_eq!(total, 4_000);
            }
        }
        let counter = Counter { calls: AtomicUsize::new(0), last: AtomicU64::new(0) };
        let s = scenario();
        Sequential.run_with_progress(&s, &counter).unwrap();
        assert_eq!(counter.calls.load(Ordering::Relaxed), 8);
        assert_eq!(counter.last.load(Ordering::Relaxed), 4_000);
    }

    #[test]
    fn zero_tasks_is_invalid() {
        let s = scenario().with_tasks(0);
        assert!(matches!(Sequential.run(&s), Err(EngineError::InvalidConfig(_))));
    }

    #[test]
    fn overflowing_task_offset_is_invalid() {
        let s = scenario().with_task_offset(u64::MAX);
        assert!(matches!(Sequential.run(&s), Err(EngineError::InvalidConfig(_))));
    }

    #[test]
    fn offset_continuation_extends_a_prefix_run_bit_identically() {
        // The continuation contract behind the service cache's top-up.
        // `merge` left-folds, and a left fold is *prefix-extendable*:
        // fold(0..8) == fold(fold(0..4), t4, t5, t6, t7) bit for bit —
        // so a cached prefix run extended one offset run at a time is the
        // single full run. (Two multi-task partial folds merged together
        // would NOT be: float addition is not associative.)
        let full = scenario(); // 4_000 photons, 8 tasks -> 500 each
        let head = scenario().with_photons(2_000).with_tasks(4);
        for backend in [&Sequential as &dyn Backend, &Rayon::default()] {
            let whole = backend.run(&full).unwrap();
            let mut merged = backend.run(&head).unwrap().result.tally.clone();
            for j in 4..8 {
                let step = scenario().with_photons(500).with_tasks(1).with_task_offset(j);
                merged.merge(&backend.run(&step).unwrap().result.tally);
            }
            assert_eq!(merged, whole.result.tally, "backend {}", backend.name());
        }
    }

    #[test]
    fn invalid_geometry_is_a_typed_error() {
        let mut s = scenario();
        s.detector.radius = -1.0;
        let err = Rayon::default().run(&s).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn spec_resolution() {
        assert_eq!(from_spec("sequential").unwrap().name(), "sequential");
        assert_eq!(from_spec("rayon").unwrap().name(), "rayon");
        assert_eq!(from_spec("rayon 2").unwrap().name(), "rayon");
        assert!(from_spec("rayon zero").is_err());
        assert!(from_spec("rayon 0").is_err());
        assert!(from_spec("quantum").is_err());
        assert!(from_spec("").is_err());
    }

    #[test]
    fn run_on_sugar_matches_backend_run() {
        let s = scenario();
        let a = s.run_on(&Sequential).unwrap();
        let b = Sequential.run(&s).unwrap();
        assert_eq!(a.result.tally, b.result.tally);
    }

    #[test]
    fn scenario_batches_cover_budget() {
        let s = scenario().with_photons(1001).with_tasks(10);
        let batches = s.batches();
        assert_eq!(batches.iter().sum::<u64>(), 1001);
    }
}
