//! `lumen` — the command-line front end.
//!
//! ```text
//! lumen run <config-file>        simulate per the config, print a report
//! lumen example-config           print an annotated example config
//! lumen presets                  list tissue presets and their layers
//! ```

mod config;
mod report;

use config::Config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("run") => match args.get(1) {
            Some(path) => cmd_run(path),
            None => {
                eprintln!("usage: lumen run <config-file>");
                2
            }
        },
        Some("example-config") => {
            println!("{}", EXAMPLE_CONFIG.trim_start());
            0
        }
        Some("presets") => cmd_presets(),
        _ => {
            eprintln!(
                "usage: lumen <command>\n\n  run <config-file>   simulate per the config\n  example-config      print an annotated example config\n  presets             list tissue presets"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_run(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let scenario = match cfg.scenario() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let archive_record = match cfg.archive_record() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    // One entry point for every execution substrate: the config's
    // `backend` key picks the `Backend` impl, nothing else changes.
    let backend = match lumen_cluster::backend::from_spec(cfg.backend()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    match backend.run(&scenario) {
        Ok(run) => {
            report::print_report(&scenario, &run);
            if let Some((archive_path, _)) = archive_record {
                let Some(archive) = run.result.tally.archive.as_ref() else {
                    eprintln!("{path}: backend returned no archive to record");
                    return 1;
                };
                let bytes = lumen_cluster::wire::encode_archive(archive);
                if let Err(e) = std::fs::write(&archive_path, &bytes) {
                    eprintln!("cannot write archive {archive_path}: {e}");
                    return 1;
                }
                println!(
                    "archive: {} entries ({} bytes) -> {archive_path}",
                    archive.len(),
                    bytes.len()
                );
            }
            0
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            1
        }
    }
}

fn cmd_presets() -> i32 {
    use lumen_tissue::presets::{adult_head, homogeneous_white_matter, neonatal_head};
    for (name, model) in [
        ("adult_head", adult_head(Default::default())),
        ("neonatal_head", neonatal_head()),
        ("white_matter", homogeneous_white_matter()),
    ] {
        println!("{name}:");
        for l in model.layers() {
            println!(
                "  {:<14} z {:>5.1}..{:<8} mu_s' {:.2}/mm  mu_a {:.3}/mm  n {:.2}",
                l.name,
                l.z_top,
                if l.is_semi_infinite() { "inf".into() } else { format!("{:.1}", l.z_bottom) },
                l.optics.mu_s_prime(),
                l.optics.mu_a,
                l.optics.n
            );
        }
    }
    println!("\nphantom: `tissue = phantom <mu_a> <mu_s> <g> <n>` (semi-infinite)");
    0
}

const EXAMPLE_CONFIG: &str = r#"
# lumen experiment configuration (`lumen run this-file`)

# tissue: adult_head | neonatal_head | white_matter | phantom mu_a mu_s g n
tissue    = adult_head

# source: delta | gaussian <1/e2-radius-mm> | uniform <radius-mm>
source    = delta

# detector: disc <separation-mm> <radius-mm> | ring <separation-mm> <half-width-mm>
detector  = ring 30 2

# optional pathlength gate (mm) and fibre numerical aperture
#gate     = 0 1000
#na       = 0.5

# optional tallies
#path_grid      = 50 30      # granularity^3 over the source-detector region, depth mm
#path_histogram = 600 30     # max pathlength mm, bins

photons   = 200000
seed      = 42
tasks     = 64

# execution backend: sequential | rayon [threads] | cluster [workers] [failure_rate]
#                  | tcp <addr> [min_clients] [lease_timeout_s] | sim [machines]
#                  | reweight <archive-file>
# all real backends give bit-identical tallies for the same (seed, tasks)
backend   = rayon

# optional path archive: record every escape (or only detections) to a
# file, then re-score it for new optical properties without re-tracing:
#   backend = reweight <archive-file>  with a perturbed `tissue`
#archive_record = run.lmna            # or: run.lmna detected_only
"#;
