//! `lumen` — the command-line front end.
//!
//! ```text
//! lumen run <config-file>        simulate per the config, print a report
//! lumen hash <config-file>       print the config's canonical cache key
//! lumen serve [addr] [opts]      run the lumend simulation service
//! lumen query <config-file> <addr>   ask a running service (cache-aware)
//! lumen example-config           print an annotated example config
//! lumen presets                  list tissue presets and their layers
//! ```

mod config;
mod report;

use config::Config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("run") => match args.get(1) {
            Some(path) => cmd_run(path),
            None => {
                eprintln!("usage: lumen run <config-file>");
                2
            }
        },
        Some("hash") => match args.get(1) {
            Some(path) => cmd_hash(path),
            None => {
                eprintln!("usage: lumen hash <config-file>");
                2
            }
        },
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => match (args.get(1), args.get(2)) {
            (Some(path), Some(addr)) => cmd_query(path, addr),
            _ => {
                eprintln!("usage: lumen query <config-file> <addr>");
                2
            }
        },
        Some("example-config") => {
            println!("{}", EXAMPLE_CONFIG.trim_start());
            0
        }
        Some("presets") => cmd_presets(),
        _ => {
            eprintln!(
                "usage: lumen <command>\n\n  run <config-file>            simulate per the config\n  hash <config-file>           print the config's canonical cache key\n  serve [addr] [opts]          run the simulation service (see lumend --help)\n  query <config-file> <addr>   ask a running service\n  example-config               print an annotated example config\n  presets                      list tissue presets"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_run(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let scenario = match cfg.scenario() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let archive_record = match cfg.archive_record() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    // One entry point for every execution substrate: the config's
    // `backend` key picks the `Backend` impl, nothing else changes.
    let backend = match lumen_cluster::backend::from_spec(cfg.backend()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    match backend.run(&scenario) {
        Ok(run) => {
            report::print_report(&scenario, &run);
            if let Some((archive_path, _)) = archive_record {
                let Some(archive) = run.result.tally.archive.as_ref() else {
                    eprintln!("{path}: backend returned no archive to record");
                    return 1;
                };
                let bytes = lumen_cluster::wire::encode_archive(archive);
                if let Err(e) = std::fs::write(&archive_path, &bytes) {
                    eprintln!("cannot write archive {archive_path}: {e}");
                    return 1;
                }
                println!(
                    "archive: {} entries ({} bytes) -> {archive_path}",
                    archive.len(),
                    bytes.len()
                );
            }
            0
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            1
        }
    }
}

/// Parse the config at `path` down to a scenario (shared by `hash`,
/// `query`; `run` keeps its own flow for the archive-record extras).
fn load_scenario(path: &str) -> Result<lumen_core::Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    cfg.scenario().map_err(|e| format!("{path}: {e}"))
}

/// `lumen hash <config-file>` — the canonical cache key, one hex line.
///
/// The key is what `lumend` stores results under: it covers the physics
/// and the seed but not `photons`/`tasks`, so two configs differing only
/// in budget print the same hash (and share cached work).
fn cmd_hash(path: &str) -> i32 {
    match load_scenario(path) {
        Ok(scenario) => {
            println!("{}", lumen_service::key_hex(&lumen_service::scenario_key(&scenario)));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// `lumen serve [addr] [opts]` — the in-CLI face of `lumend`.
fn cmd_serve(args: &[String]) -> i32 {
    match lumen_service::daemon::run(args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", lumen_service::daemon::USAGE);
            2
        }
    }
}

/// `lumen query <config-file> <addr>` — submit the config's scenario to
/// a running service and report how it was served.
fn cmd_query(path: &str, addr: &str) -> i32 {
    let scenario = match load_scenario(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let reply =
        lumen_service::ServiceClient::connect(addr).and_then(|mut client| client.query(&scenario));
    match reply {
        Ok(reply) => {
            let t = &reply.tally;
            println!("== lumen query ==");
            println!("key:     {}", lumen_service::key_hex(&reply.key));
            println!(
                "served:  {} ({} photons cached{})",
                reply.served.as_str(),
                reply.photons_done,
                if reply.photons_done > scenario.photons {
                    format!(", {} requested", scenario.photons)
                } else {
                    String::new()
                },
            );
            println!();
            println!("outcomes:");
            println!("  detected        {:>12}   weight {:.6e}", t.detected, t.detected_weight);
            println!("  reflected       {:>12}   weight {:.6e}", t.reflected, t.reflected_weight);
            println!(
                "  transmitted     {:>12}   weight {:.6e}",
                t.transmitted, t.transmitted_weight
            );
            if t.detected > 0 {
                println!();
                println!("detected photons:");
                println!("  mean pathlength {:.3} mm", t.detected_path_sum / t.detected as f64);
            }
            0
        }
        Err(e) => {
            eprintln!("{addr}: {e}");
            1
        }
    }
}

fn cmd_presets() -> i32 {
    use lumen_tissue::presets::{adult_head, homogeneous_white_matter, neonatal_head};
    for (name, model) in [
        ("adult_head", adult_head(Default::default())),
        ("neonatal_head", neonatal_head()),
        ("white_matter", homogeneous_white_matter()),
    ] {
        println!("{name}:");
        for l in model.layers() {
            println!(
                "  {:<14} z {:>5.1}..{:<8} mu_s' {:.2}/mm  mu_a {:.3}/mm  n {:.2}",
                l.name,
                l.z_top,
                if l.is_semi_infinite() { "inf".into() } else { format!("{:.1}", l.z_bottom) },
                l.optics.mu_s_prime(),
                l.optics.mu_a,
                l.optics.n
            );
        }
    }
    println!("\nphantom: `tissue = phantom <mu_a> <mu_s> <g> <n>` (semi-infinite)");
    0
}

const EXAMPLE_CONFIG: &str = r#"
# lumen experiment configuration (`lumen run this-file`)

# tissue: adult_head | neonatal_head | white_matter | phantom mu_a mu_s g n
tissue    = adult_head

# source: delta | gaussian <1/e2-radius-mm> | uniform <radius-mm>
source    = delta

# detector: disc <separation-mm> <radius-mm> | ring <separation-mm> <half-width-mm>
detector  = ring 30 2

# optional pathlength gate (mm) and fibre numerical aperture
#gate     = 0 1000
#na       = 0.5

# optional tallies
#path_grid      = 50 30      # granularity^3 over the source-detector region, depth mm
#path_histogram = 600 30     # max pathlength mm, bins

photons   = 200000
seed      = 42
tasks     = 64

# execution backend: sequential | rayon [threads] | cluster [workers] [failure_rate]
#                  | tcp <addr> [min_clients] [lease_timeout_s] | sim [machines]
#                  | reweight <archive-file>
# all real backends give bit-identical tallies for the same (seed, tasks)
backend   = rayon

# optional path archive: record every escape (or only detections) to a
# file, then re-score it for new optical properties without re-tracing:
#   backend = reweight <archive-file>  with a perturbed `tissue`
#archive_record = run.lmna            # or: run.lmna detected_only
"#;
