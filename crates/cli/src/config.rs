//! Minimal `key = value` experiment-configuration format and parser.
//!
//! No external parser crates: the format is lines of `key = value`, with
//! `#` comments and blank lines ignored. Keys are case-sensitive. This is
//! the file a user writes to describe an experiment:
//!
//! ```text
//! # NIRS sweep on the adult head
//! tissue    = adult_head
//! source    = gaussian 1.5
//! detector  = ring 30 2
//! gate      = 0 1000
//! na        = 0.5
//! photons   = 200000
//! seed      = 42
//! tasks     = 64
//! path_grid = 50 40
//! backend   = rayon
//! ```
//!
//! The file maps 1:1 onto a `lumen_core::engine::Scenario` plus a backend
//! spec; unknown keys are named errors, not silent no-ops.

use lumen_core::{
    Detector, GateWindow, Geometry, GridSpec, Precision, RecordOptions, Scenario, Simulation,
    SimulationOptions, Source, Vec3, VoxelTissue,
};
use lumen_tissue::presets::{
    adult_head, homogeneous_white_matter, neonatal_head, semi_infinite_phantom, voxelized,
    AdultHeadConfig,
};
use std::collections::BTreeMap;

/// Every key the format understands; anything else is a named error
/// rather than a silent no-op (a typo like `photon = 1e6` used to be
/// ignored and run the default budget).
pub const KNOWN_KEYS: &[&str] = &[
    "tissue",
    "geometry",
    "source",
    "detector",
    "gate",
    "na",
    "path_grid",
    "path_histogram",
    "photons",
    "seed",
    "tasks",
    "backend",
    "archive_record",
    "precision",
];

/// A parsed configuration file: ordered key → value map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    entries: BTreeMap<String, String>,
}

/// Parse or semantic errors with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Line had no `=` separator.
    BadLine { line_no: usize, text: String },
    /// Same key twice.
    DuplicateKey { line_no: usize, key: String },
    /// A key the format does not know.
    UnknownKey { line_no: usize, key: String },
    /// Key required but absent.
    Missing(&'static str),
    /// Value failed to parse.
    BadValue { key: String, value: String, expected: &'static str },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadLine { line_no, text } => {
                write!(f, "line {line_no}: expected `key = value`, got `{text}`")
            }
            ConfigError::DuplicateKey { line_no, key } => {
                write!(f, "line {line_no}: duplicate key `{key}`")
            }
            ConfigError::UnknownKey { line_no, key } => {
                write!(
                    f,
                    "line {line_no}: unknown key `{key}` (known keys: {})",
                    KNOWN_KEYS.join(", ")
                )
            }
            ConfigError::Missing(key) => write!(f, "missing required key `{key}`"),
            ConfigError::BadValue { key, value, expected } => {
                write!(f, "key `{key}`: cannot parse `{value}` (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse configuration text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::BadLine { line_no, text: raw.trim().to_string() });
            };
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return Err(ConfigError::UnknownKey { line_no, key });
            }
            if entries.contains_key(&key) {
                return Err(ConfigError::DuplicateKey { line_no, key });
            }
            entries.insert(key, value);
        }
        Ok(Self { entries })
    }

    /// Raw value lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    fn parse_num<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ConfigError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| ConfigError::BadValue {
                key: key.into(),
                value: v.into(),
                expected,
            }),
        }
    }

    /// Photon budget (required).
    pub fn photons(&self) -> Result<u64, ConfigError> {
        self.parse_num::<u64>("photons", "positive integer")?.ok_or(ConfigError::Missing("photons"))
    }

    /// Experiment seed (default 42).
    pub fn seed(&self) -> Result<u64, ConfigError> {
        Ok(self.parse_num::<u64>("seed", "integer")?.unwrap_or(42))
    }

    /// Task count for the parallel driver (default 64).
    pub fn tasks(&self) -> Result<u64, ConfigError> {
        Ok(self.parse_num::<u64>("tasks", "positive integer")?.unwrap_or(64))
    }

    /// Backend spec (default `rayon`); resolved by
    /// `lumen_cluster::backend::from_spec` over the full vocabulary
    /// `sequential | rayon [threads] | cluster [workers] [failure_rate] |
    /// tcp <addr> [min_clients] [lease_timeout_s] | sim [machines] |
    /// reweight <archive-file>`.
    pub fn backend(&self) -> &str {
        self.get("backend").unwrap_or("rayon")
    }

    /// The `archive_record` key: `<path> [detected_only]`. Turns on path
    /// archiving for the run and names the file the encoded archive is
    /// written to; that file is what `backend = reweight <path>` replays.
    pub fn archive_record(&self) -> Result<Option<(String, RecordOptions)>, ConfigError> {
        let Some(spec) = self.get("archive_record") else { return Ok(None) };
        let mut parts = spec.split_whitespace();
        let bad = |expected| ConfigError::BadValue {
            key: "archive_record".into(),
            value: spec.into(),
            expected,
        };
        let path = parts.next().ok_or_else(|| bad("`<path> [detected_only]`"))?;
        let detected_only = match parts.next() {
            None => false,
            Some("detected_only") => true,
            Some(_) => return Err(bad("`<path> [detected_only]`")),
        };
        if parts.next().is_some() {
            return Err(bad("`<path> [detected_only]`"));
        }
        Ok(Some((path.to_string(), RecordOptions { detected_only })))
    }

    /// The `precision` key: `exact` (default) or `fast`. Selects the
    /// transport kernel tier — `fast` runs the batched SoA kernel with
    /// polynomial approximations (see the engine's `Precision` docs for
    /// the reproducibility trade-off and the options it rejects).
    pub fn precision(&self) -> Result<Precision, ConfigError> {
        match self.get("precision") {
            None | Some("exact") => Ok(Precision::Exact),
            Some("fast") => Ok(Precision::Fast),
            Some(other) => Err(ConfigError::BadValue {
                key: "precision".into(),
                value: other.into(),
                expected: "`exact` or `fast`",
            }),
        }
    }

    /// Build the full [`Scenario`] — the config format maps onto it 1:1.
    pub fn scenario(&self) -> Result<Scenario, ConfigError> {
        let sim = self.build_simulation()?;
        Ok(Scenario::from_simulation(&sim, self.photons()?, self.seed()?).with_tasks(self.tasks()?))
    }

    /// Build the full simulation this config describes.
    pub fn build_simulation(&self) -> Result<Simulation, ConfigError> {
        let tissue = self.geometry()?;
        let source = self.source()?;
        let detector = self.detector()?;
        let mut options = SimulationOptions::default();
        if let Some(spec) = self.path_grid(&detector)? {
            options.path_grid = Some(spec);
        }
        if let Some((max_mm, bins)) = self.path_histogram()? {
            options.path_histogram = Some((max_mm, bins));
        }
        if let Some((_, record)) = self.archive_record()? {
            options.archive = Some(record);
        }
        options.precision = self.precision()?;
        let sim = Simulation { tissue, source, detector, options };
        sim.validate().map_err(|e| ConfigError::BadValue {
            key: "simulation".into(),
            value: e.to_string(),
            expected: "a consistent configuration",
        })?;
        Ok(sim)
    }

    /// Resolve the `geometry` key (default `layered`):
    ///
    /// * `layered` — the `tissue` preset as-is;
    /// * `voxel <path>` — a voxel grid loaded from the text format written
    ///   by `VoxelTissue::to_text` (no `tissue` key needed);
    /// * `voxelized <dx> <half_width_mm> <depth_mm>` — the `tissue` preset
    ///   voxelized at pitch `dx` over the given extent.
    fn geometry(&self) -> Result<Geometry, ConfigError> {
        let spec = self.get("geometry").unwrap_or("layered");
        let mut parts = spec.split_whitespace();
        let kind = parts.next().unwrap_or("");
        match kind {
            "layered" => Ok(Geometry::Layered(self.tissue()?)),
            "voxel" => {
                let path = parts.next().ok_or(ConfigError::BadValue {
                    key: "geometry".into(),
                    value: spec.into(),
                    expected: "`voxel <path-to-grid-file>`",
                })?;
                let text = std::fs::read_to_string(path).map_err(|e| ConfigError::BadValue {
                    key: "geometry".into(),
                    value: format!("{path}: {e}"),
                    expected: "a readable voxel grid file",
                })?;
                let grid = VoxelTissue::parse_text(&text).map_err(|e| ConfigError::BadValue {
                    key: "geometry".into(),
                    value: e.to_string(),
                    expected: "a valid voxel grid file",
                })?;
                Ok(Geometry::Voxel(grid))
            }
            "voxelized" => {
                let nums: Vec<f64> = parts.filter_map(|p| p.parse().ok()).collect();
                let [dx, half_width, depth] = nums.as_slice() else {
                    return Err(ConfigError::BadValue {
                        key: "geometry".into(),
                        value: spec.into(),
                        expected: "`voxelized <dx> <half_width_mm> <depth_mm>`",
                    });
                };
                let grid = voxelized(&self.tissue()?, *dx, *half_width, *depth).map_err(|e| {
                    ConfigError::BadValue {
                        key: "geometry".into(),
                        value: e.to_string(),
                        expected: "a voxelizable extent",
                    }
                })?;
                Ok(Geometry::Voxel(grid))
            }
            _ => Err(ConfigError::BadValue {
                key: "geometry".into(),
                value: spec.into(),
                expected: "layered | voxel <path> | voxelized <dx> <half_width> <depth>",
            }),
        }
    }

    fn tissue(&self) -> Result<lumen_tissue::LayeredTissue, ConfigError> {
        let spec = self.get("tissue").ok_or(ConfigError::Missing("tissue"))?;
        let mut parts = spec.split_whitespace();
        let kind = parts.next().unwrap_or("");
        match kind {
            "adult_head" => Ok(adult_head(AdultHeadConfig::default())),
            "neonatal_head" => Ok(neonatal_head()),
            "white_matter" => Ok(homogeneous_white_matter()),
            "phantom" => {
                let nums: Vec<f64> = parts.filter_map(|p| p.parse().ok()).collect();
                if nums.len() != 4 {
                    return Err(ConfigError::BadValue {
                        key: "tissue".into(),
                        value: spec.into(),
                        expected: "`phantom <mu_a> <mu_s> <g> <n>`",
                    });
                }
                Ok(semi_infinite_phantom(nums[0], nums[1], nums[2], nums[3]))
            }
            _ => Err(ConfigError::BadValue {
                key: "tissue".into(),
                value: spec.into(),
                expected: "adult_head | neonatal_head | white_matter | phantom ...",
            }),
        }
    }

    fn source(&self) -> Result<Source, ConfigError> {
        let spec = self.get("source").unwrap_or("delta");
        let mut parts = spec.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let radius = parts.next().and_then(|p| p.parse::<f64>().ok());
        match (kind, radius) {
            ("delta", None) => Ok(Source::Delta),
            ("gaussian", Some(radius)) => Ok(Source::Gaussian { radius }),
            ("uniform", Some(radius)) => Ok(Source::Uniform { radius }),
            _ => Err(ConfigError::BadValue {
                key: "source".into(),
                value: spec.into(),
                expected: "delta | gaussian <radius> | uniform <radius>",
            }),
        }
    }

    fn detector(&self) -> Result<Detector, ConfigError> {
        let spec = self.get("detector").ok_or(ConfigError::Missing("detector"))?;
        let mut parts = spec.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let nums: Vec<f64> = parts.filter_map(|p| p.parse().ok()).collect();
        let mut det = match (kind, nums.as_slice()) {
            ("disc", [sep, radius]) => Detector::new(*sep, *radius),
            ("ring", [sep, half]) => Detector::ring(*sep, *half),
            _ => {
                return Err(ConfigError::BadValue {
                    key: "detector".into(),
                    value: spec.into(),
                    expected: "disc <separation> <radius> | ring <separation> <half_width>",
                })
            }
        };
        if let Some(gate) = self.get("gate") {
            let nums: Vec<f64> = gate.split_whitespace().filter_map(|p| p.parse().ok()).collect();
            let window = match nums.as_slice() {
                [lo, hi] => GateWindow::new(*lo, *hi).map_err(|e| ConfigError::BadValue {
                    key: "gate".into(),
                    value: e.to_string(),
                    expected: "0 <= min < max",
                })?,
                _ => {
                    return Err(ConfigError::BadValue {
                        key: "gate".into(),
                        value: gate.into(),
                        expected: "`<min_mm> <max_mm>`",
                    })
                }
            };
            det = det.with_gate(window);
        }
        if let Some(na) = self.parse_num::<f64>("na", "number in (0, 1]")? {
            det = det.with_numerical_aperture(na, 1.0);
        }
        Ok(det)
    }

    fn path_grid(&self, detector: &Detector) -> Result<Option<GridSpec>, ConfigError> {
        let Some(spec) = self.get("path_grid") else { return Ok(None) };
        let nums: Vec<f64> = spec.split_whitespace().filter_map(|p| p.parse().ok()).collect();
        match nums.as_slice() {
            [granularity, depth] if *granularity >= 1.0 => {
                let margin = detector.separation.max(1.0);
                Ok(Some(GridSpec::cubic(
                    *granularity as usize,
                    Vec3::new(-margin, -margin, 0.0),
                    Vec3::new(detector.separation + margin, margin, *depth),
                )))
            }
            _ => Err(ConfigError::BadValue {
                key: "path_grid".into(),
                value: spec.into(),
                expected: "`<granularity> <depth_mm>`",
            }),
        }
    }

    fn path_histogram(&self) -> Result<Option<(f64, usize)>, ConfigError> {
        let Some(spec) = self.get("path_histogram") else { return Ok(None) };
        let nums: Vec<f64> = spec.split_whitespace().filter_map(|p| p.parse().ok()).collect();
        match nums.as_slice() {
            [max_mm, bins] if *max_mm > 0.0 && *bins >= 1.0 => Ok(Some((*max_mm, *bins as usize))),
            _ => Err(ConfigError::BadValue {
                key: "path_histogram".into(),
                value: spec.into(),
                expected: "`<max_mm> <bins>`",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# a full experiment
tissue    = adult_head
source    = gaussian 1.5
detector  = ring 30 2
gate      = 0 1000
na        = 0.5
photons   = 1000
seed      = 7
tasks     = 8
path_grid = 20 30
path_histogram = 500 25
"#;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(FULL).unwrap();
        assert_eq!(cfg.photons().unwrap(), 1000);
        assert_eq!(cfg.seed().unwrap(), 7);
        assert_eq!(cfg.tasks().unwrap(), 8);
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.tissue.len(), 5);
        assert!(matches!(sim.source, Source::Gaussian { radius } if radius == 1.5));
        assert!(sim.detector.ring);
        assert!(sim.detector.min_exit_cos.is_some());
        assert!(sim.options.path_grid.is_some());
        assert_eq!(sim.options.path_histogram, Some((500.0, 25)));
    }

    #[test]
    fn minimal_config_with_defaults() {
        let cfg =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\nphotons = 10").unwrap();
        let sim = cfg.build_simulation().unwrap();
        assert!(matches!(sim.source, Source::Delta));
        assert_eq!(cfg.seed().unwrap(), 42);
        assert!(sim.detector.gate.is_open());
    }

    #[test]
    fn phantom_tissue() {
        let cfg =
            Config::parse("tissue = phantom 0.1 10 0.9 1.4\ndetector = disc 2 1\nphotons = 1")
                .unwrap();
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.tissue.optics(0).mu_a, 0.1);
        assert_eq!(sim.tissue.optics(0).g, 0.9);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = Config::parse("# hi\n\n  tissue = white_matter # inline\n").unwrap();
        assert_eq!(cfg.get("tissue"), Some("white_matter"));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            Config::parse("this is not a kv line"),
            Err(ConfigError::BadLine { line_no: 1, .. })
        ));
        assert!(matches!(
            Config::parse("seed = 1\nseed = 2"),
            Err(ConfigError::DuplicateKey { line_no: 2, .. })
        ));
        let cfg = Config::parse("tissue = white_matter\ndetector = disc 6 1").unwrap();
        assert_eq!(cfg.photons(), Err(ConfigError::Missing("photons")));
        let bad = Config::parse("tissue = jelly\ndetector = disc 6 1\nphotons = 1").unwrap();
        assert!(matches!(bad.build_simulation(), Err(ConfigError::BadValue { .. })));
        let bad_det =
            Config::parse("tissue = white_matter\ndetector = disc 6\nphotons = 1").unwrap();
        assert!(bad_det.build_simulation().is_err());
        let bad_gate =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\ngate = 9 1\nphotons = 1")
                .unwrap();
        assert!(bad_gate.build_simulation().is_err());
    }

    #[test]
    fn bad_numeric_value() {
        let cfg = Config::parse("photons = many").unwrap();
        assert!(matches!(cfg.photons(), Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn unknown_keys_are_named_errors() {
        // A typo used to be silently ignored; now it names the line.
        match Config::parse("tissue = white_matter\nphoton = 100\n") {
            Err(ConfigError::UnknownKey { line_no, key }) => {
                assert_eq!(line_no, 2);
                assert_eq!(key, "photon");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        let msg = ConfigError::UnknownKey { line_no: 2, key: "photon".into() }.to_string();
        assert!(msg.contains("known keys"), "{msg}");
    }

    #[test]
    fn geometry_defaults_to_layered() {
        let cfg =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\nphotons = 10").unwrap();
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.tissue.kind(), "layered");
    }

    #[test]
    fn geometry_voxelized_converts_the_preset() {
        let cfg = Config::parse(
            "tissue = phantom 0.05 10 0.9 1.4\ngeometry = voxelized 1 5 4\n\
             detector = disc 2 1\nphotons = 10",
        )
        .unwrap();
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.tissue.kind(), "voxel");
        let grid = sim.tissue.as_voxel().unwrap();
        assert_eq!(grid.dims(), (10, 10, 4));
        assert_eq!(grid.materials().len(), 1);
    }

    #[test]
    fn geometry_voxel_loads_a_grid_file() {
        use lumen_tissue::{VoxelMaterial, VoxelTissue};
        let grid = VoxelTissue::from_fn(
            (4, 4, 3),
            (-2.0, -2.0),
            (1.0, 1.0, 1.0),
            vec![
                VoxelMaterial::new("A", lumen_core::OpticalProperties::new(0.01, 10.0, 0.9, 1.4)),
                VoxelMaterial::new("B", lumen_core::OpticalProperties::new(0.1, 10.0, 0.9, 1.4)),
            ],
            1.0,
            |c| u16::from(c.z > 1.0),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("lumen_cli_geometry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.voxels");
        std::fs::write(&path, grid.to_text()).unwrap();
        let cfg = Config::parse(&format!(
            "geometry = voxel {}\ndetector = disc 2 1\nphotons = 10",
            path.display()
        ))
        .unwrap();
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.tissue.as_voxel(), Some(&grid));
        // The `tissue` key is not needed when a grid file is given.
        assert!(cfg.get("tissue").is_none());
    }

    #[test]
    fn geometry_errors_are_named() {
        let missing = Config::parse(
            "geometry = voxel /nonexistent/grid.voxels\ndetector = disc 2 1\nphotons = 10",
        )
        .unwrap();
        assert!(matches!(
            missing.build_simulation(),
            Err(ConfigError::BadValue { ref key, .. }) if key == "geometry"
        ));
        let unknown = Config::parse(
            "geometry = blob\ntissue = white_matter\ndetector = disc 2 1\nphotons = 10",
        )
        .unwrap();
        assert!(unknown.build_simulation().is_err());
        let bad_voxelized = Config::parse(
            "geometry = voxelized -1 5 4\ntissue = white_matter\ndetector = disc 2 1\nphotons = 10",
        )
        .unwrap();
        assert!(bad_voxelized.build_simulation().is_err());
    }

    #[test]
    fn backend_key_defaults_to_rayon() {
        let cfg =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\nphotons = 10").unwrap();
        assert_eq!(cfg.backend(), "rayon");
        let cfg = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\nbackend = cluster 4",
        )
        .unwrap();
        assert_eq!(cfg.backend(), "cluster 4");
        // The elastic TCP knobs pass through verbatim for from_spec.
        let cfg = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\n\
             backend = tcp 127.0.0.1:7878 3 45",
        )
        .unwrap();
        assert_eq!(cfg.backend(), "tcp 127.0.0.1:7878 3 45");
    }

    #[test]
    fn archive_record_key_enables_recording() {
        let cfg = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\n\
             archive_record = /tmp/run.lmna",
        )
        .unwrap();
        assert_eq!(
            cfg.archive_record().unwrap(),
            Some(("/tmp/run.lmna".into(), RecordOptions { detected_only: false }))
        );
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(sim.options.archive, Some(RecordOptions { detected_only: false }));

        let cfg = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\n\
             archive_record = /tmp/run.lmna detected_only",
        )
        .unwrap();
        assert_eq!(
            cfg.archive_record().unwrap(),
            Some(("/tmp/run.lmna".into(), RecordOptions { detected_only: true }))
        );

        let bad = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\n\
             archive_record = /tmp/run.lmna everything",
        )
        .unwrap();
        assert!(matches!(bad.archive_record(), Err(ConfigError::BadValue { .. })));

        let absent =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\nphotons = 10").unwrap();
        assert_eq!(absent.archive_record().unwrap(), None);
        assert_eq!(absent.build_simulation().unwrap().options.archive, None);
    }

    #[test]
    fn precision_key_selects_the_tier() {
        let fast = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\nprecision = fast",
        )
        .unwrap();
        assert_eq!(fast.precision().unwrap(), Precision::Fast);
        assert_eq!(fast.build_simulation().unwrap().options.precision, Precision::Fast);

        let exact = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\nprecision = exact",
        )
        .unwrap();
        assert_eq!(exact.precision().unwrap(), Precision::Exact);

        let default =
            Config::parse("tissue = white_matter\ndetector = disc 6 1\nphotons = 10").unwrap();
        assert_eq!(default.build_simulation().unwrap().options.precision, Precision::Exact);

        let bad = Config::parse(
            "tissue = white_matter\ndetector = disc 6 1\nphotons = 10\nprecision = sloppy",
        )
        .unwrap();
        assert!(matches!(bad.precision(), Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn scenario_maps_one_to_one() {
        let cfg = Config::parse(FULL).unwrap();
        let scenario = cfg.scenario().unwrap();
        assert_eq!(scenario.photons, 1000);
        assert_eq!(scenario.seed, 7);
        assert_eq!(scenario.tasks, 8);
        assert_eq!(scenario.tissue.len(), 5);
        assert!(scenario.options.path_grid.is_some());
        assert!(scenario.validate().is_ok());
        // The scenario and the legacy simulation agree field-for-field.
        let sim = cfg.build_simulation().unwrap();
        assert_eq!(scenario.simulation(), sim);
    }
}
