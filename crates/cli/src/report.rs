//! Human-readable report printing for CLI runs.

use lumen_core::{Simulation, SimulationResult};

/// Print the standard post-run report to stdout.
pub fn print_report(sim: &Simulation, result: &SimulationResult, elapsed_s: f64) {
    let t = &result.tally;
    println!("== lumen run ==");
    println!(
        "tissue: {} layer(s); source: {}; detector at {} mm ({}){}",
        sim.tissue.len(),
        sim.source.name(),
        sim.detector.separation,
        if sim.detector.ring { "ring" } else { "disc" },
        if sim.detector.gate.is_open() { "" } else { ", gated" },
    );
    println!(
        "photons: {} in {:.2} s ({:.0} photons/s)\n",
        t.launched,
        elapsed_s,
        t.launched as f64 / elapsed_s.max(1e-9)
    );

    println!("outcomes:");
    println!(
        "  detected        {:>10}  ({:.3e} of launched)",
        t.detected,
        result.detected_fraction()
    );
    println!("  diffuse refl.   {:>10.4}", result.diffuse_reflectance());
    println!("  specular refl.  {:>10.4}", result.specular_reflectance());
    println!("  transmittance   {:>10.4}", result.transmittance());
    println!("  absorbed        {:>10.4}", result.absorbed_fraction());
    if t.gate_rejected > 0 {
        println!("  gate-rejected   {:>10}", t.gate_rejected);
    }
    if t.na_rejected > 0 {
        println!("  NA-rejected     {:>10}", t.na_rejected);
    }

    if t.detected > 0 {
        println!("\ndetected-photon statistics:");
        println!(
            "  pathlength      {:>10.1} mm (std {:.1})",
            result.mean_detected_pathlength(),
            result.std_detected_pathlength()
        );
        println!(
            "  DPF             {:>10.2}",
            result.differential_pathlength_factor(sim.detector.separation)
        );
        println!(
            "  penetration     {:>10.1} mm mean, {:.1} mm max",
            result.mean_penetration_depth(),
            result.max_penetration_depth()
        );
        println!("  scatters        {:>10.0} per photon", result.mean_detected_scatters());
    }

    println!("\nabsorbed weight per layer (per launched photon):");
    for (layer, frac) in sim.tissue.layers().iter().zip(result.absorbed_fraction_by_layer()) {
        println!("  {:<16} {:.5}", layer.name, frac);
    }

    if let Some(grid) = t.path_grid.as_ref() {
        println!(
            "\npath grid: {}x{}x{} voxels, total visit weight {:.3e}",
            grid.spec.nx,
            grid.spec.ny,
            grid.spec.nz,
            grid.total()
        );
    }
    if let Some(hist) = t.path_histogram.as_ref() {
        println!(
            "path histogram: {} bins to {} mm, {} detections recorded",
            hist.counts.len(),
            hist.max_mm,
            hist.total()
        );
    }
    println!(
        "\nenergy accounted: {:.4} (specular + exits + absorbed per photon)",
        t.accounted_weight_fraction()
    );
}
