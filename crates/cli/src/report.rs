//! Human-readable report printing for CLI runs.

use lumen_core::{RunReport, Scenario};

/// Print the standard post-run report to stdout.
pub fn print_report(scenario: &Scenario, run: &RunReport) {
    if run.is_virtual() {
        print_virtual_report(scenario, run);
        return;
    }
    let result = &run.result;
    let t = &result.tally;
    println!("== lumen run ==");
    println!(
        "tissue: {} {} region(s); source: {}; detector at {} mm ({}){}",
        scenario.tissue.kind(),
        scenario.tissue.region_count(),
        scenario.source.name(),
        scenario.detector.separation,
        if scenario.detector.ring { "ring" } else { "disc" },
        if scenario.detector.gate.is_open() { "" } else { ", gated" },
    );
    println!(
        "backend: {}; photons: {} in {:.2} s ({:.0} photons/s)",
        run.backend,
        t.launched,
        run.wall_seconds,
        run.photons_per_second()
    );
    if run.workers.len() > 1 || run.requeues > 0 {
        println!("workers: {}; requeues after failures: {}", run.workers.len(), run.requeues);
    }
    println!();

    println!("outcomes:");
    println!(
        "  detected        {:>10}  ({:.3e} of launched)",
        t.detected,
        result.detected_fraction()
    );
    println!("  diffuse refl.   {:>10.4}", result.diffuse_reflectance());
    println!("  specular refl.  {:>10.4}", result.specular_reflectance());
    println!("  transmittance   {:>10.4}", result.transmittance());
    println!("  absorbed        {:>10.4}", result.absorbed_fraction());
    if t.gate_rejected > 0 {
        println!("  gate-rejected   {:>10}", t.gate_rejected);
    }
    if t.na_rejected > 0 {
        println!("  NA-rejected     {:>10}", t.na_rejected);
    }

    if t.detected > 0 {
        println!("\ndetected-photon statistics:");
        println!(
            "  pathlength      {:>10.1} mm (std {:.1})",
            result.mean_detected_pathlength(),
            result.std_detected_pathlength()
        );
        println!(
            "  DPF             {:>10.2}",
            result.differential_pathlength_factor(scenario.detector.separation)
        );
        println!(
            "  penetration     {:>10.1} mm mean, {:.1} mm max",
            result.mean_penetration_depth(),
            result.max_penetration_depth()
        );
        println!("  scatters        {:>10.0} per photon", result.mean_detected_scatters());
    }

    println!("\nabsorbed weight per region (per launched photon):");
    for (region, frac) in result.absorbed_fraction_by_layer().iter().enumerate() {
        println!("  {:<16} {:.5}", scenario.tissue.region_name(region), frac);
    }

    if let Some(grid) = t.path_grid.as_ref() {
        println!(
            "\npath grid: {}x{}x{} voxels, total visit weight {:.3e}",
            grid.spec.nx,
            grid.spec.ny,
            grid.spec.nz,
            grid.total()
        );
    }
    if let Some(hist) = t.path_histogram.as_ref() {
        println!(
            "path histogram: {} bins to {} mm, {} detections recorded",
            hist.counts.len(),
            hist.max_mm,
            hist.total()
        );
    }
    println!(
        "\nenergy accounted: {:.4} (specular + exits + absorbed per photon)",
        t.accounted_weight_fraction()
    );
}

/// Report for simulated (DES) backends: no photons were traced; the value
/// is the predicted timing of the scenario on the modelled machine pool.
fn print_virtual_report(scenario: &Scenario, run: &RunReport) {
    let makespan = run.virtual_seconds.unwrap_or(0.0);
    println!("== lumen run (simulated cluster) ==");
    println!(
        "predicted makespan for {} photons on {} simulated machine(s): {:.1} s ({:.2} h)",
        scenario.photons,
        run.workers.len(),
        makespan,
        makespan / 3600.0
    );
    let total: u64 = run.workers.iter().map(|w| w.photons).sum();
    let busiest = run.workers.iter().map(|w| w.photons).max().unwrap_or(0);
    println!(
        "work distribution: {} tasks over the pool; busiest machine simulated {} of {} photons",
        run.workers.iter().map(|w| w.tasks_completed).sum::<u64>(),
        busiest,
        total
    );
    println!(
        "(timing model only — no photon transport was executed; DES ran in {:.3} s)",
        run.wall_seconds
    );
}
