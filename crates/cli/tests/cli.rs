//! End-to-end tests of the `lumen` binary.

use std::process::Command;

fn lumen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lumen"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = lumen().output().expect("run lumen");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn example_config_parses_back() {
    let out = lumen().arg("example-config").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tissue"));
    // The emitted example must be machine-parseable.
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("example.cfg");
    std::fs::write(&cfg_path, text.as_bytes()).unwrap();
    // A tiny photon budget keeps the round trip fast.
    let text = text.replace("photons   = 200000", "photons   = 2000");
    std::fs::write(&cfg_path, text.as_bytes()).unwrap();
    let run = lumen().arg("run").arg(&cfg_path).output().expect("run cfg");
    assert!(run.status.success(), "stderr: {}", String::from_utf8_lossy(&run.stderr));
    let report = String::from_utf8_lossy(&run.stdout);
    assert!(report.contains("== lumen run =="), "{report}");
    assert!(report.contains("energy accounted"), "{report}");
    std::fs::remove_file(&cfg_path).ok();
}

#[test]
fn presets_lists_all_models() {
    let out = lumen().arg("presets").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["adult_head", "neonatal_head", "white_matter", "Scalp", "CSF"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn run_rejects_missing_file() {
    let out = lumen().arg("run").arg("/nonexistent/zzz.cfg").output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn run_reports_config_errors_with_location() {
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("broken.cfg");
    std::fs::write(&cfg_path, "tissue = white_matter\nnot a kv line\n").unwrap();
    let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
    std::fs::remove_file(&cfg_path).ok();
}

#[test]
fn unknown_key_is_a_named_error() {
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("typo.cfg");
    std::fs::write(
        &cfg_path,
        "tissue = white_matter\ndetector = disc 3 1\nphoton = 100\nphotons = 100\n",
    )
    .unwrap();
    let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown key `photon`"), "{err}");
    assert!(err.contains("line 3"), "{err}");
    std::fs::remove_file(&cfg_path).ok();
}

#[test]
fn backends_give_identical_physics_reports() {
    // The acceptance criterion end-to-end: the same config through
    // `backend = sequential`, `rayon`, and `cluster` prints identical
    // physics (only the timing line may differ).
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base = "tissue = white_matter\ndetector = disc 3 1\nphotons = 4000\nseed = 9\ntasks = 8\n";
    let run_with = |backend: &str| {
        let cfg_path = dir.join(format!("be_{}.cfg", backend.split_whitespace().next().unwrap()));
        std::fs::write(&cfg_path, format!("{base}backend = {backend}\n")).unwrap();
        let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        std::fs::remove_file(&cfg_path).ok();
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("photons/s") && !l.contains("workers:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    // The timing line (which also names the backend) and worker line are
    // filtered, so everything left is pure physics and must be identical.
    let seq = run_with("sequential");
    let rayon = run_with("rayon");
    let cluster = run_with("cluster 3");
    assert!(seq.contains("detected"), "{seq}");
    assert_eq!(seq, rayon);
    assert_eq!(seq, cluster);
}

#[test]
fn sim_backend_prints_virtual_timing() {
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("sim.cfg");
    std::fs::write(
        &cfg_path,
        "tissue = white_matter\ndetector = disc 3 1\nphotons = 1000000\nbackend = sim 60\n",
    )
    .unwrap();
    let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated cluster"), "{text}");
    assert!(text.contains("predicted makespan"), "{text}");
    assert!(text.contains("60 simulated machine(s)"), "{text}");
    std::fs::remove_file(&cfg_path).ok();
}

#[test]
fn bad_backend_spec_is_rejected() {
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("badbe.cfg");
    std::fs::write(
        &cfg_path,
        "tissue = white_matter\ndetector = disc 3 1\nphotons = 100\nbackend = warp\n",
    )
    .unwrap();
    let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend"), "{err}");
    std::fs::remove_file(&cfg_path).ok();
}

#[test]
fn deterministic_across_invocations() {
    let dir = std::env::temp_dir().join("lumen_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("det.cfg");
    std::fs::write(
        &cfg_path,
        "tissue = white_matter\ndetector = disc 3 1\nphotons = 5000\nseed = 9\ntasks = 8\n",
    )
    .unwrap();
    let run = || {
        let out = lumen().arg("run").arg(&cfg_path).output().expect("run");
        assert!(out.status.success());
        // Strip the timing line, which legitimately varies.
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("photons/s"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run(), run());
    std::fs::remove_file(&cfg_path).ok();
}
