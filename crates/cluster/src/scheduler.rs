//! Task-scheduling policies for the cluster simulator.
//!
//! The original platform uses demand-driven *self-scheduling*: an idle
//! client asks for work, so fast machines naturally take more batches and
//! slow machines never become the bottleneck. The paper cites Page &
//! Naughton's genetic-algorithm scheduler (reference \[4\]) for the
//! heterogeneous case; we implement a faithful small GA over static
//! task→machine assignments so the two approaches can be compared
//! (experiment A1 in DESIGN.md).

use mcrng::{McRng, Xoshiro256PlusPlus};

/// A scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Demand-driven: the DES assigns each task to the next idle machine.
    Dynamic,
    /// Static: `plan[i]` is the machine executing task `i`.
    Static(Vec<usize>),
}

/// A policy that maps a job onto machines.
pub trait Scheduler {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
    /// Produce a plan for `n_tasks` tasks on machines with the given
    /// Mflop/s `rates`.
    fn plan(&self, n_tasks: usize, rates: &[f64], seed: u64) -> Plan;
}

/// Demand-driven self-scheduling (the platform's native policy).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfScheduling;

impl Scheduler for SelfScheduling {
    fn name(&self) -> &'static str {
        "self-scheduling"
    }

    fn plan(&self, _n_tasks: usize, _rates: &[f64], _seed: u64) -> Plan {
        Plan::Dynamic
    }
}

/// Naive static pre-partitioning: tasks dealt round-robin, ignoring
/// machine speed. The baseline that heterogeneity punishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticChunking;

impl Scheduler for StaticChunking {
    fn name(&self) -> &'static str {
        "static-chunking"
    }

    fn plan(&self, n_tasks: usize, rates: &[f64], _seed: u64) -> Plan {
        let n = rates.len().max(1);
        Plan::Static((0..n_tasks).map(|i| i % n).collect())
    }
}

/// Rate-proportional static plan: machine `m` receives a share of tasks
/// proportional to its speed. The natural "informed static" baseline and
/// the GA's seeding heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateProportional;

impl Scheduler for RateProportional {
    fn name(&self) -> &'static str {
        "rate-proportional"
    }

    fn plan(&self, n_tasks: usize, rates: &[f64], _seed: u64) -> Plan {
        Plan::Static(rate_proportional_plan(n_tasks, rates))
    }
}

/// Largest-remaining-share assignment, deterministic.
fn rate_proportional_plan(n_tasks: usize, rates: &[f64]) -> Vec<usize> {
    let total: f64 = rates.iter().sum();
    let deficit: Vec<f64> = rates.iter().map(|r| r / total).collect();
    let mut assigned = vec![0usize; rates.len()];
    let mut plan = Vec::with_capacity(n_tasks);
    for t in 0..n_tasks {
        // Pick the machine whose assigned share lags its target most.
        let mut best = 0usize;
        let mut best_lag = f64::NEG_INFINITY;
        for (m, &target) in deficit.iter().enumerate() {
            let lag = target * (t + 1) as f64 - assigned[m] as f64;
            if lag > best_lag {
                best_lag = lag;
                best = m;
            }
        }
        assigned[best] += 1;
        plan.push(best);
    }
    plan
}

/// Genetic-algorithm scheduler after Page & Naughton (paper ref. \[4\]):
/// evolves static task→machine assignments to minimise predicted makespan.
#[derive(Debug, Clone, Copy)]
pub struct GaScheduler {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for selection.
    pub tournament: usize,
}

impl Default for GaScheduler {
    fn default() -> Self {
        Self { population: 40, generations: 120, mutation_rate: 0.02, tournament: 3 }
    }
}

impl GaScheduler {
    /// Predicted makespan of a static plan: each machine's task count
    /// divided by its rate (batches are near-uniform, so count/rate is the
    /// right load proxy).
    fn fitness(plan: &[usize], rates: &[f64]) -> f64 {
        let mut load = vec![0.0f64; rates.len()];
        for &m in plan {
            load[m] += 1.0 / rates[m];
        }
        load.iter().copied().fold(0.0, f64::max)
    }
}

impl Scheduler for GaScheduler {
    fn name(&self) -> &'static str {
        "ga-scheduler"
    }

    fn plan(&self, n_tasks: usize, rates: &[f64], seed: u64) -> Plan {
        let n_machines = rates.len();
        if n_machines <= 1 || n_tasks == 0 {
            return Plan::Static(vec![0; n_tasks]);
        }
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x6A5C_7EDD_1E5C_0DE5);
        // Population: one rate-proportional seed, the rest random.
        let mut population: Vec<Vec<usize>> = Vec::with_capacity(self.population);
        population.push(rate_proportional_plan(n_tasks, rates));
        while population.len() < self.population {
            population
                .push((0..n_tasks).map(|_| rng.next_below(n_machines as u64) as usize).collect());
        }
        let mut scores: Vec<f64> = population.iter().map(|p| Self::fitness(p, rates)).collect();

        for _ in 0..self.generations {
            let mut next: Vec<Vec<usize>> = Vec::with_capacity(self.population);
            // Elitism: carry the champion over.
            let best_idx = argmin(&scores);
            next.push(population[best_idx].clone());
            while next.len() < self.population {
                let a = self.select(&scores, &mut rng);
                let b = self.select(&scores, &mut rng);
                let mut child: Vec<usize> = population[a]
                    .iter()
                    .zip(&population[b])
                    .map(|(&ga, &gb)| if rng.next_f64() < 0.5 { ga } else { gb })
                    .collect();
                for gene in &mut child {
                    if rng.next_f64() < self.mutation_rate {
                        *gene = rng.next_below(n_machines as u64) as usize;
                    }
                }
                next.push(child);
            }
            population = next;
            scores = population.iter().map(|p| Self::fitness(p, rates)).collect();
        }

        Plan::Static(population[argmin(&scores)].clone())
    }
}

impl GaScheduler {
    fn select<R: McRng>(&self, scores: &[f64], rng: &mut R) -> usize {
        let mut best = rng.next_below(scores.len() as u64) as usize;
        for _ in 1..self.tournament {
            let c = rng.next_below(scores.len() as u64) as usize;
            if scores[c] < scores[best] {
                best = c;
            }
        }
        best
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_scheduling_is_dynamic() {
        assert_eq!(SelfScheduling.plan(10, &[1.0, 2.0], 0), Plan::Dynamic);
    }

    #[test]
    fn static_chunking_round_robins() {
        match StaticChunking.plan(6, &[1.0, 1.0, 1.0], 0) {
            Plan::Static(p) => assert_eq!(p, vec![0, 1, 2, 0, 1, 2]),
            _ => panic!("expected static plan"),
        }
    }

    #[test]
    fn rate_proportional_respects_rates() {
        match RateProportional.plan(100, &[1.0, 3.0], 0) {
            Plan::Static(p) => {
                let fast = p.iter().filter(|&&m| m == 1).count();
                assert!((70..=80).contains(&fast), "fast machine got {fast}/100");
                assert_eq!(p.len(), 100);
            }
            _ => panic!("expected static plan"),
        }
    }

    #[test]
    fn ga_plan_covers_all_tasks_with_valid_machines() {
        let ga = GaScheduler::default();
        match ga.plan(50, &[1.0, 2.0, 4.0], 9) {
            Plan::Static(p) => {
                assert_eq!(p.len(), 50);
                assert!(p.iter().all(|&m| m < 3));
            }
            _ => panic!("expected static plan"),
        }
    }

    #[test]
    fn ga_beats_round_robin_on_heterogeneous_rates() {
        let rates = [10.0, 10.0, 100.0, 200.0];
        let n_tasks = 80;
        let ga = GaScheduler::default();
        let ga_plan = match ga.plan(n_tasks, &rates, 3) {
            Plan::Static(p) => p,
            _ => unreachable!(),
        };
        let rr_plan = match StaticChunking.plan(n_tasks, &rates, 3) {
            Plan::Static(p) => p,
            _ => unreachable!(),
        };
        let ga_ms = GaScheduler::fitness(&ga_plan, &rates);
        let rr_ms = GaScheduler::fitness(&rr_plan, &rates);
        assert!(ga_ms < rr_ms * 0.5, "GA should halve round-robin's makespan: {ga_ms} vs {rr_ms}");
    }

    #[test]
    fn ga_is_at_least_as_good_as_its_seed_heuristic() {
        let rates = [29.5, 209.5, 15.0, 154.0, 91.0];
        let n_tasks = 200;
        let ga_plan = match GaScheduler::default().plan(n_tasks, &rates, 1) {
            Plan::Static(p) => p,
            _ => unreachable!(),
        };
        let rp_plan = rate_proportional_plan(n_tasks, &rates);
        assert!(
            GaScheduler::fitness(&ga_plan, &rates)
                <= GaScheduler::fitness(&rp_plan, &rates) + 1e-12
        );
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let rates = [1.0, 5.0, 9.0];
        let a = GaScheduler::default().plan(30, &rates, 4);
        let b = GaScheduler::default().plan(30, &rates, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_cases() {
        // One machine: everything goes there.
        match GaScheduler::default().plan(5, &[7.0], 0) {
            Plan::Static(p) => assert_eq!(p, vec![0; 5]),
            _ => panic!(),
        }
        // Zero tasks.
        match GaScheduler::default().plan(0, &[1.0, 2.0], 0) {
            Plan::Static(p) => assert!(p.is_empty()),
            _ => panic!(),
        }
    }
}
