//! Binary wire format for the DataManager ⇄ client protocol.
//!
//! The original platform shipped Java-serialized objects over TCP sockets.
//! The in-process executor uses channels and needs no serialization, but a
//! multi-machine deployment does — so the protocol's encoding substrate is
//! implemented here from scratch: a compact little-endian format with a
//! magic header and version byte, covering tasks, worker stats, and full
//! tallies (including optional grids). No external serialization crate is
//! needed.
//!
//! Format: all integers little-endian; `u64` lengths prefix sequences;
//! `Option<T>` is a presence byte then the payload; floats are IEEE-754
//! bit patterns.

use crate::protocol::{SimTask, WorkerStats};
use lumen_core::radial::{CylinderGrid, RadialProfile, RadialSpec};
use lumen_core::tally::{GridSpec, PathHistogram, Tally, VisitGrid};
use lumen_core::Vec3;

/// Magic bytes identifying a lumen wire message.
pub const MAGIC: [u8; 4] = *b"LMN1";
/// Wire format version.
pub const VERSION: u8 = 1;

/// Encoding buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder with the magic header.
    pub fn new() -> Self {
        let mut e = Self { buf: Vec::with_capacity(64) };
        e.buf.extend_from_slice(&MAGIC);
        e.buf.push(VERSION);
        e
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw pre-encoded bytes (no header).
    pub fn buf_extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Decoding cursor.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Wire decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// Ran out of bytes mid-message.
    Truncated,
    /// A length prefix that cannot possibly fit the remaining bytes.
    BadLength(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadHeader => write!(f, "bad magic or version header"),
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

impl<'a> Decoder<'a> {
    /// Open a decoder, checking the header.
    pub fn new(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < 5 || buf[..4] != MAGIC || buf[4] != VERSION {
            return Err(WireError::BadHeader);
        }
        Ok(Self { buf, pos: 5 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn checked_len(&self, n: u64, elem_bytes: usize) -> Result<usize, WireError> {
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes as u64).map(|b| b > remaining).unwrap_or(true) {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Assert the message is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

/// Encode a task assignment.
pub fn encode_task(task: &SimTask) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(task.task_id);
    e.put_u64(task.photons);
    e.finish()
}

/// Decode a task assignment.
pub fn decode_task(bytes: &[u8]) -> Result<SimTask, WireError> {
    let mut d = Decoder::new(bytes)?;
    let task = SimTask { task_id: d.get_u64()?, photons: d.get_u64()? };
    d.finish()?;
    Ok(task)
}

/// Encode worker statistics.
pub fn encode_worker_stats(stats: &WorkerStats) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(stats.tasks_completed);
    e.put_u64(stats.photons);
    e.put_u64(stats.tasks_failed);
    e.finish()
}

/// Decode worker statistics.
pub fn decode_worker_stats(bytes: &[u8]) -> Result<WorkerStats, WireError> {
    let mut d = Decoder::new(bytes)?;
    let stats = WorkerStats {
        tasks_completed: d.get_u64()?,
        photons: d.get_u64()?,
        tasks_failed: d.get_u64()?,
    };
    d.finish()?;
    Ok(stats)
}

/// Encode the scalar portion of a tally (counts, weights, per-layer sums,
/// path/depth moments). Grids ride separately in a real deployment because
/// of their size; here the scalar message is what every task returns.
pub fn encode_tally_scalars(t: &Tally) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(t.launched);
    e.put_u64(t.detected);
    e.put_u64(t.reflected);
    e.put_u64(t.transmitted);
    e.put_u64(t.roulette_killed);
    e.put_u64(t.fully_absorbed);
    e.put_u64(t.expired);
    e.put_u64(t.gate_rejected);
    e.put_u64(t.na_rejected);
    e.put_f64(t.specular_weight);
    e.put_f64(t.detected_weight);
    e.put_f64(t.reflected_weight);
    e.put_f64(t.transmitted_weight);
    e.put_f64_slice(&t.absorbed_by_layer);
    e.put_f64(t.detected_path_sum);
    e.put_f64(t.detected_path_sq_sum);
    e.put_f64(t.detected_weight_path_sum);
    e.put_f64(t.detected_depth_sum);
    e.put_f64(t.detected_depth_max);
    e.put_u64_slice(&t.detected_reached_layer);
    e.put_f64_slice(&t.detected_partial_path);
    e.put_u64(t.detected_scatter_sum);
    e.finish()
}

/// Decode a scalar tally (grids absent).
pub fn decode_tally_scalars(bytes: &[u8]) -> Result<Tally, WireError> {
    let mut d = Decoder::new(bytes)?;
    let t = decode_tally_scalars_body(&mut d)?;
    d.finish()?;
    Ok(t)
}

fn decode_tally_scalars_body(d: &mut Decoder) -> Result<Tally, WireError> {
    let launched = d.get_u64()?;
    let detected = d.get_u64()?;
    let reflected = d.get_u64()?;
    let transmitted = d.get_u64()?;
    let roulette_killed = d.get_u64()?;
    let fully_absorbed = d.get_u64()?;
    let expired = d.get_u64()?;
    let gate_rejected = d.get_u64()?;
    let na_rejected = d.get_u64()?;
    let specular_weight = d.get_f64()?;
    let detected_weight = d.get_f64()?;
    let reflected_weight = d.get_f64()?;
    let transmitted_weight = d.get_f64()?;
    let absorbed_by_layer = d.get_f64_vec()?;
    let detected_path_sum = d.get_f64()?;
    let detected_path_sq_sum = d.get_f64()?;
    let detected_weight_path_sum = d.get_f64()?;
    let detected_depth_sum = d.get_f64()?;
    let detected_depth_max = d.get_f64()?;
    let detected_reached_layer = d.get_u64_vec()?;
    let detected_partial_path = d.get_f64_vec()?;
    let detected_scatter_sum = d.get_u64()?;

    let mut t = Tally::new(absorbed_by_layer.len(), None, None);
    t.launched = launched;
    t.detected = detected;
    t.reflected = reflected;
    t.transmitted = transmitted;
    t.roulette_killed = roulette_killed;
    t.fully_absorbed = fully_absorbed;
    t.expired = expired;
    t.gate_rejected = gate_rejected;
    t.na_rejected = na_rejected;
    t.specular_weight = specular_weight;
    t.detected_weight = detected_weight;
    t.reflected_weight = reflected_weight;
    t.transmitted_weight = transmitted_weight;
    t.absorbed_by_layer = absorbed_by_layer;
    t.detected_path_sum = detected_path_sum;
    t.detected_path_sq_sum = detected_path_sq_sum;
    t.detected_weight_path_sum = detected_weight_path_sum;
    t.detected_depth_sum = detected_depth_sum;
    t.detected_depth_max = detected_depth_max;
    t.detected_reached_layer = detected_reached_layer;
    t.detected_partial_path = detected_partial_path;
    t.detected_scatter_sum = detected_scatter_sum;
    Ok(t)
}

fn put_vec3(e: &mut Encoder, v: Vec3) {
    e.put_f64(v.x);
    e.put_f64(v.y);
    e.put_f64(v.z);
}

fn get_vec3(d: &mut Decoder) -> Result<Vec3, WireError> {
    Ok(Vec3::new(d.get_f64()?, d.get_f64()?, d.get_f64()?))
}

fn put_grid_spec(e: &mut Encoder, s: &GridSpec) {
    e.put_u64(s.nx as u64);
    e.put_u64(s.ny as u64);
    e.put_u64(s.nz as u64);
    put_vec3(e, s.min);
    put_vec3(e, s.max);
}

fn get_grid_spec(d: &mut Decoder) -> Result<GridSpec, WireError> {
    let nx = d.get_u64()? as usize;
    let ny = d.get_u64()? as usize;
    let nz = d.get_u64()? as usize;
    // Bound before the data vec is even read: a grid cannot have more
    // voxels than remaining bytes / 8.
    if nx.checked_mul(ny).and_then(|v| v.checked_mul(nz)).is_none() {
        return Err(WireError::BadLength(u64::MAX));
    }
    let min = get_vec3(d)?;
    let max = get_vec3(d)?;
    Ok(GridSpec { nx, ny, nz, min, max })
}

fn put_visit_grid(e: &mut Encoder, g: &VisitGrid) {
    put_grid_spec(e, &g.spec);
    e.put_f64_slice(g.data());
}

fn get_visit_grid(d: &mut Decoder) -> Result<VisitGrid, WireError> {
    let spec = get_grid_spec(d)?;
    let data = d.get_f64_vec()?;
    if data.len() != spec.len() {
        return Err(WireError::BadLength(data.len() as u64));
    }
    let mut g = VisitGrid::new(spec);
    for (i, v) in data.into_iter().enumerate() {
        // Rebuild by depositing at voxel centres: exact because centres
        // index back to their own voxel.
        if v != 0.0 {
            g.deposit(spec.centre_of(i), v);
        }
    }
    Ok(g)
}

fn put_radial_profile(e: &mut Encoder, p: &RadialProfile) {
    e.put_u64(p.spec.nr as u64);
    e.put_f64(p.spec.r_max);
    e.put_f64_slice(p.weights());
    e.put_f64(p.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
fn get_radial_profile(d: &mut Decoder) -> Result<RadialProfile, WireError> {
    let nr = d.get_u64()? as usize;
    let r_max = d.get_f64()?;
    let weights = d.get_f64_vec()?;
    if weights.len() != nr || !(r_max > 0.0) || nr == 0 {
        return Err(WireError::BadLength(weights.len() as u64));
    }
    let spec = RadialSpec { nr, r_max };
    let mut p = RadialProfile::new(spec);
    for (i, w) in weights.into_iter().enumerate() {
        if w != 0.0 {
            p.record(spec.r_of(i), w);
        }
    }
    p.overflow = d.get_f64()?;
    Ok(p)
}

fn put_path_histogram(e: &mut Encoder, h: &PathHistogram) {
    e.put_f64(h.max_mm);
    e.put_u64_slice(&h.counts);
    e.put_u64(h.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn get_path_histogram(d: &mut Decoder) -> Result<PathHistogram, WireError> {
    let max_mm = d.get_f64()?;
    let counts = d.get_u64_vec()?;
    if !(max_mm > 0.0) || counts.is_empty() {
        return Err(WireError::BadLength(counts.len() as u64));
    }
    let mut h = PathHistogram::new(max_mm, counts.len());
    h.counts = counts;
    h.overflow = d.get_u64()?;
    Ok(h)
}

fn put_cylinder(e: &mut Encoder, g: &CylinderGrid) {
    e.put_u64(g.radial.nr as u64);
    e.put_f64(g.radial.r_max);
    e.put_u64(g.nz as u64);
    e.put_f64(g.z_max);
    let mut flat = Vec::with_capacity(g.radial.nr * g.nz);
    for iz in 0..g.nz {
        for ir in 0..g.radial.nr {
            flat.push(g.at(ir, iz));
        }
    }
    e.put_f64_slice(&flat);
    e.put_f64(g.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn get_cylinder(d: &mut Decoder) -> Result<CylinderGrid, WireError> {
    let nr = d.get_u64()? as usize;
    let r_max = d.get_f64()?;
    let nz = d.get_u64()? as usize;
    let z_max = d.get_f64()?;
    let flat = d.get_f64_vec()?;
    if nr == 0 || nz == 0 || !(r_max > 0.0) || !(z_max > 0.0) || flat.len() != nr * nz {
        return Err(WireError::BadLength(flat.len() as u64));
    }
    let radial = RadialSpec { nr, r_max };
    let mut g = CylinderGrid::new(radial, nz, z_max);
    for iz in 0..nz {
        for ir in 0..nr {
            let v = flat[iz * nr + ir];
            if v != 0.0 {
                let r = radial.r_of(ir);
                let z = (iz as f64 + 0.5) * z_max / nz as f64;
                g.deposit(r, z, v);
            }
        }
    }
    g.overflow = d.get_f64()?;
    Ok(g)
}

fn put_option<T>(e: &mut Encoder, opt: Option<&T>, put: impl FnOnce(&mut Encoder, &T)) {
    match opt {
        Some(v) => {
            e.put_u8(1);
            put(e, v);
        }
        None => e.put_u8(0),
    }
}

fn get_option<T>(
    d: &mut Decoder,
    get: impl FnOnce(&mut Decoder) -> Result<T, WireError>,
) -> Result<Option<T>, WireError> {
    match d.get_u8()? {
        0 => Ok(None),
        _ => Ok(Some(get(d)?)),
    }
}

/// Encode a complete tally, grids and all — what a worker returns over
/// the network.
pub fn encode_tally(t: &Tally) -> Vec<u8> {
    // Scalars first (re-using the scalar layout, minus header duplication).
    let scalars = encode_tally_scalars(t);
    let mut e = Encoder::new();
    // Embed the scalar body (skip its header).
    e.buf_extend(&scalars[5..]);
    put_option(&mut e, t.path_grid.as_ref(), put_visit_grid);
    put_option(&mut e, t.absorption_grid.as_ref(), put_visit_grid);
    put_option(&mut e, t.path_histogram.as_ref(), put_path_histogram);
    put_option(&mut e, t.reflectance_r.as_ref(), put_radial_profile);
    put_option(&mut e, t.absorption_rz.as_ref(), put_cylinder);
    e.finish()
}

/// Decode a complete tally.
pub fn decode_tally(bytes: &[u8]) -> Result<Tally, WireError> {
    let mut d = Decoder::new(bytes)?;
    let mut t = decode_tally_scalars_body(&mut d)?;
    t.path_grid = get_option(&mut d, get_visit_grid)?;
    t.absorption_grid = get_option(&mut d, get_visit_grid)?;
    t.path_histogram = get_option(&mut d, get_path_histogram)?;
    t.reflectance_r = get_option(&mut d, get_radial_profile)?;
    t.absorption_rz = get_option(&mut d, get_cylinder)?;
    d.finish()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn task_round_trip() {
        let t = SimTask { task_id: 42, photons: 1_000_000 };
        assert_eq!(decode_task(&encode_task(&t)).unwrap(), t);
    }

    #[test]
    fn stats_round_trip() {
        let s = WorkerStats { tasks_completed: 7, photons: 175_000, tasks_failed: 2 };
        assert_eq!(decode_worker_stats(&encode_worker_stats(&s)).unwrap(), s);
    }

    #[test]
    fn tally_round_trip_preserves_everything() {
        let mut t = Tally::new(3, None, None);
        t.launched = 1000;
        t.detected = 10;
        t.reflected = 800;
        t.roulette_killed = 190;
        t.specular_weight = 27.5;
        t.detected_weight = 3.25;
        t.absorbed_by_layer = vec![1.5, 0.25, 0.0625];
        t.detected_path_sum = 512.0;
        t.detected_reached_layer = vec![10, 4, 1];
        t.detected_scatter_sum = 12345;
        let decoded = decode_tally_scalars(&encode_tally_scalars(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(decode_task(b"XXXX\x01rest"), Err(WireError::BadHeader));
        assert_eq!(decode_task(b""), Err(WireError::BadHeader));
        // Wrong version byte.
        let mut good = encode_task(&SimTask { task_id: 1, photons: 2 });
        good[4] = 99;
        assert_eq!(decode_task(&good), Err(WireError::BadHeader));
    }

    #[test]
    fn truncated_message_is_rejected() {
        let bytes = encode_task(&SimTask { task_id: 1, photons: 2 });
        for cut in 5..bytes.len() {
            assert!(decode_task(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_task(&SimTask { task_id: 1, photons: 2 });
        bytes.push(0);
        assert_eq!(decode_task(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        // A tally message claiming 2^60 layers must fail fast.
        let mut e = Encoder::new();
        for _ in 0..9 {
            e.put_u64(1);
        }
        for _ in 0..4 {
            e.put_f64(0.0);
        }
        e.put_u64(1 << 60); // absurd layer count
        let bytes = e.finish();
        match decode_tally_scalars(&bytes) {
            Err(WireError::BadLength(n)) => assert_eq!(n, 1 << 60),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn full_tally_round_trip_with_all_grids() {
        use lumen_core::radial::RadialSpec;
        use lumen_core::tally::GridSpec;
        use lumen_core::Vec3;
        let spec = GridSpec::cubic(5, Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 2.0));
        let mut t = Tally::new(2, Some(spec), Some(spec))
            .with_path_histogram(100.0, 8)
            .with_reflectance_profile(RadialSpec { nr: 6, r_max: 3.0 })
            .with_absorption_rz(RadialSpec { nr: 4, r_max: 2.0 }, 3, 6.0);
        t.launched = 500;
        t.detected = 7;
        t.absorbed_by_layer = vec![1.25, 0.5];
        t.detected_reached_layer = vec![7, 3];
        t.path_grid.as_mut().unwrap().deposit(Vec3::new(0.1, 0.2, 0.3), 2.5);
        t.absorption_grid.as_mut().unwrap().deposit(Vec3::new(-0.5, 0.0, 1.5), 0.75);
        t.path_histogram.as_mut().unwrap().record(42.0);
        t.path_histogram.as_mut().unwrap().record(250.0); // overflow
        t.reflectance_r.as_mut().unwrap().record(1.1, 0.25);
        t.reflectance_r.as_mut().unwrap().record(9.0, 0.5); // overflow
        t.absorption_rz.as_mut().unwrap().deposit(0.6, 2.2, 0.125);

        let bytes = encode_tally(&t);
        let decoded = decode_tally(&bytes).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn full_tally_round_trip_without_grids() {
        let mut t = Tally::new(1, None, None);
        t.launched = 10;
        let decoded = decode_tally(&encode_tally(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn full_tally_rejects_truncation() {
        let mut t = Tally::new(1, None, None);
        t.launched = 10;
        let bytes = encode_tally(&t);
        assert!(decode_tally(&bytes[..bytes.len() - 1]).is_err());
    }

    proptest! {
        #[test]
        fn task_round_trips(id in any::<u64>(), photons in any::<u64>()) {
            let t = SimTask { task_id: id, photons };
            prop_assert_eq!(decode_task(&encode_task(&t)).unwrap(), t);
        }

        #[test]
        fn tally_round_trips(
            launched in 0u64..1_000_000,
            detected in 0u64..1000,
            weights in proptest::collection::vec(0.0f64..100.0, 1..6)
        ) {
            let mut t = Tally::new(weights.len(), None, None);
            t.launched = launched;
            t.detected = detected;
            t.absorbed_by_layer = weights.clone();
            t.detected_reached_layer = vec![0; weights.len()];
            let decoded = decode_tally_scalars(&encode_tally_scalars(&t)).unwrap();
            prop_assert_eq!(decoded, t);
        }
    }
}
