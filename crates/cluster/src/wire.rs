//! Binary wire format for the DataManager ⇄ client protocol.
//!
//! The original platform shipped Java-serialized objects over TCP sockets.
//! The in-process executor uses channels and needs no serialization, but a
//! multi-machine deployment does — so the protocol's encoding substrate is
//! implemented here from scratch: a compact little-endian format with a
//! magic header and version byte, covering tasks, worker stats, and full
//! tallies (including optional grids). No external serialization crate is
//! needed.
//!
//! Format: all integers little-endian; `u64` lengths prefix sequences;
//! `Option<T>` is a presence byte then the payload; floats are IEEE-754
//! bit patterns.

use crate::protocol::{SimTask, WorkerStats};
use lumen_core::archive::{PathArchive, RecordOptions, CLASS_TRANSMITTED};
use lumen_core::engine::Scenario;
use lumen_core::radial::{CylinderGrid, RadialProfile, RadialSpec};
use lumen_core::tally::{GridSpec, PathHistogram, Tally, VisitGrid};
use lumen_core::{
    BoundaryMode, Detector, GateWindow, OpticalProperties, Precision, RouletteConfig,
    SimulationOptions, Source, Vec3,
};
use lumen_tissue::{Geometry, Layer, LayeredTissue, VoxelMaterial, VoxelTissue};

/// Magic bytes identifying a lumen wire message.
pub const MAGIC: [u8; 4] = *b"LMN1";
/// Wire format version. v6 added the engine `precision` tier byte to
/// encoded simulation options: the fast tier is not bit-compatible with
/// the exact tier, so the tier must travel with the scenario (and hence
/// reach the canonical scenario hash — a `Fast` result can never satisfy
/// an `Exact` query). v5 added the scenario `task_offset` field (RNG
/// stream continuation, the basis of the service cache's incremental
/// top-up) and the service query/reply frames spoken by `lumend`
/// (`lumen_service`). v4 added path archives: tallies may carry a
/// [`PathArchive`] section, scenarios carry the archive `RecordOptions`,
/// and standalone archive messages ([`encode_archive`]) feed the
/// `reweight` backend. v3 added the `HELLO`/`PING` handshake frames to
/// the networked protocol (`crate::net`) — a connection now opens with a
/// version exchange, so a peer speaking v2 or earlier is rejected with a
/// typed `VersionMismatch` instead of a confusing mid-run decode error.
/// v2 added the geometry-kind tag to scenario messages (layered |
/// voxel); v1 scenarios carried a bare layer stack.
pub const VERSION: u8 = 6;

/// Encoding buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder with the magic header.
    pub fn new() -> Self {
        let mut e = Self { buf: Vec::with_capacity(64) };
        e.buf.extend_from_slice(&MAGIC);
        e.buf.push(VERSION);
        e
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw pre-encoded bytes (no header).
    pub fn buf_extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Raw byte sequence: length prefix then the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// UTF-8 string: byte-length prefix then the bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Decoding cursor.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Wire decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// Ran out of bytes mid-message.
    Truncated,
    /// A length prefix that cannot possibly fit the remaining bytes.
    BadLength(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// Bytes decoded but described an impossible value (bad enum tag,
    /// non-UTF-8 string, geometry that fails validation).
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadHeader => write!(f, "bad magic or version header"),
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            WireError::Invalid(reason) => write!(f, "invalid payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl<'a> Decoder<'a> {
    /// Open a decoder, checking the header.
    pub fn new(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < 5 || buf[..4] != MAGIC || buf[4] != VERSION {
            return Err(WireError::BadHeader);
        }
        Ok(Self { buf, pos: 5 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn checked_len(&self, n: u64, elem_bytes: usize) -> Result<usize, WireError> {
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes as u64).map(|b| b > remaining).unwrap_or(true) {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Raw byte sequence (see [`Encoder::put_bytes`]).
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// UTF-8 string (see [`Encoder::put_str`]).
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let n = self.get_u64()?;
        let n = self.checked_len(n, 1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid("string is not UTF-8".into()))
    }

    /// Assert the message is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

/// Encode a task assignment.
pub fn encode_task(task: &SimTask) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(task.task_id);
    e.put_u64(task.photons);
    e.finish()
}

/// Decode a task assignment.
pub fn decode_task(bytes: &[u8]) -> Result<SimTask, WireError> {
    let mut d = Decoder::new(bytes)?;
    let task = SimTask { task_id: d.get_u64()?, photons: d.get_u64()? };
    d.finish()?;
    Ok(task)
}

/// Encode worker statistics.
pub fn encode_worker_stats(stats: &WorkerStats) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(stats.tasks_completed);
    e.put_u64(stats.photons);
    e.put_u64(stats.tasks_failed);
    e.finish()
}

/// Decode worker statistics.
pub fn decode_worker_stats(bytes: &[u8]) -> Result<WorkerStats, WireError> {
    let mut d = Decoder::new(bytes)?;
    let stats = WorkerStats {
        tasks_completed: d.get_u64()?,
        photons: d.get_u64()?,
        tasks_failed: d.get_u64()?,
    };
    d.finish()?;
    Ok(stats)
}

/// Encode the scalar portion of a tally (counts, weights, per-layer sums,
/// path/depth moments). Grids ride separately in a real deployment because
/// of their size; here the scalar message is what every task returns.
pub fn encode_tally_scalars(t: &Tally) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(t.launched);
    e.put_u64(t.detected);
    e.put_u64(t.reflected);
    e.put_u64(t.transmitted);
    e.put_u64(t.roulette_killed);
    e.put_u64(t.fully_absorbed);
    e.put_u64(t.expired);
    e.put_u64(t.gate_rejected);
    e.put_u64(t.na_rejected);
    e.put_f64(t.specular_weight);
    e.put_f64(t.detected_weight);
    e.put_f64(t.reflected_weight);
    e.put_f64(t.transmitted_weight);
    e.put_f64_slice(&t.absorbed_by_layer);
    e.put_f64(t.detected_path_sum);
    e.put_f64(t.detected_path_sq_sum);
    e.put_f64(t.detected_weight_path_sum);
    e.put_f64(t.detected_depth_sum);
    e.put_f64(t.detected_depth_max);
    e.put_u64_slice(&t.detected_reached_layer);
    e.put_f64_slice(&t.detected_partial_path);
    e.put_u64(t.detected_scatter_sum);
    e.finish()
}

/// Decode a scalar tally (grids absent).
pub fn decode_tally_scalars(bytes: &[u8]) -> Result<Tally, WireError> {
    let mut d = Decoder::new(bytes)?;
    let t = decode_tally_scalars_body(&mut d)?;
    d.finish()?;
    Ok(t)
}

fn decode_tally_scalars_body(d: &mut Decoder) -> Result<Tally, WireError> {
    let launched = d.get_u64()?;
    let detected = d.get_u64()?;
    let reflected = d.get_u64()?;
    let transmitted = d.get_u64()?;
    let roulette_killed = d.get_u64()?;
    let fully_absorbed = d.get_u64()?;
    let expired = d.get_u64()?;
    let gate_rejected = d.get_u64()?;
    let na_rejected = d.get_u64()?;
    let specular_weight = d.get_f64()?;
    let detected_weight = d.get_f64()?;
    let reflected_weight = d.get_f64()?;
    let transmitted_weight = d.get_f64()?;
    let absorbed_by_layer = d.get_f64_vec()?;
    let detected_path_sum = d.get_f64()?;
    let detected_path_sq_sum = d.get_f64()?;
    let detected_weight_path_sum = d.get_f64()?;
    let detected_depth_sum = d.get_f64()?;
    let detected_depth_max = d.get_f64()?;
    let detected_reached_layer = d.get_u64_vec()?;
    let detected_partial_path = d.get_f64_vec()?;
    let detected_scatter_sum = d.get_u64()?;

    let mut t = Tally::new(absorbed_by_layer.len(), None, None);
    t.launched = launched;
    t.detected = detected;
    t.reflected = reflected;
    t.transmitted = transmitted;
    t.roulette_killed = roulette_killed;
    t.fully_absorbed = fully_absorbed;
    t.expired = expired;
    t.gate_rejected = gate_rejected;
    t.na_rejected = na_rejected;
    t.specular_weight = specular_weight;
    t.detected_weight = detected_weight;
    t.reflected_weight = reflected_weight;
    t.transmitted_weight = transmitted_weight;
    t.absorbed_by_layer = absorbed_by_layer;
    t.detected_path_sum = detected_path_sum;
    t.detected_path_sq_sum = detected_path_sq_sum;
    t.detected_weight_path_sum = detected_weight_path_sum;
    t.detected_depth_sum = detected_depth_sum;
    t.detected_depth_max = detected_depth_max;
    t.detected_reached_layer = detected_reached_layer;
    t.detected_partial_path = detected_partial_path;
    t.detected_scatter_sum = detected_scatter_sum;
    Ok(t)
}

fn put_vec3(e: &mut Encoder, v: Vec3) {
    e.put_f64(v.x);
    e.put_f64(v.y);
    e.put_f64(v.z);
}

fn get_vec3(d: &mut Decoder) -> Result<Vec3, WireError> {
    Ok(Vec3::new(d.get_f64()?, d.get_f64()?, d.get_f64()?))
}

fn put_grid_spec(e: &mut Encoder, s: &GridSpec) {
    e.put_u64(s.nx as u64);
    e.put_u64(s.ny as u64);
    e.put_u64(s.nz as u64);
    put_vec3(e, s.min);
    put_vec3(e, s.max);
}

fn get_grid_spec(d: &mut Decoder) -> Result<GridSpec, WireError> {
    let nx = d.get_u64()? as usize;
    let ny = d.get_u64()? as usize;
    let nz = d.get_u64()? as usize;
    // Bound before the data vec is even read: a grid cannot have more
    // voxels than remaining bytes / 8.
    if nx.checked_mul(ny).and_then(|v| v.checked_mul(nz)).is_none() {
        return Err(WireError::BadLength(u64::MAX));
    }
    let min = get_vec3(d)?;
    let max = get_vec3(d)?;
    Ok(GridSpec { nx, ny, nz, min, max })
}

fn put_visit_grid(e: &mut Encoder, g: &VisitGrid) {
    put_grid_spec(e, &g.spec);
    e.put_f64_slice(g.data());
}

fn get_visit_grid(d: &mut Decoder) -> Result<VisitGrid, WireError> {
    let spec = get_grid_spec(d)?;
    let data = d.get_f64_vec()?;
    if data.len() != spec.len() {
        return Err(WireError::BadLength(data.len() as u64));
    }
    let mut g = VisitGrid::new(spec);
    for (i, v) in data.into_iter().enumerate() {
        // Rebuild by depositing at voxel centres: exact because centres
        // index back to their own voxel.
        if v != 0.0 {
            g.deposit(spec.centre_of(i), v);
        }
    }
    Ok(g)
}

fn put_radial_profile(e: &mut Encoder, p: &RadialProfile) {
    e.put_u64(p.spec.nr as u64);
    e.put_f64(p.spec.r_max);
    e.put_f64_slice(p.weights());
    e.put_f64(p.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
fn get_radial_profile(d: &mut Decoder) -> Result<RadialProfile, WireError> {
    let nr = d.get_u64()? as usize;
    let r_max = d.get_f64()?;
    let weights = d.get_f64_vec()?;
    if weights.len() != nr || !(r_max > 0.0) || nr == 0 {
        return Err(WireError::BadLength(weights.len() as u64));
    }
    let spec = RadialSpec { nr, r_max };
    let mut p = RadialProfile::new(spec);
    for (i, w) in weights.into_iter().enumerate() {
        if w != 0.0 {
            p.record(spec.r_of(i), w);
        }
    }
    p.overflow = d.get_f64()?;
    Ok(p)
}

fn put_path_histogram(e: &mut Encoder, h: &PathHistogram) {
    e.put_f64(h.max_mm);
    e.put_u64_slice(&h.counts);
    e.put_u64(h.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn get_path_histogram(d: &mut Decoder) -> Result<PathHistogram, WireError> {
    let max_mm = d.get_f64()?;
    let counts = d.get_u64_vec()?;
    if !(max_mm > 0.0) || counts.is_empty() {
        return Err(WireError::BadLength(counts.len() as u64));
    }
    let mut h = PathHistogram::new(max_mm, counts.len());
    h.counts = counts;
    h.overflow = d.get_u64()?;
    Ok(h)
}

fn put_cylinder(e: &mut Encoder, g: &CylinderGrid) {
    e.put_u64(g.radial.nr as u64);
    e.put_f64(g.radial.r_max);
    e.put_u64(g.nz as u64);
    e.put_f64(g.z_max);
    let mut flat = Vec::with_capacity(g.radial.nr * g.nz);
    for iz in 0..g.nz {
        for ir in 0..g.radial.nr {
            flat.push(g.at(ir, iz));
        }
    }
    e.put_f64_slice(&flat);
    e.put_f64(g.overflow);
}

#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn get_cylinder(d: &mut Decoder) -> Result<CylinderGrid, WireError> {
    let nr = d.get_u64()? as usize;
    let r_max = d.get_f64()?;
    let nz = d.get_u64()? as usize;
    let z_max = d.get_f64()?;
    let flat = d.get_f64_vec()?;
    if nr == 0 || nz == 0 || !(r_max > 0.0) || !(z_max > 0.0) || flat.len() != nr * nz {
        return Err(WireError::BadLength(flat.len() as u64));
    }
    let radial = RadialSpec { nr, r_max };
    let mut g = CylinderGrid::new(radial, nz, z_max);
    for iz in 0..nz {
        for ir in 0..nr {
            let v = flat[iz * nr + ir];
            if v != 0.0 {
                let r = radial.r_of(ir);
                let z = (iz as f64 + 0.5) * z_max / nz as f64;
                g.deposit(r, z, v);
            }
        }
    }
    g.overflow = d.get_f64()?;
    Ok(g)
}

fn put_option<T>(e: &mut Encoder, opt: Option<&T>, put: impl FnOnce(&mut Encoder, &T)) {
    match opt {
        Some(v) => {
            e.put_u8(1);
            put(e, v);
        }
        None => e.put_u8(0),
    }
}

fn get_option<T>(
    d: &mut Decoder,
    get: impl FnOnce(&mut Decoder) -> Result<T, WireError>,
) -> Result<Option<T>, WireError> {
    match d.get_u8()? {
        0 => Ok(None),
        _ => Ok(Some(get(d)?)),
    }
}

/// Encode a complete tally, grids and all — what a worker returns over
/// the network.
pub fn encode_tally(t: &Tally) -> Vec<u8> {
    // Scalars first (re-using the scalar layout, minus header duplication).
    let scalars = encode_tally_scalars(t);
    let mut e = Encoder::new();
    // Embed the scalar body (skip its header).
    e.buf_extend(&scalars[5..]);
    put_option(&mut e, t.path_grid.as_ref(), put_visit_grid);
    put_option(&mut e, t.absorption_grid.as_ref(), put_visit_grid);
    put_option(&mut e, t.path_histogram.as_ref(), put_path_histogram);
    put_option(&mut e, t.reflectance_r.as_ref(), put_radial_profile);
    put_option(&mut e, t.absorption_rz.as_ref(), put_cylinder);
    put_option(&mut e, t.archive.as_ref(), put_archive);
    e.finish()
}

/// Decode a complete tally.
pub fn decode_tally(bytes: &[u8]) -> Result<Tally, WireError> {
    let mut d = Decoder::new(bytes)?;
    let mut t = decode_tally_scalars_body(&mut d)?;
    t.path_grid = get_option(&mut d, get_visit_grid)?;
    t.absorption_grid = get_option(&mut d, get_visit_grid)?;
    t.path_histogram = get_option(&mut d, get_path_histogram)?;
    t.reflectance_r = get_option(&mut d, get_radial_profile)?;
    t.absorption_rz = get_option(&mut d, get_cylinder)?;
    t.archive = get_option(&mut d, get_archive)?;
    d.finish()?;
    Ok(t)
}

// --- Path archive encoding -----------------------------------------------
//
// A recorded ensemble of escape events (`lumen_core::archive`) for the
// `reweight` backend. The SoA columns go on the wire as length-prefixed
// sequences; on decode every column length is cross-checked against the
// entry count so a hostile peer cannot desynchronise the columns, and the
// physical fields are validated (classes in range, weights and pathlengths
// finite and non-negative) before a `PathArchive` is built.

/// Region cap for archives arriving over the wire. Generous — the paper's
/// head models have ≤ 6 regions and a 50³ voxel model a few thousand —
/// but it bounds the `regions × entries` matrix allocations against a
/// hostile header the same way [`MAX_SPEC_CELLS`] bounds grid specs.
pub const MAX_ARCHIVE_REGIONS: u64 = 1 << 12;

fn put_archive(e: &mut Encoder, a: &PathArchive) {
    e.put_u64(a.regions as u64);
    e.put_u8(u8::from(a.detected_only));
    for o in &a.base {
        put_optics(e, o);
    }
    e.put_u64(a.launched);
    e.put_f64(a.specular_weight);
    e.put_bytes(&a.class);
    e.put_u64_slice(&a.task);
    e.put_f64_slice(&a.exit_weight);
    e.put_f64_slice(&a.exit_radius);
    e.put_f64_slice(&a.pathlength);
    e.put_f64_slice(&a.max_depth);
    e.put_u32_slice(&a.scatters);
    e.put_f64_slice(&a.partial_path);
    e.put_u32_slice(&a.collisions);
    e.put_bytes(&a.reached);
}

fn finite_nonneg(vs: &[f64], what: &str) -> Result<(), WireError> {
    if vs.iter().any(|v| !v.is_finite() || *v < 0.0) {
        return Err(WireError::Invalid(format!("archive {what} must be finite and non-negative")));
    }
    Ok(())
}

fn expect_len(got: usize, want: usize, what: &str) -> Result<(), WireError> {
    if got != want {
        return Err(WireError::Invalid(format!(
            "archive {what} column has {got} values, expected {want}"
        )));
    }
    Ok(())
}

fn get_archive(d: &mut Decoder) -> Result<PathArchive, WireError> {
    let regions = d.get_u64()?;
    if regions == 0 || regions > MAX_ARCHIVE_REGIONS {
        return Err(WireError::BadLength(regions));
    }
    let regions = regions as usize;
    let detected_only = d.get_u8()? != 0;
    let base: Vec<OpticalProperties> =
        (0..regions).map(|_| get_optics(d)).collect::<Result<_, _>>()?;
    let launched = d.get_u64()?;
    let specular_weight = d.get_f64()?;
    finite_nonneg(&[specular_weight], "specular weight")?;

    let class = d.get_bytes()?;
    let n = class.len();
    if let Some(bad) = class.iter().find(|&&c| c > CLASS_TRANSMITTED) {
        return Err(WireError::Invalid(format!("archive entry class {bad} out of range")));
    }
    let per_region = n.checked_mul(regions).ok_or(WireError::BadLength(n as u64))?;

    let task = d.get_u64_vec()?;
    expect_len(task.len(), n, "task")?;
    let exit_weight = d.get_f64_vec()?;
    expect_len(exit_weight.len(), n, "exit weight")?;
    finite_nonneg(&exit_weight, "exit weight")?;
    let exit_radius = d.get_f64_vec()?;
    expect_len(exit_radius.len(), n, "exit radius")?;
    finite_nonneg(&exit_radius, "exit radius")?;
    let pathlength = d.get_f64_vec()?;
    expect_len(pathlength.len(), n, "pathlength")?;
    finite_nonneg(&pathlength, "pathlength")?;
    let max_depth = d.get_f64_vec()?;
    expect_len(max_depth.len(), n, "max depth")?;
    finite_nonneg(&max_depth, "max depth")?;
    let scatters = d.get_u32_vec()?;
    expect_len(scatters.len(), n, "scatters")?;
    let partial_path = d.get_f64_vec()?;
    expect_len(partial_path.len(), per_region, "partial path")?;
    finite_nonneg(&partial_path, "partial path")?;
    let collisions = d.get_u32_vec()?;
    expect_len(collisions.len(), per_region, "collisions")?;
    let reached = d.get_bytes()?;
    expect_len(reached.len(), per_region, "reached")?;

    Ok(PathArchive {
        regions,
        detected_only,
        base,
        launched,
        specular_weight,
        class,
        task,
        exit_weight,
        exit_radius,
        pathlength,
        max_depth,
        scatters,
        partial_path,
        collisions,
        reached,
    })
}

/// Encode a standalone path archive — the on-disk format behind the
/// `reweight <archive-file>` backend spec and the CLI's `archive` key.
pub fn encode_archive(a: &PathArchive) -> Vec<u8> {
    let mut e = Encoder::new();
    put_archive(&mut e, a);
    e.finish()
}

/// Decode a standalone path archive, rejecting truncated, desynchronised,
/// out-of-range, or non-finite payloads with typed errors and without
/// unbounded allocation.
pub fn decode_archive(bytes: &[u8]) -> Result<PathArchive, WireError> {
    let mut d = Decoder::new(bytes)?;
    let a = get_archive(&mut d)?;
    d.finish()?;
    Ok(a)
}

// --- Scenario encoding ---------------------------------------------------
//
// The experiment definition itself. The original platform shipped Java
// bytecode to the clients; encoding the full `Scenario` is our equivalent:
// a server can hand a connecting client everything it needs instead of
// relying on the out-of-band "same scenario, same seed" contract.

fn put_optics(e: &mut Encoder, o: &OpticalProperties) {
    e.put_f64(o.mu_a);
    e.put_f64(o.mu_s);
    e.put_f64(o.g);
    e.put_f64(o.n);
}

fn get_optics(d: &mut Decoder) -> Result<OpticalProperties, WireError> {
    Ok(OpticalProperties {
        mu_a: d.get_f64()?,
        mu_s: d.get_f64()?,
        g: d.get_f64()?,
        n: d.get_f64()?,
    })
}

fn put_tissue(e: &mut Encoder, t: &LayeredTissue) {
    e.put_f64(t.ambient_n);
    e.put_u64(t.layers().len() as u64);
    for layer in t.layers() {
        e.put_str(&layer.name);
        e.put_f64(layer.z_top);
        e.put_f64(layer.z_bottom);
        put_optics(e, &layer.optics);
    }
}

fn get_tissue(d: &mut Decoder) -> Result<LayeredTissue, WireError> {
    let ambient_n = d.get_f64()?;
    let n_layers = d.get_u64()?;
    // A layer costs at least its fixed-size fields on the wire.
    let n_layers = d.checked_len(n_layers, 8 * 6)?;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let name = d.get_str()?;
        let z_top = d.get_f64()?;
        let z_bottom = d.get_f64()?;
        let optics = get_optics(d)?;
        layers.push(Layer { name, z_top, z_bottom, optics });
    }
    LayeredTissue::new(layers, ambient_n).map_err(|e| WireError::Invalid(e.to_string()))
}

fn put_voxel_tissue(e: &mut Encoder, t: &VoxelTissue) {
    e.put_f64(t.ambient_n);
    let (nx, ny, nz) = t.dims();
    e.put_u64(nx as u64);
    e.put_u64(ny as u64);
    e.put_u64(nz as u64);
    let (x0, y0) = t.origin();
    e.put_f64(x0);
    e.put_f64(y0);
    let (dx, dy, dz) = t.voxel_mm();
    e.put_f64(dx);
    e.put_f64(dy);
    e.put_f64(dz);
    e.put_u64(t.materials().len() as u64);
    for m in t.materials() {
        e.put_str(&m.name);
        put_optics(e, &m.optics);
    }
    // Cells in bulk, straight into the encoder buffer: one reserve, no
    // intermediate copy, no 2^26 bounds-checked calls.
    e.buf.reserve(t.cells().len() * 2);
    for &c in t.cells() {
        e.buf.extend_from_slice(&c.to_le_bytes());
    }
}

fn get_voxel_tissue(d: &mut Decoder) -> Result<VoxelTissue, WireError> {
    let ambient_n = d.get_f64()?;
    let nx = d.get_u64()?;
    let ny = d.get_u64()?;
    let nz = d.get_u64()?;
    // Cells are 2 bytes each on the wire: a hostile dimension triple that
    // cannot fit the remaining bytes (or the VoxelTissue cell cap) dies
    // here, before any allocation. Dimensions past u32 cannot pass the
    // cell cap, so the u64 → usize narrowing below is lossless.
    if nx > u32::MAX as u64 || ny > u32::MAX as u64 || nz > u32::MAX as u64 {
        return Err(WireError::BadLength(u64::MAX));
    }
    let n_cells = lumen_tissue::voxel::checked_cell_count(nx as usize, ny as usize, nz as usize)
        .ok_or(WireError::BadLength(u64::MAX))?;
    let n_cells = d.checked_len(n_cells as u64, 2)?;
    let x0 = d.get_f64()?;
    let y0 = d.get_f64()?;
    let dx = d.get_f64()?;
    let dy = d.get_f64()?;
    let dz = d.get_f64()?;
    let n_materials = d.get_u64()?;
    // A material costs at least its name-length prefix plus four floats.
    let n_materials = d.checked_len(n_materials, 8 * 5)?;
    let mut materials = Vec::with_capacity(n_materials);
    for _ in 0..n_materials {
        let name = d.get_str()?;
        materials.push(VoxelMaterial { name, optics: get_optics(d)? });
    }
    // Bulk-decode the cell block: `checked_len` already proved the bytes
    // are present, so one take + chunked conversion replaces 2^26
    // per-element bounds checks on large grids.
    let raw = d.take(n_cells * 2)?;
    let cells: Vec<u16> = raw.chunks_exact(2).map(|b| u16::from_le_bytes([b[0], b[1]])).collect();
    VoxelTissue::new(
        (nx as usize, ny as usize, nz as usize),
        (x0, y0),
        (dx, dy, dz),
        materials,
        cells,
        ambient_n,
    )
    .map_err(|e| WireError::Invalid(e.to_string()))
}

/// Encode a geometry value: a kind tag, then the kind-specific body.
pub fn put_geometry(e: &mut Encoder, g: &Geometry) {
    match g {
        Geometry::Layered(t) => {
            e.put_u8(0);
            put_tissue(e, t);
        }
        Geometry::Voxel(t) => {
            e.put_u8(1);
            put_voxel_tissue(e, t);
        }
    }
}

/// Decode a geometry value; construction re-validates, so a hostile peer
/// cannot smuggle an inconsistent stack or grid past the type system.
pub fn get_geometry(d: &mut Decoder) -> Result<Geometry, WireError> {
    match d.get_u8()? {
        0 => Ok(Geometry::Layered(get_tissue(d)?)),
        1 => Ok(Geometry::Voxel(get_voxel_tissue(d)?)),
        tag => Err(WireError::Invalid(format!("unknown geometry tag {tag}"))),
    }
}

fn put_source(e: &mut Encoder, s: &Source) {
    match *s {
        Source::Delta => e.put_u8(0),
        Source::Gaussian { radius } => {
            e.put_u8(1);
            e.put_f64(radius);
        }
        Source::Uniform { radius } => {
            e.put_u8(2);
            e.put_f64(radius);
        }
    }
}

fn get_source(d: &mut Decoder) -> Result<Source, WireError> {
    match d.get_u8()? {
        0 => Ok(Source::Delta),
        1 => Ok(Source::Gaussian { radius: d.get_f64()? }),
        2 => Ok(Source::Uniform { radius: d.get_f64()? }),
        tag => Err(WireError::Invalid(format!("unknown source tag {tag}"))),
    }
}

fn put_detector(e: &mut Encoder, det: &Detector) {
    e.put_f64(det.separation);
    e.put_f64(det.radius);
    e.put_u8(det.ring as u8);
    put_option(e, det.min_exit_cos.as_ref(), |e, &c| e.put_f64(c));
    e.put_f64(det.gate.min_mm);
    e.put_f64(det.gate.max_mm);
}

fn get_detector(d: &mut Decoder) -> Result<Detector, WireError> {
    Ok(Detector {
        separation: d.get_f64()?,
        radius: d.get_f64()?,
        ring: d.get_u8()? != 0,
        min_exit_cos: get_option(d, |d| d.get_f64())?,
        gate: GateWindow { min_mm: d.get_f64()?, max_mm: d.get_f64()? },
    })
}

/// Upper bound on cells in any decoded *scenario* tally spec (grid voxels,
/// histogram bins, radial bins). Tally payloads are implicitly bounded by
/// their data arrays (`checked_len` against the remaining bytes), but a
/// scenario carries bare specs with no data behind them — without a cap, a
/// ~300-byte hostile message could request a 2M³-voxel grid and abort the
/// process on allocation when the scenario is run. 2²⁴ cells (128 MiB of
/// f64) is ~134× the paper's 50³ granularity.
pub const MAX_SPEC_CELLS: u64 = 1 << 24;

fn checked_cells(cells: Option<usize>) -> Result<usize, WireError> {
    match cells {
        Some(n) if (n as u64) <= MAX_SPEC_CELLS => Ok(n),
        Some(n) => Err(WireError::BadLength(n as u64)),
        None => Err(WireError::BadLength(u64::MAX)),
    }
}

fn get_bounded_grid_spec(d: &mut Decoder) -> Result<GridSpec, WireError> {
    let spec = get_grid_spec(d)?;
    checked_cells(spec.nx.checked_mul(spec.ny).and_then(|v| v.checked_mul(spec.nz)))?;
    Ok(spec)
}

fn put_options(e: &mut Encoder, o: &SimulationOptions) {
    e.put_u8(match o.boundary_mode {
        BoundaryMode::Probabilistic => 0,
        BoundaryMode::Classical => 1,
    });
    e.put_f64(o.roulette.threshold);
    e.put_f64(o.roulette.survival);
    e.put_u64(o.max_interactions as u64);
    put_option(e, o.path_grid.as_ref(), put_grid_spec);
    put_option(e, o.absorption_grid.as_ref(), put_grid_spec);
    put_option(e, o.path_histogram.as_ref(), |e, &(max_mm, bins)| {
        e.put_f64(max_mm);
        e.put_u64(bins as u64);
    });
    put_option(e, o.reflectance_profile.as_ref(), |e, spec| {
        e.put_u64(spec.nr as u64);
        e.put_f64(spec.r_max);
    });
    put_option(e, o.absorption_rz.as_ref(), |e, &(radial, nz, z_max)| {
        e.put_u64(radial.nr as u64);
        e.put_f64(radial.r_max);
        e.put_u64(nz as u64);
        e.put_f64(z_max);
    });
    e.put_u64(o.record_paths as u64);
    put_option(e, o.archive.as_ref(), |e, rec| e.put_u8(u8::from(rec.detected_only)));
    // v6: precision tier. Appended last so the options layout stays a
    // strict prefix of every earlier version's.
    e.put_u8(match o.precision {
        Precision::Exact => 0,
        Precision::Fast => 1,
    });
}

fn get_options(d: &mut Decoder) -> Result<SimulationOptions, WireError> {
    let boundary_mode = match d.get_u8()? {
        0 => BoundaryMode::Probabilistic,
        1 => BoundaryMode::Classical,
        tag => return Err(WireError::Invalid(format!("unknown boundary mode tag {tag}"))),
    };
    let roulette = RouletteConfig { threshold: d.get_f64()?, survival: d.get_f64()? };
    let max_interactions = u32::try_from(d.get_u64()?)
        .map_err(|_| WireError::Invalid("max_interactions exceeds u32".into()))?;
    let path_grid = get_option(d, get_bounded_grid_spec)?;
    let absorption_grid = get_option(d, get_bounded_grid_spec)?;
    let path_histogram =
        get_option(d, |d| Ok((d.get_f64()?, checked_cells(Some(d.get_u64()? as usize))?)))?;
    let reflectance_profile = get_option(d, |d| {
        Ok(RadialSpec { nr: checked_cells(Some(d.get_u64()? as usize))?, r_max: d.get_f64()? })
    })?;
    let absorption_rz = get_option(d, |d| {
        let radial = RadialSpec { nr: d.get_u64()? as usize, r_max: d.get_f64()? };
        let nz = d.get_u64()? as usize;
        checked_cells(radial.nr.checked_mul(nz))?;
        Ok((radial, nz, d.get_f64()?))
    })?;
    let record_paths = d.get_u64()? as usize;
    let archive = get_option(d, |d| Ok(RecordOptions { detected_only: d.get_u8()? != 0 }))?;
    let precision = match d.get_u8()? {
        0 => Precision::Exact,
        1 => Precision::Fast,
        tag => return Err(WireError::Invalid(format!("unknown precision tier tag {tag}"))),
    };
    Ok(SimulationOptions {
        boundary_mode,
        roulette,
        max_interactions,
        path_grid,
        absorption_grid,
        path_histogram,
        reflectance_profile,
        absorption_rz,
        record_paths,
        archive,
        precision,
    })
}

/// Encode a full experiment definition — geometry, source, detector,
/// options, photon budget, task split, and seed.
pub fn encode_scenario(s: &Scenario) -> Vec<u8> {
    let mut e = Encoder::new();
    put_geometry(&mut e, &s.tissue);
    put_source(&mut e, &s.source);
    put_detector(&mut e, &s.detector);
    put_options(&mut e, &s.options);
    e.put_u64(s.photons);
    e.put_u64(s.tasks);
    e.put_u64(s.seed);
    e.put_u64(s.task_offset);
    e.finish()
}

/// Decode a [`Scenario`]. Geometry is re-validated on decode, so a hostile
/// peer cannot smuggle an inconsistent layer stack past the type system.
pub fn decode_scenario(bytes: &[u8]) -> Result<Scenario, WireError> {
    let mut d = Decoder::new(bytes)?;
    let tissue = get_geometry(&mut d)?;
    let source = get_source(&mut d)?;
    let detector = get_detector(&mut d)?;
    let options = get_options(&mut d)?;
    let photons = d.get_u64()?;
    let tasks = d.get_u64()?;
    let seed = d.get_u64()?;
    let task_offset = d.get_u64()?;
    d.finish()?;
    let scenario =
        Scenario { tissue, source, detector, options, photons, tasks, seed, task_offset };
    scenario.validate().map_err(|e| WireError::Invalid(e.to_string()))?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn task_round_trip() {
        let t = SimTask { task_id: 42, photons: 1_000_000 };
        assert_eq!(decode_task(&encode_task(&t)).unwrap(), t);
    }

    #[test]
    fn stats_round_trip() {
        let s = WorkerStats { tasks_completed: 7, photons: 175_000, tasks_failed: 2 };
        assert_eq!(decode_worker_stats(&encode_worker_stats(&s)).unwrap(), s);
    }

    #[test]
    fn tally_round_trip_preserves_everything() {
        let mut t = Tally::new(3, None, None);
        t.launched = 1000;
        t.detected = 10;
        t.reflected = 800;
        t.roulette_killed = 190;
        t.specular_weight = 27.5;
        t.detected_weight = 3.25;
        t.absorbed_by_layer = vec![1.5, 0.25, 0.0625];
        t.detected_path_sum = 512.0;
        t.detected_reached_layer = vec![10, 4, 1];
        t.detected_scatter_sum = 12345;
        let decoded = decode_tally_scalars(&encode_tally_scalars(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(decode_task(b"XXXX\x01rest"), Err(WireError::BadHeader));
        assert_eq!(decode_task(b""), Err(WireError::BadHeader));
        // Wrong version byte.
        let mut good = encode_task(&SimTask { task_id: 1, photons: 2 });
        good[4] = 99;
        assert_eq!(decode_task(&good), Err(WireError::BadHeader));
    }

    #[test]
    fn truncated_message_is_rejected() {
        let bytes = encode_task(&SimTask { task_id: 1, photons: 2 });
        for cut in 5..bytes.len() {
            assert!(decode_task(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_task(&SimTask { task_id: 1, photons: 2 });
        bytes.push(0);
        assert_eq!(decode_task(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        // A tally message claiming 2^60 layers must fail fast.
        let mut e = Encoder::new();
        for _ in 0..9 {
            e.put_u64(1);
        }
        for _ in 0..4 {
            e.put_f64(0.0);
        }
        e.put_u64(1 << 60); // absurd layer count
        let bytes = e.finish();
        match decode_tally_scalars(&bytes) {
            Err(WireError::BadLength(n)) => assert_eq!(n, 1 << 60),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    /// Small hand-built two-region archive exercising every column.
    fn sample_archive() -> PathArchive {
        let base = vec![
            OpticalProperties::new(0.05, 10.0, 0.9, 1.4),
            OpticalProperties::new(0.02, 15.0, 0.9, 1.4),
        ];
        let mut a = PathArchive::new(2, base, RecordOptions::default());
        a.on_launch(0.027);
        a.push(3, 0.75, 1.5, 42.0, 6.0, 17, &[30.0, 12.0], &[11, 6], &[true, true]);
        a.on_launch(0.027);
        a.push(0, 0.5, 9.0, 10.0, 2.0, 3, &[10.0, 0.0], &[3, 0], &[true, false]);
        a.on_launch(0.027);
        a.push_launch_miss(1.0, 25.0);
        a.stamp_task(4);
        a
    }

    #[test]
    fn archive_round_trip_preserves_everything() {
        let a = sample_archive();
        assert_eq!(decode_archive(&encode_archive(&a)).unwrap(), a);
        // And embedded in a tally.
        let mut t = Tally::new(2, None, None).with_archive(sample_archive());
        t.launched = 3;
        assert_eq!(decode_tally(&encode_tally(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_archive_is_rejected_at_every_cut() {
        let bytes = encode_archive(&sample_archive());
        for cut in 5..bytes.len() {
            assert!(decode_archive(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_archive(&long), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_archive_counts_are_rejected_without_allocation() {
        // Region count beyond the cap.
        let mut e = Encoder::new();
        e.put_u64(MAX_ARCHIVE_REGIONS + 1);
        match decode_archive(&e.finish()) {
            Err(WireError::BadLength(n)) => assert_eq!(n, MAX_ARCHIVE_REGIONS + 1),
            other => panic!("expected BadLength, got {other:?}"),
        }
        // Zero regions are meaningless.
        let mut e = Encoder::new();
        e.put_u64(0);
        assert_eq!(decode_archive(&e.finish()), Err(WireError::BadLength(0)));
        // A claimed 2^60-entry class column must fail before allocating.
        let a = sample_archive();
        let mut e = Encoder::new();
        e.put_u64(a.regions as u64);
        e.put_u8(0);
        for o in &a.base {
            put_optics(&mut e, o);
        }
        e.put_u64(a.launched);
        e.put_f64(a.specular_weight);
        e.put_u64(1 << 60); // hostile class-column length prefix
        match decode_archive(&e.finish()) {
            Err(WireError::BadLength(n)) => assert_eq!(n, 1 << 60),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn desynchronised_archive_columns_are_rejected() {
        // Re-encode with a task column one entry short: the cross-check
        // must fail even though every column is self-consistent.
        let mut a = sample_archive();
        a.task.pop();
        let bytes = encode_archive(&a);
        assert!(matches!(decode_archive(&bytes), Err(WireError::Invalid(_))));
    }

    #[test]
    fn non_finite_and_negative_archive_physics_are_rejected() {
        for corrupt in [f64::NAN, f64::INFINITY, -1.0] {
            let mut a = sample_archive();
            a.pathlength[0] = corrupt;
            assert!(
                matches!(decode_archive(&encode_archive(&a)), Err(WireError::Invalid(_))),
                "pathlength {corrupt} must be rejected"
            );
            let mut a = sample_archive();
            a.partial_path[1] = corrupt;
            assert!(
                matches!(decode_archive(&encode_archive(&a)), Err(WireError::Invalid(_))),
                "partial path {corrupt} must be rejected"
            );
            let mut a = sample_archive();
            a.exit_weight[0] = corrupt;
            assert!(
                matches!(decode_archive(&encode_archive(&a)), Err(WireError::Invalid(_))),
                "exit weight {corrupt} must be rejected"
            );
        }
        let mut a = sample_archive();
        a.class[0] = CLASS_TRANSMITTED + 1;
        assert!(matches!(decode_archive(&encode_archive(&a)), Err(WireError::Invalid(_))));
    }

    #[test]
    fn archive_version_mismatch_is_rejected() {
        let mut bytes = encode_archive(&sample_archive());
        bytes[4] = VERSION - 1;
        assert_eq!(decode_archive(&bytes), Err(WireError::BadHeader));
    }

    #[test]
    fn options_archive_flag_survives_scenario_round_trip() {
        use lumen_core::engine::Scenario;
        use lumen_core::{Detector, Source};
        use lumen_tissue::presets::semi_infinite_phantom;
        let mut s = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        );
        s.options.archive = Some(RecordOptions { detected_only: true });
        let decoded = decode_scenario(&encode_scenario(&s)).unwrap();
        assert_eq!(decoded.options.archive, Some(RecordOptions { detected_only: true }));
        s.options.archive = None;
        let decoded = decode_scenario(&encode_scenario(&s)).unwrap();
        assert_eq!(decoded.options.archive, None);
    }

    #[test]
    fn full_tally_round_trip_with_all_grids() {
        use lumen_core::radial::RadialSpec;
        use lumen_core::tally::GridSpec;
        use lumen_core::Vec3;
        let spec = GridSpec::cubic(5, Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 2.0));
        let mut t = Tally::new(2, Some(spec), Some(spec))
            .with_path_histogram(100.0, 8)
            .with_reflectance_profile(RadialSpec { nr: 6, r_max: 3.0 })
            .with_absorption_rz(RadialSpec { nr: 4, r_max: 2.0 }, 3, 6.0);
        t.launched = 500;
        t.detected = 7;
        t.absorbed_by_layer = vec![1.25, 0.5];
        t.detected_reached_layer = vec![7, 3];
        t.path_grid.as_mut().unwrap().deposit(Vec3::new(0.1, 0.2, 0.3), 2.5);
        t.absorption_grid.as_mut().unwrap().deposit(Vec3::new(-0.5, 0.0, 1.5), 0.75);
        t.path_histogram.as_mut().unwrap().record(42.0);
        t.path_histogram.as_mut().unwrap().record(250.0); // overflow
        t.reflectance_r.as_mut().unwrap().record(1.1, 0.25);
        t.reflectance_r.as_mut().unwrap().record(9.0, 0.5); // overflow
        t.absorption_rz.as_mut().unwrap().deposit(0.6, 2.2, 0.125);

        let bytes = encode_tally(&t);
        let decoded = decode_tally(&bytes).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn full_tally_round_trip_without_grids() {
        let mut t = Tally::new(1, None, None);
        t.launched = 10;
        let decoded = decode_tally(&encode_tally(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn full_tally_rejects_truncation() {
        let mut t = Tally::new(1, None, None);
        t.launched = 10;
        let bytes = encode_tally(&t);
        assert!(decode_tally(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn scenario_round_trip_minimal() {
        use lumen_tissue::presets::semi_infinite_phantom;
        let s = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.5, 1.4),
            Source::Delta,
            Detector::new(3.0, 1.0),
        )
        .with_photons(123_456)
        .with_tasks(17)
        .with_seed(99);
        let decoded = decode_scenario(&encode_scenario(&s)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn scenario_round_trip_with_every_option() {
        use lumen_core::radial::RadialSpec;
        use lumen_tissue::presets::{adult_head, AdultHeadConfig};
        let mut options = SimulationOptions {
            boundary_mode: BoundaryMode::Classical,
            roulette: RouletteConfig { threshold: 0.005, survival: 0.2 },
            max_interactions: 500_000,
            ..Default::default()
        };
        options.path_grid =
            Some(GridSpec::cubic(20, Vec3::new(-3.0, -3.0, 0.0), Vec3::new(9.0, 3.0, 9.0)));
        options.absorption_grid =
            Some(GridSpec::cubic(10, Vec3::new(-5.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 10.0)));
        options.path_histogram = Some((600.0, 30));
        options.reflectance_profile = Some(RadialSpec { nr: 25, r_max: 12.5 });
        options.absorption_rz = Some((RadialSpec { nr: 8, r_max: 4.0 }, 16, 32.0));
        options.record_paths = 7;
        let s = Scenario::new(
            adult_head(AdultHeadConfig::default()),
            Source::Gaussian { radius: 1.5 },
            Detector::ring(30.0, 2.0)
                .with_gate(GateWindow::new(10.0, 900.0).unwrap())
                .with_numerical_aperture(0.5, 1.0),
        )
        .with_options(options)
        .with_photons(1_000_000)
        .with_tasks(64)
        .with_seed(2006);
        let bytes = encode_scenario(&s);
        let decoded = decode_scenario(&bytes).unwrap();
        assert_eq!(decoded, s);
        // The round-tripped scenario is immediately runnable.
        assert!(decoded.validate().is_ok());
    }

    fn plain_scenario() -> Scenario {
        use lumen_tissue::presets::semi_infinite_phantom;
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(2.0, 0.5),
        )
    }

    #[test]
    fn precision_tier_survives_scenario_round_trip() {
        for precision in [Precision::Exact, Precision::Fast] {
            let mut s = plain_scenario();
            s.options.precision = precision;
            let decoded = decode_scenario(&encode_scenario(&s)).unwrap();
            assert_eq!(decoded.options.precision, precision);
            assert_eq!(decoded, s);
            assert!(decoded.validate().is_ok());
        }
    }

    #[test]
    fn hostile_precision_tag_is_rejected() {
        let mut bytes = encode_scenario(&plain_scenario());
        // The precision byte is the last options byte, just before the
        // four u64 budget fields (photons, tasks, seed, task_offset).
        let idx = bytes.len() - 4 * 8 - 1;
        assert_eq!(bytes[idx], 0, "expected the Exact tier tag at the precision offset");
        bytes[idx] = 7;
        match decode_scenario(&bytes) {
            Err(WireError::Invalid(reason)) => {
                assert!(reason.contains("precision"), "{reason}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn scenario_from_older_or_newer_version_is_rejected() {
        // A v5 peer's scenario lacks the precision byte; parsing it as v6
        // would shift the budget fields by one byte. Both directions must
        // die at the header check, not mid-decode.
        for wrong in [VERSION - 1, VERSION + 1] {
            let mut bytes = encode_scenario(&plain_scenario());
            bytes[4] = wrong;
            assert_eq!(decode_scenario(&bytes), Err(WireError::BadHeader));
        }
    }

    #[test]
    fn scenario_rejects_truncation_and_trailing_bytes() {
        use lumen_tissue::presets::semi_infinite_phantom;
        let s = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(2.0, 0.5),
        );
        let mut bytes = encode_scenario(&s);
        assert!(decode_scenario(&bytes[..bytes.len() - 1]).is_err());
        bytes.push(0);
        assert_eq!(decode_scenario(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn scenario_decode_revalidates_geometry() {
        use lumen_tissue::presets::semi_infinite_phantom;
        let mut s = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(2.0, 0.5),
        );
        s.detector.radius = -1.0; // encodes fine, must not decode
        match decode_scenario(&encode_scenario(&s)) {
            Err(WireError::Invalid(reason)) => assert!(reason.contains("radius"), "{reason}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn scenario_rejects_oversized_tally_specs() {
        use lumen_core::radial::RadialSpec;
        use lumen_tissue::presets::semi_infinite_phantom;
        // A tiny message must not be able to request a gigantic tally: a
        // 2_000_000^3-voxel grid or a u64::MAX-bin histogram would abort
        // the process on allocation when the scenario is run.
        let base = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(2.0, 0.5),
        );
        let mut huge_grid = base.clone();
        huge_grid.options.path_grid = Some(GridSpec {
            nx: 2_000_000,
            ny: 2_000_000,
            nz: 2_000_000,
            min: Vec3::new(-1.0, -1.0, 0.0),
            max: Vec3::new(1.0, 1.0, 2.0),
        });
        assert!(matches!(
            decode_scenario(&encode_scenario(&huge_grid)),
            Err(WireError::BadLength(_))
        ));
        let mut huge_hist = base.clone();
        huge_hist.options.path_histogram = Some((100.0, u32::MAX as usize));
        assert!(matches!(
            decode_scenario(&encode_scenario(&huge_hist)),
            Err(WireError::BadLength(_))
        ));
        let mut huge_rz = base;
        huge_rz.options.absorption_rz =
            Some((RadialSpec { nr: 1 << 20, r_max: 4.0 }, 1 << 20, 32.0));
        assert!(matches!(
            decode_scenario(&encode_scenario(&huge_rz)),
            Err(WireError::BadLength(_))
        ));
    }

    fn voxel_scenario() -> Scenario {
        use lumen_tissue::presets::{head_with_inclusion, AdultHeadConfig};
        Scenario::new(
            head_with_inclusion(
                AdultHeadConfig::default(),
                2.0,
                6.0,
                24.0,
                Vec3::new(3.0, 0.0, 16.0),
                4.0,
            )
            .expect("inclusion phantom builds"),
            Source::Delta,
            Detector::new(10.0, 2.0),
        )
        .with_photons(10_000)
        .with_tasks(16)
        .with_seed(2006)
    }

    #[test]
    fn voxel_scenario_round_trip() {
        let s = voxel_scenario();
        let decoded = decode_scenario(&encode_scenario(&s)).unwrap();
        assert_eq!(decoded, s);
        assert!(decoded.validate().is_ok());
        // The voxel payload really is in there: grid + palette survive.
        let grid = decoded.tissue.as_voxel().expect("voxel geometry");
        assert_eq!(grid.materials().len(), 6);
        assert_eq!(grid.dims(), (6, 6, 12));
    }

    #[test]
    fn voxel_scenario_rejects_truncation_and_trailing_bytes() {
        let bytes = encode_scenario(&voxel_scenario());
        // Cut in the header, the palette, the cells, and the tail.
        for cut in [3, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_scenario(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_scenario(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_voxel_dimensions_fail_before_allocation() {
        // A ~100-byte message claiming a 2^20³-cell grid must die on the
        // length check, not in the allocator.
        let mut e = Encoder::new();
        e.put_u8(1); // geometry tag: voxel
        e.put_f64(1.0); // ambient
        e.put_u64(1 << 20);
        e.put_u64(1 << 20);
        e.put_u64(1 << 20);
        let bytes = e.finish();
        match decode_scenario(&bytes) {
            Err(WireError::BadLength(_)) | Err(WireError::Truncated) => {}
            other => panic!("expected BadLength/Truncated, got {other:?}"),
        }
        // Overflowing u64 entirely is also caught.
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_f64(1.0);
        e.put_u64(u64::MAX);
        e.put_u64(u64::MAX);
        e.put_u64(2);
        let bytes = e.finish();
        assert!(matches!(decode_scenario(&bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn hostile_voxel_cells_are_revalidated() {
        // Corrupt one cell to point past the palette: decode must fail
        // through VoxelTissue::new validation, not panic later.
        let s = voxel_scenario();
        let bytes = encode_scenario(&s);
        // Cells are the last geometry bytes before the source tag; flip the
        // final cell (little-endian u16) to a huge palette index by
        // re-encoding the prefix to find its offset.
        let mut e = Encoder::new();
        put_geometry(&mut e, &s.tissue);
        let geom_end = e.finish().len();
        let mut poisoned = bytes.clone();
        poisoned[geom_end - 2] = 0xFF;
        poisoned[geom_end - 1] = 0xFF;
        assert!(matches!(decode_scenario(&poisoned), Err(WireError::Invalid(_))));
    }

    #[test]
    fn bad_geometry_tag_is_rejected() {
        let mut e = Encoder::new();
        e.put_u8(9); // no such geometry kind
        let bytes = e.finish();
        assert!(matches!(decode_scenario(&bytes), Err(WireError::Invalid(_))));
    }

    #[test]
    fn scenario_rejects_bad_enum_tags() {
        use lumen_tissue::presets::semi_infinite_phantom;
        let s = Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Uniform { radius: 1.0 },
            Detector::new(2.0, 0.5),
        );
        let bytes = encode_scenario(&s);
        // The source tag sits right after the geometry block; find it by
        // re-encoding with a poisoned tag instead of hunting offsets.
        let mut e = Encoder::new();
        put_geometry(&mut e, &s.tissue);
        let tag_pos = e.finish().len();
        let mut poisoned = bytes.clone();
        poisoned[tag_pos] = 0xEE;
        assert!(matches!(decode_scenario(&poisoned), Err(WireError::Invalid(_))));
    }

    proptest! {
        #[test]
        fn scenario_round_trips_across_phantoms(
            mu_a in 0.001f64..2.0,
            mu_s in 0.5f64..50.0,
            g in -0.9f64..0.95,
            n in 1.0f64..1.6,
            photons in 1u64..10_000_000,
            tasks in 1u64..256,
            seed in any::<u64>(),
        ) {
            use lumen_tissue::presets::semi_infinite_phantom;
            let s = Scenario::new(
                semi_infinite_phantom(mu_a, mu_s, g, n),
                Source::Delta,
                Detector::new(3.0, 1.0),
            )
            .with_photons(photons)
            .with_tasks(tasks)
            .with_seed(seed);
            prop_assert_eq!(decode_scenario(&encode_scenario(&s)).unwrap(), s);
        }
    }

    proptest! {
        #[test]
        fn task_round_trips(id in any::<u64>(), photons in any::<u64>()) {
            let t = SimTask { task_id: id, photons };
            prop_assert_eq!(decode_task(&encode_task(&t)).unwrap(), t);
        }

        #[test]
        fn tally_round_trips(
            launched in 0u64..1_000_000,
            detected in 0u64..1000,
            weights in proptest::collection::vec(0.0f64..100.0, 1..6)
        ) {
            let mut t = Tally::new(weights.len(), None, None);
            t.launched = launched;
            t.detected = detected;
            t.absorbed_by_layer = weights.clone();
            t.detected_reached_layer = vec![0; weights.len()];
            let decoded = decode_tally_scalars(&encode_tally_scalars(&t)).unwrap();
            prop_assert_eq!(decoded, t);
        }
    }
}
