//! Network cost model for the cluster simulator.
//!
//! The original platform ran over a campus LAN; tasks are tiny parameter
//! blobs but results can be large (a 50³ granularity grid is ~1 MB of
//! doubles). The model is latency + size/bandwidth, with the server's
//! result-merging treated as a sequential cost — the server is a single
//! 3 GHz P4 and "processes the returned results" one at a time, which is
//! the main efficiency loss at large worker counts.

use serde::{Deserialize, Serialize};

/// Simple latency/bandwidth + server-merge-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency (s).
    pub latency_s: f64,
    /// Usable bandwidth (MB/s).
    pub bandwidth_mb_s: f64,
    /// Server CPU time to merge one returned result (s). Serialised:
    /// concurrent arrivals queue.
    pub server_merge_s: f64,
}

impl NetworkModel {
    /// A 100 Mbit/s switched campus LAN of the mid-2000s.
    pub fn lan_2006() -> Self {
        Self { latency_s: 0.005, bandwidth_mb_s: 10.0, server_merge_s: 0.05 }
    }

    /// An idealised zero-cost network (for upper-bound speedups).
    pub const FREE: NetworkModel =
        NetworkModel { latency_s: 0.0, bandwidth_mb_s: f64::INFINITY, server_merge_s: 0.0 };

    /// Validate parameters.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn validate(&self) -> Result<(), String> {
        if self.latency_s < 0.0 || self.server_merge_s < 0.0 {
            return Err("network times must be non-negative".into());
        }
        if !(self.bandwidth_mb_s > 0.0) {
            return Err(format!("bandwidth must be positive, got {}", self.bandwidth_mb_s));
        }
        Ok(())
    }

    /// Time to move `bytes` one way (s).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_mb_s * 1e6)
    }

    /// Round-trip cost of assigning a task (`task_bytes`) and returning a
    /// result (`result_bytes`), excluding server merge time.
    pub fn round_trip(&self, task_bytes: u64, result_bytes: u64) -> f64 {
        self.transfer_time(task_bytes) + self.transfer_time(result_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let net = NetworkModel::lan_2006();
        let small = net.transfer_time(1_000);
        let big = net.transfer_time(1_000_000);
        assert!(big > small);
        // 1 MB at 10 MB/s = 0.1 s + latency.
        assert!((big - (0.005 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn free_network_is_instant() {
        assert_eq!(NetworkModel::FREE.transfer_time(u64::MAX), 0.0);
        assert_eq!(NetworkModel::FREE.round_trip(1, 1), 0.0);
    }

    #[test]
    fn round_trip_is_sum() {
        let net = NetworkModel::lan_2006();
        let rt = net.round_trip(100, 1_000_000);
        assert!((rt - (net.transfer_time(100) + net.transfer_time(1_000_000))).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(NetworkModel::lan_2006().validate().is_ok());
        assert!(NetworkModel::FREE.validate().is_ok());
        let bad = NetworkModel { latency_s: -1.0, ..NetworkModel::lan_2006() };
        assert!(bad.validate().is_err());
        let bad2 = NetworkModel { bandwidth_mb_s: 0.0, ..NetworkModel::lan_2006() };
        assert!(bad2.validate().is_err());
    }
}
