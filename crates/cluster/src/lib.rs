//! # lumen-cluster — the distributed execution platform
//!
//! The reproduced paper runs its Monte Carlo on a general-purpose Java
//! master/worker platform (Keane et al., the paper's reference \[2\]): a
//! `DataManager` on a server assigns photon batches to client PCs and
//! merges the returned results; clients are non-dedicated machines whose
//! available compute varies stochastically.
//!
//! We reproduce that platform twice, at two levels of fidelity:
//!
//! 1. **A real master/worker engine** ([`executor`]) — OS threads play the
//!    clients, crossbeam channels play the LAN, and the full protocol
//!    ([`protocol`]) runs for real: demand-driven task requests, task
//!    leases, failure re-queueing, result merging on the server. This
//!    executes the actual photon transport and is how the library does
//!    multi-core work in production.
//! 2. **A discrete-event simulator** ([`des`]) — models machines by their
//!    Mflop/s rating (Table 2), non-dedicated background load
//!    ([`availability`]), and network transfer costs ([`network`]), so the
//!    paper's 60-processor speedup curve (Fig 2) and 150-client
//!    heterogeneous run (Table 2) can be regenerated on any laptop,
//!    including cluster sizes the host machine doesn't have.
//!
//! Schedulers are pluggable ([`scheduler`]): demand-driven self-scheduling
//! (what the original platform does), static pre-partitioning, and a
//! genetic-algorithm scheduler in the spirit of the paper's reference \[4\].
//! For multi-machine deployments, [`wire`] provides the binary message
//! format (the role Java serialization played in the original), including
//! a full encoding of experiment definitions
//! ([`wire::encode_scenario`]).
//!
//! All of it is reachable through one front door: the [`backend`] module
//! implements `lumen_core::engine::Backend` for [`ThreadedCluster`],
//! [`Tcp`], and [`SimulatedCluster`], so the same
//! `lumen_core::engine::Scenario` runs unchanged on a single core, the
//! rayon pool, the threaded master/worker engine, a TCP deployment, or
//! the simulated machine pool — with bit-identical tallies wherever real
//! photons are traced.

pub mod availability;
pub mod backend;
pub mod datamanager;
pub mod des;
pub mod executor;
pub mod machine;
pub mod net;
pub mod network;
pub mod protocol;
pub mod scheduler;
pub mod speedup;
pub mod wire;

pub use availability::AvailabilityModel;
pub use backend::{BackendExt, FailurePlan, SimulatedCluster, Tcp, ThreadedCluster};
pub use datamanager::DataManager;
pub use des::{ClusterSim, DesReport, JobSpec};
#[allow(deprecated)]
pub use executor::run_distributed;
pub use executor::{run_master_worker, DistributedConfig, DistributedReport};
pub use machine::{homogeneous_pool, table2_pool, MachineClass, MachinePool};
pub use net::{
    run_client, serve, serve_with_options, serve_with_progress, NetError, NetReport, ServeOptions,
};
pub use network::NetworkModel;
pub use scheduler::{GaScheduler, Scheduler, SelfScheduling, StaticChunking};
pub use speedup::{efficiency, speedup_curve, SpeedupPoint};
