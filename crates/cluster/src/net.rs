//! TCP deployment of the DataManager ⇄ client protocol.
//!
//! This is the configuration the paper actually ran: "All the clients
//! connected to a dedicated server." [`serve`] runs the DataManager on a
//! TCP listener; [`run_client`] is the client loop a worker machine runs.
//! Both ends are constructed with the same [`Simulation`] (the original
//! shipped the `Algorithm` bytecode; we ship the experiment definition
//! out-of-band, which is the idiomatic Rust equivalent).
//!
//! The paper's whole point is Monte Carlo on *non-dedicated* clusters
//! where workers come and go, so the server is elastic: a background
//! accept thread admits clients at any time (late joiners are handed work
//! immediately), every assignment is a **lease** with a deadline, and a
//! lease that misses its deadline is revoked and re-queued exactly like a
//! disconnect — same `task_id`, hence the same RNG substream, hence a
//! bit-identical final tally no matter how many times a batch is re-run.
//! The server returns `Ok` **iff** every task completed; any abnormal
//! termination is a typed [`NetError`] (never a silently partial tally).
//!
//! Framing: every message is a 4-byte little-endian length followed by a
//! kind byte and a [`crate::wire`]-encoded payload. A connection opens
//! with a [`KIND_HELLO`] exchange carrying the wire-format version
//! ([`wire::VERSION`]); mismatched peers are rejected with
//! [`NetError::VersionMismatch`]. Unknown kinds and malformed payloads
//! terminate that client's connection; the DataManager re-queues whatever
//! task the lost client held, exactly as the paper's platform survives
//! reclaimed PCs.

use crate::datamanager::DataManager;
use crate::protocol::SimTask;
use crate::protocol::WorkerStats;
use crate::wire::{self, WireError};
use lumen_core::engine::{NoProgress, Progress};
use lumen_core::tally::Tally;
use lumen_core::{Simulation, SimulationResult};
use mcrng::StreamFactory;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Client → server: "I am idle; give me work."
pub const KIND_REQUEST: u8 = 0x01;
/// Client → server: a completed task's tally (the task is the client's
/// current lease — the server is authoritative about which one that is).
pub const KIND_COMPLETE: u8 = 0x02;
/// Either direction: protocol handshake. Payload is one byte, the
/// sender's [`wire::VERSION`]. A client opens with this; the server
/// always answers with its own version so a mismatched peer can
/// diagnose itself before the connection closes.
pub const KIND_HELLO: u8 = 0x03;
/// Either direction: liveness probe. The peer echoes the payload back
/// with the same kind. Pings prove the *transport* is alive; they do
/// **not** count as activity for the server's idle-zombie cut — a
/// connection that pings but never requests work is still reaped after
/// a lease period ([`ServeOptions::lease_timeout`]).
pub const KIND_PING: u8 = 0x04;
/// Server → client: a task assignment.
pub const KIND_ASSIGN: u8 = 0x81;
/// Server → client: no more work; terminate the worker loop.
pub const KIND_SHUTDOWN: u8 = 0x82;

/// Largest accepted frame (64 MiB) — a 50³ grid of f64 is ~1 MB, so this
/// leaves ample headroom while bounding a hostile length prefix.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// How often the accept thread polls its non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Errors from the networked protocol.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    Wire(WireError),
    /// Peer sent an unknown message kind.
    BadKind(u8),
    /// Frame length outside (0, MAX_FRAME].
    BadFrame(u32),
    /// The peer's HELLO carried a different wire-format version.
    VersionMismatch {
        /// Our [`wire::VERSION`].
        ours: u8,
        /// The version the peer announced.
        theirs: u8,
    },
    /// The server gave up (no clients, or the whole pool vanished) before
    /// every task completed. The partial tally is deliberately withheld:
    /// an incomplete Monte Carlo result reported as success is the one
    /// failure mode a golden-pinned codebase must never have.
    Incomplete {
        /// Photons completed and merged before the run was abandoned.
        photons_done: u64,
        /// The scenario's full photon budget.
        photons_total: u64,
        /// Tasks re-queued over the run's lifetime.
        requeues: u64,
    },
    /// The serve parameters were inconsistent (invalid simulation, zero
    /// `min_clients`, zero-duration timeouts, ...).
    InvalidConfig(String),
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::BadKind(k) => write!(f, "unknown message kind {k:#x}"),
            NetError::BadFrame(n) => write!(f, "bad frame length {n}"),
            NetError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer v{theirs}")
            }
            NetError::Incomplete { photons_done, photons_total, requeues } => write!(
                f,
                "run abandoned incomplete: {photons_done}/{photons_total} photons \
                 ({requeues} requeues)"
            ),
            NetError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Write one framed message.
pub fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    let len = 1 + payload.len();
    if len as u64 > MAX_FRAME as u64 {
        return Err(NetError::BadFrame(len as u32));
    }
    stream.write_all(&(len as u32).to_le_bytes())?;
    stream.write_all(&[kind])?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Read one framed message: `(kind, payload)`.
pub fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), NetError> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(NetError::BadFrame(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let kind = buf[0];
    let payload = buf.split_off(1);
    Ok((kind, payload))
}

/// Client-side half of the HELLO handshake: announce our
/// [`wire::VERSION`], read the server's, and fail typed on a mismatch.
pub fn handshake(stream: &mut TcpStream) -> Result<(), NetError> {
    write_frame(stream, KIND_HELLO, &[wire::VERSION])?;
    let (kind, payload) = read_frame(stream)?;
    match kind {
        KIND_HELLO => {
            let theirs = *payload.first().ok_or(NetError::Wire(WireError::Truncated))?;
            if theirs == wire::VERSION {
                Ok(())
            } else {
                Err(NetError::VersionMismatch { ours: wire::VERSION, theirs })
            }
        }
        other => Err(NetError::BadKind(other)),
    }
}

/// Round-trip a [`KIND_PING`] liveness probe on an established
/// (handshaken) connection, returning the measured latency.
pub fn ping(stream: &mut TcpStream) -> Result<Duration, NetError> {
    let started = Instant::now();
    write_frame(stream, KIND_PING, b"ping")?;
    let (kind, payload) = read_frame(stream)?;
    if kind != KIND_PING || payload != b"ping" {
        return Err(NetError::BadKind(kind));
    }
    Ok(started.elapsed())
}

/// Knobs for the elastic server — see [`serve_with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Clients to wait for before the first assignment. The run is
    /// elastic after the gate opens: clients joining later are handed
    /// work immediately, and the pool may shrink below this number
    /// without aborting the run (leases cover the departures).
    pub min_clients: usize,
    /// Deadline for one leased task. A lease that misses it is revoked
    /// and re-queued exactly like a disconnect; the holder's connection
    /// is cut. Size it comfortably above the slowest expected batch —
    /// the default is a generous 10 minutes, because socket errors
    /// already catch real disconnects immediately and revocation only
    /// needs to cover the silently-wedged remainder. The same deadline
    /// bounds how long a connected client may sit idle without
    /// requesting work before it is cut as a zombie.
    pub lease_timeout: Duration,
    /// How long the server tolerates having **zero** connected clients
    /// (at startup, or after the whole pool vanished mid-run) before
    /// abandoning the run with [`NetError::Incomplete`]. Also bounds the
    /// wait for `min_clients` and a new connection's HELLO.
    pub join_grace: Duration,
    /// First RNG stream index: task `i` draws from stream
    /// `task_offset + i` (mirrors `Scenario::task_offset`). Clients need
    /// no configuration — they stream by the task id in each assignment
    /// — so a continuation run extends an earlier one transparently.
    pub task_offset: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            min_clients: 1,
            lease_timeout: Duration::from_secs(600),
            join_grace: Duration::from_secs(10),
            task_offset: 0,
        }
    }
}

impl ServeOptions {
    /// Builder-style minimum client count.
    pub fn with_min_clients(mut self, min_clients: usize) -> Self {
        self.min_clients = min_clients;
        self
    }

    /// Builder-style lease deadline.
    pub fn with_lease_timeout(mut self, lease_timeout: Duration) -> Self {
        self.lease_timeout = lease_timeout;
        self
    }

    /// Builder-style empty-pool grace period.
    pub fn with_join_grace(mut self, join_grace: Duration) -> Self {
        self.join_grace = join_grace;
        self
    }

    /// Builder-style first RNG stream index.
    pub fn with_task_offset(mut self, task_offset: u64) -> Self {
        self.task_offset = task_offset;
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.min_clients == 0 {
            return Err(NetError::InvalidConfig("min_clients must be >= 1".into()));
        }
        if self.lease_timeout.is_zero() || self.join_grace.is_zero() {
            return Err(NetError::InvalidConfig(
                "lease_timeout and join_grace must be positive".into(),
            ));
        }
        // Cap deadlines so `Instant + timeout` arithmetic can never
        // overflow (and panic) on the serve path. ~31 years is "forever"
        // for any real deployment.
        const MAX_TIMEOUT: Duration = Duration::from_secs(1_000_000_000);
        if self.lease_timeout > MAX_TIMEOUT || self.join_grace > MAX_TIMEOUT {
            return Err(NetError::InvalidConfig(
                "lease_timeout and join_grace must be at most 10^9 seconds".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a networked run.
#[derive(Debug)]
pub struct NetReport {
    pub result: SimulationResult,
    pub worker_stats: Vec<WorkerStats>,
    pub requeues: u64,
    /// Connections actually served over the run's lifetime: every client
    /// that completed the HELLO handshake, late joiners included,
    /// never-connected slots excluded.
    pub clients_served: usize,
}

/// Serve one distributed simulation on `listener`: hand out `n` photons
/// in `tasks` batches to the clients that connect, merge their tallies,
/// and shut everyone down when complete. `min_clients` gates the first
/// assignment; the pool is elastic after that. Default lease/grace
/// timeouts — use [`serve_with_options`] to tune them.
pub fn serve(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    min_clients: usize,
) -> Result<NetReport, NetError> {
    serve_with_progress(listener, sim, n, tasks, min_clients, &NoProgress)
}

/// [`serve`], streaming completion and retry events to `progress`.
pub fn serve_with_progress(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    min_clients: usize,
    progress: &dyn Progress,
) -> Result<NetReport, NetError> {
    let options = ServeOptions::default().with_min_clients(min_clients);
    serve_with_options(listener, sim, n, tasks, options, progress)
}

/// Messages the accept/proxy threads feed the DataManager event loop.
enum Event {
    /// A connection completed its HELLO handshake and wants a worker id.
    Joined {
        reply_tx: mpsc::Sender<Option<SimTask>>,
        stream: TcpStream,
        id_tx: mpsc::Sender<usize>,
    },
    Request {
        worker: usize,
    },
    Complete {
        worker: usize,
        tally: Box<Tally>,
    },
    Disconnected {
        worker: usize,
    },
}

/// Event-loop record for one connected client.
struct Proxy {
    reply_tx: mpsc::Sender<Option<SimTask>>,
    /// Clone of the client's socket, so the event loop can cut a
    /// connection (lease revocation, stale completion) from outside the
    /// proxy thread.
    stream: TcpStream,
    /// The outstanding task and its deadline, if one is leased.
    lease: Option<(SimTask, Instant)>,
    /// When this client last went leaseless (joined, or completed a
    /// task). A connected client that neither holds a lease nor parks a
    /// request past the lease deadline is a zombie and gets cut — so no
    /// connection state can stall the run unboundedly.
    idle_since: Instant,
}

/// One connection's server-side thread: handshake, then translate frames
/// into events for the DataManager loop and replies back into frames.
fn proxy_loop(mut stream: TcpStream, tx: mpsc::Sender<Event>, handshake_timeout: Duration) {
    stream.set_nonblocking(false).ok();
    stream.set_nodelay(true).ok();
    // The handshake runs under a read timeout so a silent connection can
    // never pin server resources past the grace period.
    stream.set_read_timeout(Some(handshake_timeout)).ok();
    let hello = (|| -> Result<(), NetError> {
        let (kind, payload) = read_frame(&mut stream)?;
        if kind != KIND_HELLO {
            return Err(NetError::BadKind(kind));
        }
        let theirs = *payload.first().ok_or(NetError::Wire(WireError::Truncated))?;
        // Always answer with our version so the peer can diagnose itself.
        write_frame(&mut stream, KIND_HELLO, &[wire::VERSION])?;
        if theirs != wire::VERSION {
            return Err(NetError::VersionMismatch { ours: wire::VERSION, theirs });
        }
        Ok(())
    })();
    if hello.is_err() {
        // Never joined the pool; nothing to surrender. The connection
        // simply closes (the rejected peer already has our version).
        return;
    }
    stream.set_read_timeout(None).ok();

    // Register with the event loop, which assigns dense worker ids (so
    // per-worker stats cover exactly the clients actually served).
    let (reply_tx, reply_rx) = mpsc::channel::<Option<SimTask>>();
    let (id_tx, id_rx) = mpsc::channel::<usize>();
    let Ok(stream_clone) = stream.try_clone() else { return };
    if tx.send(Event::Joined { reply_tx, stream: stream_clone, id_tx }).is_err() {
        // The run already ended; tell the late client to go home.
        write_frame(&mut stream, KIND_SHUTDOWN, &[]).ok();
        return;
    }
    let Ok(worker) = id_rx.recv() else {
        write_frame(&mut stream, KIND_SHUTDOWN, &[]).ok();
        return;
    };

    let run = (|| -> Result<(), NetError> {
        loop {
            let (kind, payload) = read_frame(&mut stream)?;
            match kind {
                KIND_REQUEST => {
                    tx.send(Event::Request { worker }).ok();
                    match reply_rx.recv().unwrap_or(None) {
                        Some(task) => {
                            write_frame(&mut stream, KIND_ASSIGN, &wire::encode_task(&task))?;
                        }
                        None => {
                            write_frame(&mut stream, KIND_SHUTDOWN, &[])?;
                            return Ok(());
                        }
                    }
                }
                KIND_COMPLETE => {
                    let tally = wire::decode_tally(&payload)?;
                    tx.send(Event::Complete { worker, tally: Box::new(tally) }).ok();
                }
                KIND_PING => write_frame(&mut stream, KIND_PING, &payload)?,
                other => return Err(NetError::BadKind(other)),
            }
        }
    })();
    if run.is_err() {
        // Connection lost or protocol violation: surrender the lease.
        tx.send(Event::Disconnected { worker }).ok();
    }
}

/// Hand the next queued task to `worker`, stamping a lease deadline. If
/// the worker's proxy died between queueing its request and this reply,
/// the task goes straight back to the queue (another client will re-run
/// the identical photons) and the dead proxy is dropped.
fn hand_out(
    dm: &mut DataManager,
    proxies: &mut HashMap<usize, Proxy>,
    waiting: &mut Vec<usize>,
    worker: usize,
    lease_timeout: Duration,
    progress: &dyn Progress,
) {
    let Some(p) = proxies.get_mut(&worker) else { return };
    match dm.assign() {
        Some(task) => {
            if p.reply_tx.send(Some(task)).is_ok() {
                p.lease = Some((task, Instant::now() + lease_timeout));
            } else {
                dm.fail(worker, task);
                progress.on_task_retry(task.task_id);
                proxies.remove(&worker);
            }
        }
        None => waiting.push(worker),
    }
}

/// Wake parked workers while queued work remains.
fn drain_waiting(
    dm: &mut DataManager,
    proxies: &mut HashMap<usize, Proxy>,
    waiting: &mut Vec<usize>,
    lease_timeout: Duration,
    progress: &dyn Progress,
) {
    loop {
        if dm.queue_empty() {
            return;
        }
        let Some(w) = waiting.pop() else { return };
        hand_out(dm, proxies, waiting, w, lease_timeout, progress);
    }
}

/// [`serve`] with explicit [`ServeOptions`] — the full elastic runtime.
///
/// Invariants this function maintains:
///
/// * **`Ok` iff complete.** The merged tally is returned only when every
///   task completed; any abandonment path is a typed `Err`
///   ([`NetError::Incomplete`] carries how far the run got).
/// * **Requeue determinism.** A task lost to a disconnect, a revoked
///   lease, or a failed hand-off re-enters the queue under the same
///   `task_id`, so its re-execution draws the identical RNG substream
///   and the final tally is bit-identical to a sequential run.
/// * **Elasticity.** Clients join at any time; `min_clients` only gates
///   the *first* assignment. Departures below `min_clients` do not abort
///   the run while at least one client remains.
pub fn serve_with_options(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    options: ServeOptions,
    progress: &dyn Progress,
) -> Result<NetReport, NetError> {
    options.validate()?;
    sim.validate().map_err(|e| NetError::InvalidConfig(e.to_string()))?;
    if tasks == 0 {
        return Err(NetError::InvalidConfig("tasks must be >= 1".into()));
    }
    if options.task_offset.checked_add(tasks).is_none() {
        return Err(NetError::InvalidConfig(
            "task_offset + tasks overflows the stream index space".into(),
        ));
    }
    let mut dm = DataManager::with_offset(n, tasks, options.task_offset, sim.new_tally(), 0);

    let (tx, rx) = mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));

    // Background accept thread: clients may join at any time. The
    // listener polls non-blocking so the thread can observe `stop` and
    // release the port when the run ends.
    listener.set_nonblocking(true)?;
    let accept_thread = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        let handshake_timeout = options.join_grace;
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        // Proxy threads are detached: each is bounded by
                        // the handshake timeout, a queued shutdown reply,
                        // or its socket being cut, so none can outlive
                        // the run by more than one client round-trip.
                        thread::spawn(move || proxy_loop(stream, tx, handshake_timeout));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        })
    };
    drop(tx);

    let mut proxies: HashMap<usize, Proxy> = HashMap::new();
    let mut waiting: Vec<usize> = Vec::new();
    let mut joined_total = 0usize;
    let mut photons_done = 0u64;
    let started = Instant::now();
    // The pool has been empty since this instant (None while non-empty).
    let mut empty_since = Some(started);
    let lease_timeout = options.lease_timeout;

    let outcome = loop {
        if dm.finished() {
            break Ok(());
        }
        let now = Instant::now();

        // Abandon (typed, never a hang): the gate never opened, or the
        // whole pool vanished and nobody re-joined within the grace.
        let gate_stalled =
            joined_total < options.min_clients && now.duration_since(started) >= options.join_grace;
        let pool_stalled = empty_since.is_some_and(|t| now.duration_since(t) >= options.join_grace);
        if gate_stalled || pool_stalled {
            break Err(NetError::Incomplete {
                photons_done,
                photons_total: n,
                requeues: dm.requeues(),
            });
        }

        // Sleep until the next actionable instant: an event, the nearest
        // lease deadline, or a stall-detection horizon.
        let mut horizon = now + Duration::from_millis(500);
        for p in proxies.values() {
            if let Some((_, deadline)) = p.lease {
                horizon = horizon.min(deadline);
            }
        }
        if let Some(t) = empty_since {
            horizon = horizon.min(t + options.join_grace);
        }
        if joined_total < options.min_clients {
            horizon = horizon.min(started + options.join_grace);
        }
        let wait = horizon.saturating_duration_since(now).max(Duration::from_millis(1));

        match rx.recv_timeout(wait) {
            Ok(Event::Joined { reply_tx, stream, id_tx }) => {
                let worker = dm.register_worker();
                // A fresh Instant, not the pre-wait `now`: the loop may
                // have slept up to 500 ms before this event, and a stale
                // stamp could backdate a sub-second idle deadline enough
                // to cut a healthy client before its first request.
                let joined_at = Instant::now();
                proxies
                    .insert(worker, Proxy { reply_tx, stream, lease: None, idle_since: joined_at });
                joined_total += 1;
                empty_since = None;
                progress.on_clients(proxies.len());
                // The id reply releases the proxy into its frame loop.
                id_tx.send(worker).ok();
                if joined_total == options.min_clients {
                    // Gate opens: release requests parked before quorum.
                    drain_waiting(&mut dm, &mut proxies, &mut waiting, lease_timeout, progress);
                }
            }
            Ok(Event::Request { worker }) => {
                if joined_total >= options.min_clients {
                    hand_out(&mut dm, &mut proxies, &mut waiting, worker, lease_timeout, progress);
                } else {
                    waiting.push(worker);
                }
            }
            Ok(Event::Complete { worker, tally }) => {
                if let Some(p) = proxies.get_mut(&worker) {
                    match p.lease.take() {
                        Some((task, _)) => {
                            p.idle_since = Instant::now();
                            dm.complete(worker, task, &tally);
                            photons_done += task.photons;
                            progress.on_photons(photons_done, n);
                        }
                        None => {
                            // Stale completion of a revoked lease (or a
                            // protocol violation): the task already went
                            // back to the queue, so merging this tally
                            // would double-count its photons. Drop it and
                            // cut the connection.
                            p.stream.shutdown(Shutdown::Both).ok();
                        }
                    }
                }
            }
            Ok(Event::Disconnected { worker }) => {
                // Purge the departed worker from the wait queue so a
                // later requeue can never hand a task to a dead proxy.
                waiting.retain(|&w| w != worker);
                if let Some(mut p) = proxies.remove(&worker) {
                    progress.on_clients(proxies.len());
                    if let Some((task, _)) = p.lease.take() {
                        // A reclaimed/crashed client surrenders its
                        // lease; another client will re-run the identical
                        // photons (same stream index).
                        dm.fail(worker, task);
                        progress.on_task_retry(task.task_id);
                        drain_waiting(&mut dm, &mut proxies, &mut waiting, lease_timeout, progress);
                    }
                }
                if proxies.is_empty() {
                    empty_since = Some(Instant::now());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The accept thread holds a sender for the run's whole
                // lifetime, so this means it died — abandon, typed.
                break Err(NetError::Incomplete {
                    photons_done,
                    photons_total: n,
                    requeues: dm.requeues(),
                });
            }
        }

        // Revoke leases past their deadline: requeue now (a parked client
        // can start immediately) and cut the holder's connection, which
        // turns the laggard into an ordinary disconnect. If its COMPLETE
        // was already in flight, the cleared lease makes the event loop
        // drop the stale tally above — photons are never double-counted.
        let now = Instant::now();
        let mut revoked = false;
        for (&worker, p) in proxies.iter_mut() {
            if p.lease.is_some_and(|(_, deadline)| now >= deadline) {
                if let Some((task, _)) = p.lease.take() {
                    p.stream.shutdown(Shutdown::Both).ok();
                    dm.fail(worker, task);
                    progress.on_task_retry(task.task_id);
                    revoked = true;
                }
            } else if p.lease.is_none()
                && now.duration_since(p.idle_since) >= lease_timeout
                && !waiting.contains(&worker)
            {
                // A connected client that has neither requested work nor
                // held a lease for a whole lease period is a zombie
                // (parked workers are exempt — they are waiting on *us*).
                // Cut it so the run cannot be held open indefinitely by a
                // connection that will never contribute.
                p.stream.shutdown(Shutdown::Both).ok();
            }
        }
        if revoked {
            drain_waiting(&mut dm, &mut proxies, &mut waiting, lease_timeout, progress);
        }
    };

    // Wind down: stop admitting connections, release parked clients, and
    // queue a shutdown reply for every proxy's next (or pending) request.
    // Live clients then exit via a clean KIND_SHUTDOWN; proxies of dead
    // clients error out on their own.
    stop.store(true, Ordering::Relaxed);
    for w in waiting.drain(..) {
        if let Some(p) = proxies.get(&w) {
            p.reply_tx.send(None).ok();
        }
    }
    drop(rx);
    for p in proxies.values() {
        p.reply_tx.send(None).ok();
    }
    accept_thread.join().ok();
    // Proxies of responsive clients wake on the queued reply within
    // microseconds and write their SHUTDOWN; after a short drain, cut any
    // socket still in the map so a silent client cannot leak its proxy
    // thread and fd past this call in a long-lived process.
    thread::sleep(Duration::from_millis(50));
    for p in proxies.values() {
        p.stream.shutdown(Shutdown::Both).ok();
    }

    match outcome {
        Ok(()) => {
            let (tally, worker_stats, requeues) = dm.into_results();
            Ok(NetReport {
                result: SimulationResult::new(tally, Vec::new()),
                worker_stats,
                requeues,
                clients_served: joined_total,
            })
        }
        Err(e) => Err(e),
    }
}

/// The client loop: connect to the server, exchange HELLOs, request
/// tasks, simulate them with the shared `sim` definition and `seed`,
/// return tallies, exit on shutdown. Returns the number of tasks
/// completed.
pub fn run_client(addr: &str, sim: &Simulation, seed: u64) -> Result<u64, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    handshake(&mut stream)?;
    let factory = StreamFactory::new(seed);
    let mut completed = 0u64;
    loop {
        write_frame(&mut stream, KIND_REQUEST, &[])?;
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            KIND_SHUTDOWN => return Ok(completed),
            KIND_ASSIGN => {
                let task = wire::decode_task(&payload)?;
                let mut tally = sim.new_tally();
                let mut rng = factory.stream(task.task_id);
                sim.run_stream(task.photons, &mut rng, &mut tally, None);
                if let Some(a) = tally.archive.as_mut() {
                    a.stamp_task(task.task_id);
                }
                write_frame(&mut stream, KIND_COMPLETE, &wire::encode_tally(&tally))?;
                completed += 1;
            }
            other => return Err(NetError::BadKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::engine::{Backend, Rayon, Scenario};
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn sim() -> Simulation {
        Simulation::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    fn rayon_reference(sim: &Simulation, n: u64, seed: u64, tasks: u64) -> SimulationResult {
        let scenario = Scenario::from_simulation(sim, n, seed).with_tasks(tasks);
        Rayon::default().run(&scenario).expect("valid scenario").result
    }

    #[test]
    fn tcp_run_matches_rayon_driver() {
        let s = sim();
        let n = 4_000;
        let tasks = 8;
        let seed = 5;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();

        let clients: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                let addr = addr.clone();
                thread::spawn(move || run_client(&addr, &s, seed).expect("client ok"))
            })
            .collect();

        let report = serve(listener, &s, n, tasks, 3).expect("serve ok");
        let completed: u64 = clients.into_iter().map(|c| c.join().expect("join")).sum();

        assert_eq!(completed, tasks);
        assert_eq!(report.clients_served, 3);
        let rayon_res = rayon_reference(&s, n, seed, tasks);
        assert_eq!(report.result.tally, rayon_res.tally);
    }

    #[test]
    fn tcp_single_client_with_grids() {
        use lumen_core::tally::GridSpec;
        use lumen_core::Vec3;
        let mut s = sim();
        s.options.path_grid =
            Some(GridSpec::cubic(10, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, 2.0, 4.0)));
        s.options.path_histogram = Some((200.0, 16));
        let n = 3_000;
        let seed = 9;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let sc = s.clone();
        let ac = addr.clone();
        let client = thread::spawn(move || run_client(&ac, &sc, seed).expect("client"));

        let report = serve(listener, &s, n, 4, 1).expect("serve");
        client.join().expect("join");

        assert_eq!(report.clients_served, 1);
        let rayon_res = rayon_reference(&s, n, seed, 4);
        assert_eq!(report.result.tally, rayon_res.tally);
        assert!(report.result.tally.path_grid.is_some());
    }

    #[test]
    fn frame_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let (kind, payload) = read_frame(&mut s).unwrap();
            write_frame(&mut s, kind, &payload).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, 0x42, b"hello").unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"hello");
        echo.join().unwrap();
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            match read_frame(&mut s) {
                Err(NetError::BadFrame(0)) => {}
                other => panic!("expected BadFrame(0), got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&0u32.to_le_bytes()).unwrap();
        srv.join().unwrap();
    }

    #[test]
    fn serve_rejects_invalid_inputs_without_panicking() {
        // Zero min_clients and an invalid simulation are typed errors on
        // the serve path, never thread-killing panics.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &sim(), 100, 4, 0).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");

        let mut bad = sim();
        bad.detector.radius = -1.0;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &bad, 100, 4, 1).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &sim(), 100, 0, 1).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn ping_round_trips_on_a_served_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let s = sim();
        let server = {
            let s = s.clone();
            thread::spawn(move || serve(listener, &s, 500, 2, 1))
        };
        let mut stream = loop {
            match TcpStream::connect(&addr) {
                Ok(c) => break c,
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        };
        handshake(&mut stream).expect("handshake");
        let rtt = ping(&mut stream).expect("ping echoes");
        assert!(rtt < Duration::from_secs(5));
        // Finish the run so the server thread exits cleanly.
        let seed = 7;
        let factory = StreamFactory::new(seed);
        loop {
            write_frame(&mut stream, KIND_REQUEST, &[]).unwrap();
            let (kind, payload) = read_frame(&mut stream).unwrap();
            if kind == KIND_SHUTDOWN {
                break;
            }
            let task = wire::decode_task(&payload).unwrap();
            let mut tally = s.new_tally();
            let mut rng = factory.stream(task.task_id);
            s.run_stream(task.photons, &mut rng, &mut tally, None);
            if let Some(a) = tally.archive.as_mut() {
                a.stamp_task(task.task_id);
            }
            write_frame(&mut stream, KIND_COMPLETE, &wire::encode_tally(&tally)).unwrap();
        }
        let report = server.join().expect("server thread").expect("serve ok");
        assert_eq!(report.result.launched(), 500);
    }
}
