//! TCP deployment of the DataManager ⇄ client protocol.
//!
//! This is the configuration the paper actually ran: "All the clients
//! connected to a dedicated server." [`serve`] runs the DataManager on a
//! TCP listener; [`run_client`] is the client loop a worker machine runs.
//! Both ends are constructed with the same [`Simulation`] (the original
//! shipped the `Algorithm` bytecode; we ship the experiment definition
//! out-of-band, which is the idiomatic Rust equivalent).
//!
//! The paper's whole point is Monte Carlo on *non-dedicated* clusters
//! where workers come and go, so the server is elastic: clients are
//! admitted at any time (late joiners are handed work immediately),
//! every assignment is a **lease** with a deadline, and a lease that
//! misses its deadline is revoked and re-queued exactly like a
//! disconnect — same `task_id`, hence the same RNG substream, hence a
//! bit-identical final tally no matter how many times a batch is re-run.
//! The server returns `Ok` **iff** every task completed; any abnormal
//! termination is a typed [`NetError`] (never a silently partial tally).
//!
//! Since the transport-core rework the server is a single
//! [`lumen_net::EventLoop`] readiness loop rather than a
//! thread-per-connection pool: one thread owns every socket *and* the
//! lease table, each connection advances an explicit state machine
//! (handshaking → pooled → leased, with a run-level draining mode), and
//! the pool scales to hundreds of multiplexed clients with no lock
//! contention. Clients ([`run_client`]) remain plain blocking loops.
//!
//! Framing: every message is a 4-byte little-endian length followed by a
//! kind byte and a [`crate::wire`]-encoded payload. A connection opens
//! with a [`KIND_HELLO`] exchange carrying the wire-format version
//! ([`wire::VERSION`]); mismatched peers are rejected with
//! [`NetError::VersionMismatch`]. Unknown kinds and malformed payloads
//! terminate that client's connection; the DataManager re-queues whatever
//! task the lost client held, exactly as the paper's platform survives
//! reclaimed PCs.

use crate::datamanager::DataManager;
use crate::protocol::SimTask;
use crate::protocol::WorkerStats;
use crate::wire::{self, WireError};
use lumen_core::engine::{NoProgress, Progress};
use lumen_core::{Simulation, SimulationResult};
use lumen_net::{EventLoop, Flow, Handler, Ops, Token};
use mcrng::StreamFactory;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Client → server: "I am idle; give me work."
pub const KIND_REQUEST: u8 = 0x01;
/// Client → server: a completed task's tally (the task is the client's
/// current lease — the server is authoritative about which one that is).
pub const KIND_COMPLETE: u8 = 0x02;
/// Either direction: protocol handshake. Payload is one byte, the
/// sender's [`wire::VERSION`]. A client opens with this; the server
/// always answers with its own version so a mismatched peer can
/// diagnose itself before the connection closes.
pub const KIND_HELLO: u8 = 0x03;
/// Either direction: liveness probe. The peer echoes the payload back
/// with the same kind. Pings prove the *transport* is alive; they do
/// **not** count as activity for the server's idle-zombie cut — a
/// connection that pings but never requests work is still reaped after
/// a lease period ([`ServeOptions::lease_timeout`]).
pub const KIND_PING: u8 = 0x04;
/// Server → client: a task assignment.
pub const KIND_ASSIGN: u8 = 0x81;
/// Server → client: no more work; terminate the worker loop.
pub const KIND_SHUTDOWN: u8 = 0x82;

/// Largest accepted frame — shared with the transport core so the
/// blocking helpers and the poll loop can never disagree on the cap.
const MAX_FRAME: u32 = lumen_net::frame::MAX_FRAME;

/// After every task completes, how long the server waits for still-open
/// clients to request (and be sent) their clean `KIND_SHUTDOWN` before
/// cutting whatever remains. Responsive clients drain within one
/// round-trip; this only bounds the unresponsive.
const DRAIN_WINDOW: Duration = Duration::from_secs(2);

/// Errors from the networked protocol.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    Wire(WireError),
    /// Peer sent an unknown message kind.
    BadKind(u8),
    /// Frame length outside (0, MAX_FRAME].
    BadFrame(u32),
    /// The peer's HELLO carried a different wire-format version.
    VersionMismatch {
        /// Our [`wire::VERSION`].
        ours: u8,
        /// The version the peer announced.
        theirs: u8,
    },
    /// The server gave up (no clients, or the whole pool vanished) before
    /// every task completed. The partial tally is deliberately withheld:
    /// an incomplete Monte Carlo result reported as success is the one
    /// failure mode a golden-pinned codebase must never have.
    Incomplete {
        /// Photons completed and merged before the run was abandoned.
        photons_done: u64,
        /// The scenario's full photon budget.
        photons_total: u64,
        /// Tasks re-queued over the run's lifetime.
        requeues: u64,
    },
    /// The serve parameters were inconsistent (invalid simulation, zero
    /// `min_clients`, zero-duration timeouts, ...).
    InvalidConfig(String),
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::BadKind(k) => write!(f, "unknown message kind {k:#x}"),
            NetError::BadFrame(n) => write!(f, "bad frame length {n}"),
            NetError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer v{theirs}")
            }
            NetError::Incomplete { photons_done, photons_total, requeues } => write!(
                f,
                "run abandoned incomplete: {photons_done}/{photons_total} photons \
                 ({requeues} requeues)"
            ),
            NetError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Write one framed message as a **single** write: length, kind, and
/// payload are assembled into one contiguous buffer first, so a frame
/// costs one syscall (and, with `TCP_NODELAY`, at most one packet)
/// instead of the three the original length/kind/payload sequence paid.
pub fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    write_frame_to(stream, kind, payload)
}

/// [`write_frame`] over any writer — the blocking half of the shared
/// frame layer ([`lumen_net::frame`]), and the seam the frame-atomicity
/// regression test observes.
pub fn write_frame_to<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    let mut buf = Vec::with_capacity(5 + payload.len());
    lumen_net::frame::encode_frame_into(&mut buf, kind, payload)
        .map_err(|_| NetError::BadFrame((1 + payload.len()) as u32))?;
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message: `(kind, payload)`.
pub fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), NetError> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(NetError::BadFrame(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let kind = buf[0];
    let payload = buf.split_off(1);
    Ok((kind, payload))
}

/// Client-side half of the HELLO handshake: announce our
/// [`wire::VERSION`], read the server's, and fail typed on a mismatch.
pub fn handshake(stream: &mut TcpStream) -> Result<(), NetError> {
    write_frame(stream, KIND_HELLO, &[wire::VERSION])?;
    let (kind, payload) = read_frame(stream)?;
    match kind {
        KIND_HELLO => {
            let theirs = *payload.first().ok_or(NetError::Wire(WireError::Truncated))?;
            if theirs == wire::VERSION {
                Ok(())
            } else {
                Err(NetError::VersionMismatch { ours: wire::VERSION, theirs })
            }
        }
        other => Err(NetError::BadKind(other)),
    }
}

/// Round-trip a [`KIND_PING`] liveness probe on an established
/// (handshaken) connection, returning the measured latency.
pub fn ping(stream: &mut TcpStream) -> Result<Duration, NetError> {
    let started = Instant::now();
    write_frame(stream, KIND_PING, b"ping")?;
    let (kind, payload) = read_frame(stream)?;
    if kind != KIND_PING || payload != b"ping" {
        return Err(NetError::BadKind(kind));
    }
    Ok(started.elapsed())
}

/// Knobs for the elastic server — see [`serve_with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Clients to wait for before the first assignment. The run is
    /// elastic after the gate opens: clients joining later are handed
    /// work immediately, and the pool may shrink below this number
    /// without aborting the run (leases cover the departures).
    pub min_clients: usize,
    /// Deadline for one leased task. A lease that misses it is revoked
    /// and re-queued exactly like a disconnect; the holder's connection
    /// is cut. Size it comfortably above the slowest expected batch —
    /// the default is a generous 10 minutes, because socket errors
    /// already catch real disconnects immediately and revocation only
    /// needs to cover the silently-wedged remainder. The same deadline
    /// bounds how long a connected client may sit idle without
    /// requesting work before it is cut as a zombie.
    pub lease_timeout: Duration,
    /// How long the server tolerates having **zero** connected clients
    /// (at startup, or after the whole pool vanished mid-run) before
    /// abandoning the run with [`NetError::Incomplete`]. Also bounds the
    /// wait for `min_clients` and a new connection's HELLO.
    pub join_grace: Duration,
    /// First RNG stream index: task `i` draws from stream
    /// `task_offset + i` (mirrors `Scenario::task_offset`). Clients need
    /// no configuration — they stream by the task id in each assignment
    /// — so a continuation run extends an earlier one transparently.
    pub task_offset: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            min_clients: 1,
            lease_timeout: Duration::from_secs(600),
            join_grace: Duration::from_secs(10),
            task_offset: 0,
        }
    }
}

impl ServeOptions {
    /// Builder-style minimum client count.
    pub fn with_min_clients(mut self, min_clients: usize) -> Self {
        self.min_clients = min_clients;
        self
    }

    /// Builder-style lease deadline.
    pub fn with_lease_timeout(mut self, lease_timeout: Duration) -> Self {
        self.lease_timeout = lease_timeout;
        self
    }

    /// Builder-style empty-pool grace period.
    pub fn with_join_grace(mut self, join_grace: Duration) -> Self {
        self.join_grace = join_grace;
        self
    }

    /// Builder-style first RNG stream index.
    pub fn with_task_offset(mut self, task_offset: u64) -> Self {
        self.task_offset = task_offset;
        self
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.min_clients == 0 {
            return Err(NetError::InvalidConfig("min_clients must be >= 1".into()));
        }
        if self.lease_timeout.is_zero() || self.join_grace.is_zero() {
            return Err(NetError::InvalidConfig(
                "lease_timeout and join_grace must be positive".into(),
            ));
        }
        // Cap deadlines so `Instant + timeout` arithmetic can never
        // overflow (and panic) on the serve path. ~31 years is "forever"
        // for any real deployment.
        const MAX_TIMEOUT: Duration = Duration::from_secs(1_000_000_000);
        if self.lease_timeout > MAX_TIMEOUT || self.join_grace > MAX_TIMEOUT {
            return Err(NetError::InvalidConfig(
                "lease_timeout and join_grace must be at most 10^9 seconds".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a networked run.
#[derive(Debug)]
pub struct NetReport {
    pub result: SimulationResult,
    pub worker_stats: Vec<WorkerStats>,
    pub requeues: u64,
    /// Connections actually served over the run's lifetime: every client
    /// that completed the HELLO handshake, late joiners included,
    /// never-connected slots excluded.
    pub clients_served: usize,
}

/// Serve one distributed simulation on `listener`: hand out `n` photons
/// in `tasks` batches to the clients that connect, merge their tallies,
/// and shut everyone down when complete. `min_clients` gates the first
/// assignment; the pool is elastic after that. Default lease/grace
/// timeouts — use [`serve_with_options`] to tune them.
pub fn serve(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    min_clients: usize,
) -> Result<NetReport, NetError> {
    serve_with_progress(listener, sim, n, tasks, min_clients, &NoProgress)
}

/// [`serve`], streaming completion and retry events to `progress`.
pub fn serve_with_progress(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    min_clients: usize,
    progress: &dyn Progress,
) -> Result<NetReport, NetError> {
    let options = ServeOptions::default().with_min_clients(min_clients);
    serve_with_options(listener, sim, n, tasks, options, progress)
}

/// One connection's protocol state — the explicit state machine the
/// transport core runs each client through. Draining is a run-level mode
/// (see [`ClusterServer::draining`]), not a per-connection state: once
/// every task completes, *every* state answers with `KIND_SHUTDOWN`.
#[derive(Debug, Clone, Copy)]
enum Client {
    /// Accepted, HELLO not yet completed; cut at `deadline` (the join
    /// grace), so a silent connection can never pin server resources.
    Handshaking { deadline: Instant },
    /// In the pool without a lease. `parked` means its work request sits
    /// in the wait queue (queue empty, or the start gate still closed);
    /// `idle_since` is when it last went leaseless — a client that
    /// neither requests nor holds work for a whole lease period is a
    /// zombie and gets cut.
    Pooled { worker: usize, idle_since: Instant, parked: bool },
    /// Holds `task` until `deadline`; past it the lease is revoked, the
    /// task re-queued, and the connection cut.
    Leased { worker: usize, task: SimTask, deadline: Instant },
}

/// The DataManager protocol as a [`Handler`] on the shared poll loop:
/// one thread owns every connection *and* the lease table, so there is
/// no lock to contend on and no per-client thread to leak.
struct ClusterServer<'a> {
    dm: DataManager,
    clients: HashMap<Token, Client>,
    /// Parked requests, released LIFO as work re-queues or the gate opens.
    waiting: Vec<Token>,
    joined_total: usize,
    photons_done: u64,
    photons_total: u64,
    options: ServeOptions,
    started: Instant,
    /// The pool has been empty since this instant (None while non-empty).
    empty_since: Option<Instant>,
    progress: &'a dyn Progress,
    /// Abandonment outcome; set ⇒ the loop stops on the next tick.
    failed: Option<NetError>,
    /// Every task completed at some instant; drain SHUTDOWNs until here.
    draining: Option<Instant>,
}

impl ClusterServer<'_> {
    /// Clients past the handshake — the "pool" whose emptiness starts
    /// the abandonment clock.
    fn pool_len(&self) -> usize {
        self.clients.values().filter(|c| !matches!(c, Client::Handshaking { .. })).count()
    }

    fn note_pool_change(&mut self, now: Instant) {
        let len = self.pool_len();
        self.progress.on_clients(len);
        if len == 0 {
            self.empty_since = Some(now);
        }
    }

    /// Cut `token` on our initiative (revocation, zombie, violation) and
    /// reap its protocol state.
    fn depart(&mut self, ops: &mut Ops<'_>, token: Token, now: Instant) {
        ops.close(token);
        self.reap(ops, token, now);
    }

    /// Forget `token`, surrendering its lease back to the queue — the
    /// requeue keeps the same `task_id`, so the re-execution draws the
    /// identical RNG substream and the final tally stays bit-identical.
    fn reap(&mut self, ops: &mut Ops<'_>, token: Token, now: Instant) {
        let Some(state) = self.clients.remove(&token) else { return };
        // Purge the departed client from the wait queue so a later
        // requeue can never hand a task to a dead connection.
        self.waiting.retain(|&t| t != token);
        match state {
            Client::Handshaking { .. } => {}
            Client::Pooled { .. } => self.note_pool_change(now),
            Client::Leased { worker, task, .. } => {
                self.dm.fail(worker, task);
                self.progress.on_task_retry(task.task_id);
                self.drain_waiting(ops, now);
                self.note_pool_change(now);
            }
        }
    }

    /// Answer `token`'s work request: lease the next queued task, or park
    /// the request until one re-queues.
    fn hand_out(&mut self, ops: &mut Ops<'_>, token: Token, now: Instant) {
        let Some(&Client::Pooled { worker, idle_since, .. }) = self.clients.get(&token) else {
            return;
        };
        match self.dm.assign() {
            Some(task) => {
                // A hand-off onto a dying socket is safe: the write error
                // surfaces as a close event, whose reap re-queues `task`.
                ops.send(token, KIND_ASSIGN, &wire::encode_task(&task));
                let deadline = now + self.options.lease_timeout;
                self.clients.insert(token, Client::Leased { worker, task, deadline });
            }
            None => {
                self.clients.insert(token, Client::Pooled { worker, idle_since, parked: true });
                if !self.waiting.contains(&token) {
                    self.waiting.push(token);
                }
            }
        }
    }

    /// Wake parked clients while queued work remains.
    fn drain_waiting(&mut self, ops: &mut Ops<'_>, now: Instant) {
        while !self.dm.queue_empty() {
            let Some(token) = self.waiting.pop() else { return };
            if let Some(&Client::Pooled { worker, idle_since, .. }) = self.clients.get(&token) {
                self.clients.insert(token, Client::Pooled { worker, idle_since, parked: false });
                self.hand_out(ops, token, now);
            }
        }
    }

    /// Send a clean shutdown and close once it flushes.
    fn dismiss(&mut self, ops: &mut Ops<'_>, token: Token) {
        self.clients.remove(&token);
        ops.send(token, KIND_SHUTDOWN, &[]);
        ops.finish(token);
    }

    /// Every task completed: release parked clients with a clean
    /// `KIND_SHUTDOWN` now; busy clients collect theirs with their next
    /// request, bounded by [`DRAIN_WINDOW`].
    fn begin_drain(&mut self, ops: &mut Ops<'_>, now: Instant) {
        self.draining = Some(now + DRAIN_WINDOW);
        for token in std::mem::take(&mut self.waiting) {
            if self.clients.contains_key(&token) {
                self.dismiss(ops, token);
            }
        }
    }
}

impl Handler for ClusterServer<'_> {
    fn on_open(&mut self, _ops: &mut Ops<'_>, token: Token) {
        let deadline = Instant::now() + self.options.join_grace;
        self.clients.insert(token, Client::Handshaking { deadline });
    }

    fn on_frame(&mut self, ops: &mut Ops<'_>, token: Token, kind: u8, payload: Vec<u8>) {
        let now = Instant::now();
        let Some(state) = self.clients.get(&token).copied() else {
            ops.close(token);
            return;
        };
        match state {
            Client::Handshaking { .. } if kind == KIND_HELLO => {
                let Some(&theirs) = payload.first() else {
                    self.depart(ops, token, now);
                    return;
                };
                // Always answer with our version *before* any rejection,
                // so a mismatched peer can diagnose itself.
                ops.send(token, KIND_HELLO, &[wire::VERSION]);
                if theirs != wire::VERSION {
                    self.clients.remove(&token);
                    ops.finish(token);
                    return;
                }
                if self.draining.is_some() {
                    // The run already ended; tell the late client to go
                    // home (it never joins, so it is never counted).
                    self.dismiss(ops, token);
                    return;
                }
                // Dense worker ids, so per-worker stats cover exactly the
                // clients actually served.
                let worker = self.dm.register_worker();
                self.joined_total += 1;
                self.empty_since = None;
                self.clients
                    .insert(token, Client::Pooled { worker, idle_since: now, parked: false });
                self.progress.on_clients(self.pool_len());
                if self.joined_total == self.options.min_clients {
                    // Gate opens: release requests parked before quorum.
                    self.drain_waiting(ops, now);
                }
            }
            Client::Handshaking { .. } => self.depart(ops, token, now),
            Client::Pooled { worker, idle_since, parked } => match kind {
                KIND_REQUEST if self.draining.is_some() => self.dismiss(ops, token),
                KIND_REQUEST => {
                    if self.joined_total >= self.options.min_clients {
                        self.hand_out(ops, token, now);
                    } else {
                        let state = Client::Pooled { worker, idle_since, parked: true };
                        self.clients.insert(token, state);
                        if !parked {
                            self.waiting.push(token);
                        }
                    }
                }
                KIND_PING => {
                    ops.send(token, KIND_PING, &payload);
                }
                // A COMPLETE without a lease is the stale completion of a
                // revoked task (or a protocol violation): the task
                // already went back to the queue, so merging this tally
                // would double-count its photons. Drop it, cut the peer.
                _ => self.depart(ops, token, now),
            },
            Client::Leased { worker, task, .. } => match kind {
                KIND_COMPLETE => match wire::decode_tally(&payload) {
                    Ok(tally) => {
                        self.dm.complete(worker, task, &tally);
                        self.photons_done += task.photons;
                        self.progress.on_photons(self.photons_done, self.photons_total);
                        self.clients.insert(
                            token,
                            Client::Pooled { worker, idle_since: now, parked: false },
                        );
                        if self.dm.finished() {
                            self.begin_drain(ops, now);
                        }
                    }
                    // Malformed tally: surrender the lease, cut the peer.
                    Err(_) => self.depart(ops, token, now),
                },
                KIND_PING => {
                    ops.send(token, KIND_PING, &payload);
                }
                _ => self.depart(ops, token, now),
            },
        }
    }

    fn on_close(&mut self, ops: &mut Ops<'_>, token: Token) {
        // A reclaimed/crashed client surrenders its lease; another client
        // will re-run the identical photons (same stream index).
        self.reap(ops, token, Instant::now());
    }

    fn on_tick(&mut self, ops: &mut Ops<'_>, now: Instant) -> Flow {
        if let Some(deadline) = self.draining {
            // Stop as soon as every client has collected its SHUTDOWN
            // (or the drain window closes on the unresponsive).
            return if ops.is_empty() || now >= deadline { Flow::Stop } else { Flow::Continue };
        }

        // Abandon (typed, never a hang): the gate never opened, or the
        // whole pool vanished and nobody re-joined within the grace.
        let gate_stalled = self.joined_total < self.options.min_clients
            && now.duration_since(self.started) >= self.options.join_grace;
        let pool_stalled =
            self.empty_since.is_some_and(|t| now.duration_since(t) >= self.options.join_grace);
        if gate_stalled || pool_stalled {
            self.failed = Some(NetError::Incomplete {
                photons_done: self.photons_done,
                photons_total: self.photons_total,
                requeues: self.dm.requeues(),
            });
            return Flow::Stop;
        }

        // Deadline enforcement. Revoking a lease requeues now (a parked
        // client can start immediately) and cuts the holder, turning the
        // laggard into an ordinary disconnect — if its COMPLETE was
        // already in flight, the cut drops it before it can be read, so
        // photons are never double-counted. A connected client that
        // neither requests work nor holds a lease for a whole lease
        // period is a zombie and is cut for the same reason (parked
        // clients are exempt — they are waiting on *us*).
        let expired: Vec<Token> = self
            .clients
            .iter()
            .filter(|(_, state)| match **state {
                Client::Handshaking { deadline } | Client::Leased { deadline, .. } => {
                    now >= deadline
                }
                Client::Pooled { idle_since, parked, .. } => {
                    !parked && now.duration_since(idle_since) >= self.options.lease_timeout
                }
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.depart(ops, token, now);
        }
        Flow::Continue
    }

    fn next_wake(&mut self, _now: Instant) -> Option<Instant> {
        if let Some(deadline) = self.draining {
            return Some(deadline);
        }
        let mut horizon: Option<Instant> = None;
        let mut note = |t: Instant| horizon = Some(horizon.map_or(t, |h| h.min(t)));
        if self.joined_total < self.options.min_clients {
            note(self.started + self.options.join_grace);
        }
        if let Some(t) = self.empty_since {
            note(t + self.options.join_grace);
        }
        for state in self.clients.values() {
            match *state {
                Client::Handshaking { deadline } | Client::Leased { deadline, .. } => {
                    note(deadline);
                }
                Client::Pooled { idle_since, parked, .. } if !parked => {
                    note(idle_since + self.options.lease_timeout);
                }
                Client::Pooled { .. } => {}
            }
        }
        horizon
    }
}

/// [`serve`] with explicit [`ServeOptions`] — the full elastic runtime.
///
/// Invariants this function maintains:
///
/// * **`Ok` iff complete.** The merged tally is returned only when every
///   task completed; any abandonment path is a typed `Err`
///   ([`NetError::Incomplete`] carries how far the run got).
/// * **Requeue determinism.** A task lost to a disconnect, a revoked
///   lease, or a failed hand-off re-enters the queue under the same
///   `task_id`, so its re-execution draws the identical RNG substream
///   and the final tally is bit-identical to a sequential run.
/// * **Elasticity.** Clients join at any time; `min_clients` only gates
///   the *first* assignment. Departures below `min_clients` do not abort
///   the run while at least one client remains.
pub fn serve_with_options(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    options: ServeOptions,
    progress: &dyn Progress,
) -> Result<NetReport, NetError> {
    options.validate()?;
    sim.validate().map_err(|e| NetError::InvalidConfig(e.to_string()))?;
    if tasks == 0 {
        return Err(NetError::InvalidConfig("tasks must be >= 1".into()));
    }
    if options.task_offset.checked_add(tasks).is_none() {
        return Err(NetError::InvalidConfig(
            "task_offset + tasks overflows the stream index space".into(),
        ));
    }
    let dm = DataManager::with_offset(n, tasks, options.task_offset, sim.new_tally(), 0);

    let mut events = EventLoop::new(listener)?;
    let started = Instant::now();
    let mut server = ClusterServer {
        dm,
        clients: HashMap::new(),
        waiting: Vec::new(),
        joined_total: 0,
        photons_done: 0,
        photons_total: n,
        options,
        started,
        empty_since: Some(started),
        progress,
        failed: None,
        draining: None,
    };
    events.run(&mut server)?;
    // Dropping the loop closes the listener and cuts every socket still
    // open (clients that never collected their SHUTDOWN, abandoned runs).
    drop(events);

    if let Some(err) = server.failed {
        return Err(err);
    }
    let clients_served = server.joined_total;
    let (tally, worker_stats, requeues) = server.dm.into_results();
    Ok(NetReport {
        result: SimulationResult::new(tally, Vec::new()),
        worker_stats,
        requeues,
        clients_served,
    })
}

/// The client loop: connect to the server, exchange HELLOs, request
/// tasks, simulate them with the shared `sim` definition and `seed`,
/// return tallies, exit on shutdown. Returns the number of tasks
/// completed.
pub fn run_client(addr: &str, sim: &Simulation, seed: u64) -> Result<u64, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    // A failed socket-option set is a broken connection, not a shrug:
    // surface it instead of running the whole protocol on a socket whose
    // configuration silently differs from what the code assumes.
    stream.set_nodelay(true)?;
    handshake(&mut stream)?;
    let factory = StreamFactory::new(seed);
    let mut completed = 0u64;
    loop {
        write_frame(&mut stream, KIND_REQUEST, &[])?;
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            KIND_SHUTDOWN => return Ok(completed),
            KIND_ASSIGN => {
                let task = wire::decode_task(&payload)?;
                let mut tally = sim.new_tally();
                let mut rng = factory.stream(task.task_id);
                sim.run_stream(task.photons, &mut rng, &mut tally, None);
                if let Some(a) = tally.archive.as_mut() {
                    a.stamp_task(task.task_id);
                }
                write_frame(&mut stream, KIND_COMPLETE, &wire::encode_tally(&tally))?;
                completed += 1;
            }
            other => return Err(NetError::BadKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::engine::{Backend, Rayon, Scenario};
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;
    use std::thread;

    fn sim() -> Simulation {
        Simulation::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    fn rayon_reference(sim: &Simulation, n: u64, seed: u64, tasks: u64) -> SimulationResult {
        let scenario = Scenario::from_simulation(sim, n, seed).with_tasks(tasks);
        Rayon::default().run(&scenario).expect("valid scenario").result
    }

    #[test]
    fn tcp_run_matches_rayon_driver() {
        let s = sim();
        let n = 4_000;
        let tasks = 8;
        let seed = 5;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();

        let clients: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                let addr = addr.clone();
                thread::spawn(move || run_client(&addr, &s, seed).expect("client ok"))
            })
            .collect();

        let report = serve(listener, &s, n, tasks, 3).expect("serve ok");
        let completed: u64 = clients.into_iter().map(|c| c.join().expect("join")).sum();

        assert_eq!(completed, tasks);
        assert_eq!(report.clients_served, 3);
        let rayon_res = rayon_reference(&s, n, seed, tasks);
        assert_eq!(report.result.tally, rayon_res.tally);
    }

    #[test]
    fn tcp_single_client_with_grids() {
        use lumen_core::tally::GridSpec;
        use lumen_core::Vec3;
        let mut s = sim();
        s.options.path_grid =
            Some(GridSpec::cubic(10, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, 2.0, 4.0)));
        s.options.path_histogram = Some((200.0, 16));
        let n = 3_000;
        let seed = 9;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let sc = s.clone();
        let ac = addr.clone();
        let client = thread::spawn(move || run_client(&ac, &sc, seed).expect("client"));

        let report = serve(listener, &s, n, 4, 1).expect("serve");
        client.join().expect("join");

        assert_eq!(report.clients_served, 1);
        let rayon_res = rayon_reference(&s, n, seed, 4);
        assert_eq!(report.result.tally, rayon_res.tally);
        assert!(report.result.tally.path_grid.is_some());
    }

    #[test]
    fn write_frame_is_a_single_contiguous_write() {
        // Regression: the original implementation issued three separate
        // writes per frame (length, kind, payload) — three syscalls and,
        // with TCP_NODELAY, up to three packets. The frame must hit the
        // writer as one contiguous buffer in one call.
        struct CountingWriter {
            writes: Vec<Vec<u8>>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.writes.push(buf.to_vec());
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut w = CountingWriter { writes: Vec::new() };
        write_frame_to(&mut w, 0x42, b"payload").unwrap();
        assert_eq!(w.writes.len(), 1, "one frame must be exactly one write call");
        let bytes = &w.writes[0];
        assert_eq!(&bytes[..4], &8u32.to_le_bytes(), "4-byte LE length prefix");
        assert_eq!(bytes[4], 0x42, "kind byte follows the length");
        assert_eq!(&bytes[5..], b"payload");

        let mut w = CountingWriter { writes: Vec::new() };
        write_frame_to(&mut w, KIND_REQUEST, &[]).unwrap();
        assert_eq!(w.writes.len(), 1, "empty-payload frames too");
        assert_eq!(w.writes[0], vec![1, 0, 0, 0, KIND_REQUEST]);
    }

    #[test]
    fn frame_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let (kind, payload) = read_frame(&mut s).unwrap();
            write_frame(&mut s, kind, &payload).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, 0x42, b"hello").unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"hello");
        echo.join().unwrap();
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            match read_frame(&mut s) {
                Err(NetError::BadFrame(0)) => {}
                other => panic!("expected BadFrame(0), got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&0u32.to_le_bytes()).unwrap();
        srv.join().unwrap();
    }

    #[test]
    fn serve_rejects_invalid_inputs_without_panicking() {
        // Zero min_clients and an invalid simulation are typed errors on
        // the serve path, never thread-killing panics.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &sim(), 100, 4, 0).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");

        let mut bad = sim();
        bad.detector.radius = -1.0;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &bad, 100, 4, 1).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(listener, &sim(), 100, 0, 1).unwrap_err();
        assert!(matches!(err, NetError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn ping_round_trips_on_a_served_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let s = sim();
        let server = {
            let s = s.clone();
            thread::spawn(move || serve(listener, &s, 500, 2, 1))
        };
        let mut stream = loop {
            match TcpStream::connect(&addr) {
                Ok(c) => break c,
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        };
        handshake(&mut stream).expect("handshake");
        let rtt = ping(&mut stream).expect("ping echoes");
        assert!(rtt < Duration::from_secs(5));
        // Finish the run so the server thread exits cleanly.
        let seed = 7;
        let factory = StreamFactory::new(seed);
        loop {
            write_frame(&mut stream, KIND_REQUEST, &[]).unwrap();
            let (kind, payload) = read_frame(&mut stream).unwrap();
            if kind == KIND_SHUTDOWN {
                break;
            }
            let task = wire::decode_task(&payload).unwrap();
            let mut tally = s.new_tally();
            let mut rng = factory.stream(task.task_id);
            s.run_stream(task.photons, &mut rng, &mut tally, None);
            if let Some(a) = tally.archive.as_mut() {
                a.stamp_task(task.task_id);
            }
            write_frame(&mut stream, KIND_COMPLETE, &wire::encode_tally(&tally)).unwrap();
        }
        let report = server.join().expect("server thread").expect("serve ok");
        assert_eq!(report.result.launched(), 500);
    }
}
