//! TCP deployment of the DataManager ⇄ client protocol.
//!
//! This is the configuration the paper actually ran: "All the clients
//! connected to a dedicated server". [`serve`] runs the DataManager on a
//! TCP listener; [`run_client`] is the client loop a worker machine runs.
//! Both ends are constructed with the same [`Simulation`] (the original
//! shipped the `Algorithm` bytecode; we ship the experiment definition
//! out-of-band, which is the idiomatic Rust equivalent).
//!
//! Framing: every message is a 4-byte little-endian length followed by a
//! kind byte and a [`crate::wire`]-encoded payload. Unknown kinds and
//! malformed payloads terminate that client's connection; the DataManager
//! re-queues whatever task the lost client held, exactly as the paper's
//! platform survives reclaimed PCs.

use crate::datamanager::DataManager;
use crate::protocol::{SimTask, WorkerStats};
use crate::wire::{self, WireError};
use lumen_core::engine::{NoProgress, Progress};
use lumen_core::tally::Tally;
use lumen_core::{Simulation, SimulationResult};
use mcrng::StreamFactory;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;

/// Message kind bytes.
const KIND_REQUEST: u8 = 0x01;
const KIND_COMPLETE: u8 = 0x02;
const KIND_ASSIGN: u8 = 0x81;
const KIND_SHUTDOWN: u8 = 0x82;

/// Largest accepted frame (64 MiB) — a 50³ grid of f64 is ~1 MB, so this
/// leaves ample headroom while bounding a hostile length prefix.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Errors from the networked protocol.
#[derive(Debug)]
pub enum NetError {
    Io(std::io::Error),
    Wire(WireError),
    /// Peer sent an unknown message kind.
    BadKind(u8),
    /// Frame length outside (0, MAX_FRAME].
    BadFrame(u32),
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::BadKind(k) => write!(f, "unknown message kind {k:#x}"),
            NetError::BadFrame(n) => write!(f, "bad frame length {n}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Write one framed message.
pub fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    let len = 1 + payload.len();
    if len as u64 > MAX_FRAME as u64 {
        return Err(NetError::BadFrame(len as u32));
    }
    stream.write_all(&(len as u32).to_le_bytes())?;
    stream.write_all(&[kind])?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Read one framed message: `(kind, payload)`.
pub fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), NetError> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(NetError::BadFrame(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let kind = buf[0];
    let payload = buf.split_off(1);
    Ok((kind, payload))
}

/// Outcome of a networked run.
#[derive(Debug)]
pub struct NetReport {
    pub result: SimulationResult,
    pub worker_stats: Vec<WorkerStats>,
    pub requeues: u64,
    /// Clients that connected over the run's lifetime.
    pub clients_served: usize,
}

/// Serve one distributed simulation on `listener`: hand out `n` photons in
/// `tasks` batches to however many clients connect (at least one), merge
/// their tallies, and shut everyone down when complete.
///
/// `expected_clients` controls how many connections the server waits for
/// before it stops accepting (clients may still come and go; a client that
/// disconnects mid-task has its task re-queued).
pub fn serve(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    expected_clients: usize,
) -> Result<NetReport, NetError> {
    serve_with_progress(listener, sim, n, tasks, expected_clients, &NoProgress)
}

/// [`serve`], streaming completion and retry events to `progress` (the
/// hook the `Tcp` backend in [`crate::backend`] wires through).
pub fn serve_with_progress(
    listener: TcpListener,
    sim: &Simulation,
    n: u64,
    tasks: u64,
    expected_clients: usize,
    progress: &dyn Progress,
) -> Result<NetReport, NetError> {
    assert!(expected_clients > 0, "need at least one client");
    sim.validate().expect("invalid simulation configuration");
    let mut dm = DataManager::new(n, tasks, sim.new_tally(), expected_clients);

    enum Event {
        Request { worker: usize },
        Complete { worker: usize, task: SimTask, tally: Box<Tally> },
        Disconnected { worker: usize },
    }

    let (tx, rx) = mpsc::channel::<Event>();
    let mut reply_txs: Vec<mpsc::Sender<Option<SimTask>>> = Vec::new();
    let mut handles = Vec::new();

    // Accept exactly `expected_clients` connections, each served by a
    // proxy thread translating frames into events.
    for worker in 0..expected_clients {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        let (reply_tx, reply_rx) = mpsc::channel::<Option<SimTask>>();
        reply_txs.push(reply_tx);
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            // Track the lease so a disconnect can be reported with intent.
            let mut lease: Option<SimTask> = None;
            let run = (|| -> Result<(), NetError> {
                loop {
                    let (kind, payload) = read_frame(&mut stream)?;
                    match kind {
                        KIND_REQUEST => {
                            tx.send(Event::Request { worker }).ok();
                            match reply_rx.recv().unwrap_or(None) {
                                Some(task) => {
                                    lease = Some(task);
                                    write_frame(
                                        &mut stream,
                                        KIND_ASSIGN,
                                        &wire::encode_task(&task),
                                    )?;
                                }
                                None => {
                                    write_frame(&mut stream, KIND_SHUTDOWN, &[])?;
                                    return Ok(());
                                }
                            }
                        }
                        KIND_COMPLETE => {
                            let task = lease.take().ok_or(NetError::BadKind(kind))?;
                            let tally = wire::decode_tally(&payload)?;
                            tx.send(Event::Complete { worker, task, tally: Box::new(tally) }).ok();
                        }
                        other => return Err(NetError::BadKind(other)),
                    }
                }
            })();
            if run.is_err() {
                // Connection lost or protocol violation: surrender the lease.
                tx.send(Event::Disconnected { worker }).ok();
            }
            let _ = lease;
        }));
    }
    drop(tx);

    // DataManager event loop. Workers whose request arrives while the
    // queue is empty wait; a failed client's requeue may wake them.
    let mut waiting: Vec<usize> = Vec::new();
    // Server-side lease tracking: at most one task outstanding per client.
    let mut leases: Vec<Option<SimTask>> = vec![None; expected_clients];
    let mut photons_done = 0u64;
    while !dm.finished() {
        match rx.recv() {
            Ok(Event::Request { worker }) => match dm.assign() {
                Some(task) => {
                    leases[worker] = Some(task);
                    reply_txs[worker].send(Some(task)).ok();
                }
                None => waiting.push(worker),
            },
            Ok(Event::Complete { worker, task, tally }) => {
                leases[worker] = None;
                dm.complete(worker, task, &tally);
                photons_done += task.photons;
                progress.on_photons(photons_done, n);
            }
            Ok(Event::Disconnected { worker }) => {
                // A reclaimed/crashed client surrenders its lease; the
                // task is re-queued and another client will rerun the
                // identical photons (same stream index).
                if let Some(task) = leases[worker].take() {
                    dm.fail(worker, task);
                    progress.on_task_retry(task.task_id);
                    while let Some(w) = waiting.pop() {
                        match dm.assign() {
                            Some(t) => {
                                leases[w] = Some(t);
                                reply_txs[w].send(Some(t)).ok();
                            }
                            None => {
                                waiting.push(w);
                                break;
                            }
                        }
                    }
                }
            }
            Err(_) => break, // all proxies gone
        }
    }

    // Release waiting clients and any future requests with Shutdown.
    for w in waiting {
        reply_txs[w].send(None).ok();
    }
    // Proxies still alive will forward one more request each; answer None.
    drop(rx);
    for tx in &reply_txs {
        tx.send(None).ok();
    }
    for h in handles {
        h.join().ok();
    }

    let (tally, worker_stats, requeues) = dm.into_results();
    Ok(NetReport {
        result: SimulationResult::new(tally, Vec::new()),
        worker_stats,
        requeues,
        clients_served: expected_clients,
    })
}

/// The client loop: connect to the server, request tasks, simulate them
/// with the shared `sim` definition and `seed`, return tallies, exit on
/// shutdown. Returns the number of tasks completed.
pub fn run_client(addr: &str, sim: &Simulation, seed: u64) -> Result<u64, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let factory = StreamFactory::new(seed);
    let mut completed = 0u64;
    loop {
        write_frame(&mut stream, KIND_REQUEST, &[])?;
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            KIND_SHUTDOWN => return Ok(completed),
            KIND_ASSIGN => {
                let task = wire::decode_task(&payload)?;
                let mut tally = sim.new_tally();
                let mut rng = factory.stream(task.task_id);
                sim.run_stream(task.photons, &mut rng, &mut tally, None);
                write_frame(&mut stream, KIND_COMPLETE, &wire::encode_tally(&tally))?;
                completed += 1;
            }
            other => return Err(NetError::BadKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::engine::{Backend, Rayon, Scenario};
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn sim() -> Simulation {
        Simulation::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    fn rayon_reference(sim: &Simulation, n: u64, seed: u64, tasks: u64) -> SimulationResult {
        let scenario = Scenario::from_simulation(sim, n, seed).with_tasks(tasks);
        Rayon::default().run(&scenario).expect("valid scenario").result
    }

    #[test]
    fn tcp_run_matches_rayon_driver() {
        let s = sim();
        let n = 4_000;
        let tasks = 8;
        let seed = 5;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();

        let clients: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                let addr = addr.clone();
                thread::spawn(move || run_client(&addr, &s, seed).expect("client ok"))
            })
            .collect();

        let report = serve(listener, &s, n, tasks, 3).expect("serve ok");
        let completed: u64 = clients.into_iter().map(|c| c.join().expect("join")).sum();

        assert_eq!(completed, tasks);
        let rayon_res = rayon_reference(&s, n, seed, tasks);
        assert_eq!(report.result.tally, rayon_res.tally);
    }

    #[test]
    fn tcp_single_client_with_grids() {
        use lumen_core::tally::GridSpec;
        use lumen_core::Vec3;
        let mut s = sim();
        s.options.path_grid =
            Some(GridSpec::cubic(10, Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, 2.0, 4.0)));
        s.options.path_histogram = Some((200.0, 16));
        let n = 3_000;
        let seed = 9;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let sc = s.clone();
        let ac = addr.clone();
        let client = thread::spawn(move || run_client(&ac, &sc, seed).expect("client"));

        let report = serve(listener, &s, n, 4, 1).expect("serve");
        client.join().expect("join");

        let rayon_res = rayon_reference(&s, n, seed, 4);
        assert_eq!(report.result.tally, rayon_res.tally);
        assert!(report.result.tally.path_grid.is_some());
    }

    #[test]
    fn frame_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let (kind, payload) = read_frame(&mut s).unwrap();
            write_frame(&mut s, kind, &payload).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, 0x42, b"hello").unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"hello");
        echo.join().unwrap();
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            match read_frame(&mut s) {
                Err(NetError::BadFrame(0)) => {}
                other => panic!("expected BadFrame(0), got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&0u32.to_le_bytes()).unwrap();
        srv.join().unwrap();
    }
}
