//! The cluster-side [`Backend`] implementations — the registration that
//! extends `lumen_core::engine`'s backend vocabulary without making
//! `lumen-core` depend on this crate.
//!
//! Three execution substrates join [`Sequential`](lumen_core::Sequential)
//! and [`Rayon`](lumen_core::Rayon) here:
//!
//! * [`ThreadedCluster`] — the real master/worker protocol on OS threads
//!   (demand-driven scheduling, leases, failure re-queueing), with optional
//!   fault injection via [`FailurePlan`];
//! * [`Tcp`] — the paper's actual deployment: the DataManager on a TCP
//!   listener, serving however many `net::run_client` processes connect;
//! * [`SimulatedCluster`] — the discrete-event simulator. It models
//!   *time*, not photons: the returned report carries per-machine
//!   accounting and a virtual makespan ([`RunReport::virtual_seconds`])
//!   over an empty tally, so paper-scale pools can be explored instantly.
//!
//! All of them honour the scenario's `(seed, tasks)` contract, so the
//! physics-executing backends return tallies bit-identical to the core
//! ones. [`from_spec`] resolves the full five-backend vocabulary
//! (`sequential | rayon | cluster | tcp | sim`), falling back to
//! `lumen_core::engine::from_spec` for the core names, and [`BackendExt`]
//! hangs convenience runners off [`Scenario`] itself.

use crate::executor::{run_master_worker, DistributedConfig, DistributedReport};
use crate::machine::{homogeneous_pool, MachinePool};
use crate::net::{serve_with_options, NetError, ServeOptions};
use crate::protocol::WorkerStats;
use crate::{AvailabilityModel, ClusterSim, DesReport, JobSpec, NetworkModel};
use lumen_core::engine::{Backend, EngineError, Progress, RunReport, Scenario, WorkerAccount};
use lumen_core::SimulationResult;
use serde::{Deserialize, Serialize};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// How a [`ThreadedCluster`] injects worker failures (a non-dedicated PC
/// being reclaimed by its owner mid-task).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FailurePlan {
    /// No injected failures.
    #[default]
    Reliable,
    /// Each assigned task is lost with this probability; lost tasks are
    /// re-queued and retried elsewhere with identical physics.
    Random {
        /// Per-task failure probability in `[0, 1)`.
        rate: f64,
    },
}

impl FailurePlan {
    /// The per-task failure probability this plan encodes.
    pub fn rate(&self) -> f64 {
        match *self {
            FailurePlan::Reliable => 0.0,
            FailurePlan::Random { rate } => rate,
        }
    }
}

fn account(stats: &[WorkerStats]) -> Vec<WorkerAccount> {
    stats
        .iter()
        .map(|s| WorkerAccount {
            tasks_completed: s.tasks_completed,
            tasks_failed: s.tasks_failed,
            photons: s.photons,
        })
        .collect()
}

/// The real master/worker engine as a backend: OS threads play the client
/// PCs, channels play the LAN, the DataManager runs the full protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadedCluster {
    /// Number of worker threads ("client PCs"); must be >= 1.
    pub workers: usize,
    /// Fault-injection plan.
    pub failure_plan: FailurePlan,
}

impl ThreadedCluster {
    /// A reliable cluster of `workers` threads.
    pub fn new(workers: usize) -> Self {
        Self { workers, failure_plan: FailurePlan::Reliable }
    }

    /// Builder-style fault injection.
    pub fn with_failure_plan(mut self, plan: FailurePlan) -> Self {
        self.failure_plan = plan;
        self
    }
}

impl Backend for ThreadedCluster {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        scenario.validate()?;
        let config = DistributedConfig {
            seed: scenario.seed,
            tasks: scenario.tasks,
            workers: self.workers,
            failure_rate: self.failure_plan.rate(),
            task_offset: scenario.task_offset,
        };
        let sim = scenario.simulation();
        let DistributedReport { result, worker_stats, requeues, wall_seconds } =
            run_master_worker(&sim, scenario.photons, config, progress)?;
        Ok(RunReport {
            result,
            workers: account(&worker_stats),
            requeues,
            wall_seconds,
            virtual_seconds: None,
            backend: self.name().to_string(),
        })
    }
}

/// The paper's deployment: the DataManager bound to a TCP address,
/// serving however many `net::run_client` processes connect — the pool is
/// elastic, `min_clients` only gates the first assignment, and leased
/// tasks survive departures via deadline-based revocation (see
/// [`crate::net::serve_with_options`]). Clients must be started
/// separately with the same scenario definition and seed (the out-of-band
/// experiment contract; `wire::encode_scenario` ships it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcp {
    /// Address to bind, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Clients to wait for before the first assignment (late joiners are
    /// served immediately after that).
    pub min_clients: usize,
    /// Per-task lease deadline; a lease that misses it is revoked and
    /// re-queued exactly like a disconnect.
    pub lease_timeout: Duration,
    /// How long the server tolerates an empty client pool before
    /// abandoning the run with a typed error.
    pub join_grace: Duration,
}

impl Tcp {
    /// A server for `addr` starting at the first client, with the default
    /// lease/grace timeouts of [`ServeOptions`].
    pub fn new(addr: impl Into<String>) -> Self {
        let defaults = ServeOptions::default();
        Self {
            addr: addr.into(),
            min_clients: defaults.min_clients,
            lease_timeout: defaults.lease_timeout,
            join_grace: defaults.join_grace,
        }
    }

    /// Builder-style minimum client count.
    pub fn with_clients(mut self, min_clients: usize) -> Self {
        self.min_clients = min_clients;
        self
    }

    /// Builder-style lease deadline.
    pub fn with_lease_timeout(mut self, lease_timeout: Duration) -> Self {
        self.lease_timeout = lease_timeout;
        self
    }

    /// Builder-style empty-pool grace period.
    pub fn with_join_grace(mut self, join_grace: Duration) -> Self {
        self.join_grace = join_grace;
        self
    }

    fn serve_options(&self) -> ServeOptions {
        ServeOptions::default()
            .with_min_clients(self.min_clients)
            .with_lease_timeout(self.lease_timeout)
            .with_join_grace(self.join_grace)
    }
}

/// Map a networked failure onto the engine's error vocabulary: parameter
/// problems stay `InvalidConfig`, everything else (I/O, protocol
/// violations, an abandoned incomplete run) is a backend failure.
fn net_error(e: NetError) -> EngineError {
    match e {
        NetError::InvalidConfig(reason) => EngineError::InvalidConfig(reason),
        other => EngineError::backend("tcp", other.to_string()),
    }
}

impl Backend for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        scenario.validate()?;
        let started = Instant::now();
        let listener = TcpListener::bind(&self.addr)
            .map_err(|e| EngineError::backend(self.name(), format!("bind {}: {e}", self.addr)))?;
        let sim = scenario.simulation();
        let report = serve_with_options(
            listener,
            &sim,
            scenario.photons,
            scenario.tasks,
            self.serve_options().with_task_offset(scenario.task_offset),
            progress,
        )
        .map_err(net_error)?;
        Ok(RunReport {
            result: report.result,
            workers: account(&report.worker_stats),
            requeues: report.requeues,
            wall_seconds: started.elapsed().as_secs_f64(),
            virtual_seconds: None,
            backend: self.name().to_string(),
        })
    }
}

/// The discrete-event simulator as a backend: predicts how long the
/// scenario's photon budget would take on an arbitrary machine pool,
/// without executing any photon transport.
///
/// The returned report is *virtual*: its tally is empty,
/// [`RunReport::virtual_seconds`] carries the simulated makespan, and the
/// per-worker accounts describe the simulated machines. Use it to answer
/// "how long would 10⁹ photons take on the Table 2 pool?" in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedCluster {
    /// The machines being simulated.
    pub machine_pool: MachinePool,
    /// Network latency/bandwidth model.
    pub network: NetworkModel,
    /// Non-dedicated availability model.
    pub availability: AvailabilityModel,
    /// Calibrated cost of one photon (flops); see [`JobSpec::paper_job`].
    pub flops_per_photon: f64,
}

impl SimulatedCluster {
    /// Simulate `machines` dedicated paper-class PCs on a 2006 LAN.
    pub fn new(machines: usize) -> Self {
        Self::with_pool(homogeneous_pool(machines))
    }

    /// Simulate an arbitrary pool with the paper's network/cost defaults.
    pub fn with_pool(machine_pool: MachinePool) -> Self {
        Self {
            machine_pool,
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::DEDICATED,
            flops_per_photon: JobSpec::paper_job().flops_per_photon,
        }
    }

    /// The [`JobSpec`] a scenario maps onto.
    fn job_for(&self, scenario: &Scenario) -> JobSpec {
        let paper = JobSpec::paper_job();
        JobSpec {
            total_photons: scenario.photons,
            flops_per_photon: self.flops_per_photon,
            batch_photons: scenario.photons.div_ceil(scenario.tasks).max(1),
            task_bytes: paper.task_bytes,
            result_bytes: paper.result_bytes,
        }
    }

    /// Run the DES and also return the raw [`DesReport`] for callers that
    /// want the simulator-specific quantities (speedup, utilisation, ...).
    pub fn run_des(&self, scenario: &Scenario) -> Result<DesReport, EngineError> {
        scenario.validate()?;
        if scenario.photons == 0 {
            return Err(EngineError::InvalidConfig("simulated run needs photons >= 1".into()));
        }
        if self.machine_pool.is_empty() {
            return Err(EngineError::InvalidConfig("machine pool is empty".into()));
        }
        let job = self.job_for(scenario);
        job.validate().map_err(EngineError::InvalidConfig)?;
        self.network.validate().map_err(EngineError::InvalidConfig)?;
        self.availability.validate().map_err(EngineError::InvalidConfig)?;
        let sim = ClusterSim {
            pool: self.machine_pool.clone(),
            network: self.network,
            availability: self.availability,
            seed: scenario.seed,
        };
        Ok(sim.run(&job))
    }
}

impl Backend for SimulatedCluster {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: &dyn Progress,
    ) -> Result<RunReport, EngineError> {
        let started = Instant::now();
        let des = self.run_des(scenario)?;
        progress.on_photons(scenario.photons, scenario.photons);
        let workers = des
            .machine_tasks
            .iter()
            .zip(&des.machine_photons)
            .map(|(&tasks_completed, &photons)| WorkerAccount {
                tasks_completed,
                tasks_failed: 0,
                photons,
            })
            .collect();
        // The DES models time, not transport: the tally stays empty.
        let empty = scenario.simulation().new_tally();
        Ok(RunReport {
            result: SimulationResult::new(empty, Vec::new()),
            workers,
            requeues: 0,
            wall_seconds: started.elapsed().as_secs_f64(),
            virtual_seconds: Some(des.makespan_s),
            backend: self.name().to_string(),
        })
    }
}

/// Convenience runners registered on [`Scenario`] by this crate.
pub trait BackendExt {
    /// Run on a reliable [`ThreadedCluster`] of `workers` threads.
    fn run_threaded(&self, workers: usize) -> Result<RunReport, EngineError>;

    /// Predict the run on a simulated `machine_pool` (virtual report).
    fn run_simulated(&self, machine_pool: MachinePool) -> Result<RunReport, EngineError>;
}

impl BackendExt for Scenario {
    fn run_threaded(&self, workers: usize) -> Result<RunReport, EngineError> {
        ThreadedCluster::new(workers).run(self)
    }

    fn run_simulated(&self, machine_pool: MachinePool) -> Result<RunReport, EngineError> {
        SimulatedCluster::with_pool(machine_pool).run(self)
    }
}

/// Resolve a backend-spec string over the **full** vocabulary:
///
/// * `sequential`, `rayon [threads]` — delegated to
///   `lumen_core::engine::from_spec`;
/// * `cluster [workers] [failure_rate]` — [`ThreadedCluster`] (defaults:
///   one worker per logical CPU, no failures);
/// * `tcp <addr> [min_clients] [lease_timeout_s]` — [`Tcp`] (defaults:
///   start at the first client, 10-minute lease deadline);
/// * `sim [machines]` — [`SimulatedCluster`] (default: the paper's 60
///   dedicated homogeneous machines);
/// * `reweight <archive-file>` — [`lumen_core::Reweight`] over a stored
///   path archive ([`crate::wire::decode_archive`]): answers the scenario
///   by re-scoring recorded paths instead of tracing photons.
pub fn from_spec(spec: &str) -> Result<Box<dyn Backend>, EngineError> {
    let mut parts = spec.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();

    fn parse<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, EngineError> {
        v.parse::<T>()
            .map_err(|_| EngineError::InvalidConfig(format!("{what} `{v}` cannot be parsed")))
    }

    match (kind, args.as_slice()) {
        ("cluster", rest) => {
            let workers = match rest.first() {
                Some(v) => parse::<usize>("cluster worker count", v)?,
                None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            };
            let plan = match rest.get(1) {
                Some(v) => FailurePlan::Random { rate: parse::<f64>("cluster failure rate", v)? },
                None => FailurePlan::Reliable,
            };
            if rest.len() > 2 {
                return Err(EngineError::InvalidConfig(format!(
                    "cluster spec takes at most `[workers] [failure_rate]`, got `{spec}`"
                )));
            }
            Ok(Box::new(ThreadedCluster { workers, failure_plan: plan }))
        }
        ("tcp", [addr]) => Ok(Box::new(Tcp::new(*addr))),
        ("tcp", [addr, min_clients]) => Ok(Box::new(
            Tcp::new(*addr).with_clients(parse::<usize>("tcp minimum client count", min_clients)?),
        )),
        ("tcp", [addr, min_clients, lease_secs]) => {
            let secs = parse::<f64>("tcp lease timeout (seconds)", lease_secs)?;
            if !(secs > 0.0 && secs <= 1e9) {
                return Err(EngineError::InvalidConfig(format!(
                    "tcp lease timeout must be in (0, 10^9] seconds, got `{lease_secs}`"
                )));
            }
            Ok(Box::new(
                Tcp::new(*addr)
                    .with_clients(parse::<usize>("tcp minimum client count", min_clients)?)
                    .with_lease_timeout(Duration::from_secs_f64(secs)),
            ))
        }
        ("tcp", _) => Err(EngineError::InvalidConfig(
            "tcp backend needs `tcp <addr> [min_clients] [lease_timeout_s]`".into(),
        )),
        ("sim", []) => Ok(Box::new(SimulatedCluster::new(60))),
        ("sim", [machines]) => {
            Ok(Box::new(SimulatedCluster::new(parse::<usize>("sim machine count", machines)?)))
        }
        ("sim", _) => Err(EngineError::InvalidConfig("sim backend needs `sim [machines]`".into())),
        ("reweight", [path]) => {
            let bytes = std::fs::read(path).map_err(|e| {
                EngineError::InvalidConfig(format!("cannot read archive `{path}`: {e}"))
            })?;
            let archive = crate::wire::decode_archive(&bytes).map_err(|e| {
                EngineError::InvalidConfig(format!("cannot decode archive `{path}`: {e}"))
            })?;
            Ok(Box::new(lumen_core::Reweight::new(archive)))
        }
        ("reweight", _) => Err(EngineError::InvalidConfig(
            "reweight backend needs `reweight <archive-file>`".into(),
        )),
        // Known core backends keep the core resolver's precise errors
        // (e.g. "rayon thread count must be >= 1"); only genuinely
        // unknown names get the full-vocabulary message.
        ("sequential", _) | ("rayon", _) => lumen_core::engine::from_spec(spec),
        _ => Err(EngineError::InvalidConfig(format!(
            "unknown backend `{spec}` (expected sequential | rayon [threads] | \
             cluster [workers] [failure_rate] | tcp <addr> [min_clients] [lease_timeout_s] | \
             sim [machines] | reweight <archive-file>)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::{Detector, Rayon, Sequential, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn scenario() -> Scenario {
        Scenario::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
        .with_photons(4_000)
        .with_tasks(8)
        .with_seed(11)
    }

    #[test]
    fn threaded_cluster_matches_core_backends() {
        let s = scenario();
        let seq = Sequential.run(&s).unwrap();
        let clu = ThreadedCluster::new(3).run(&s).unwrap();
        assert_eq!(seq.result.tally, clu.result.tally);
        assert_eq!(clu.backend, "cluster");
        let photons: u64 = clu.workers.iter().map(|w| w.photons).sum();
        assert_eq!(photons, 4_000);
    }

    #[test]
    fn failure_plan_changes_accounting_not_physics() {
        // 32 tasks at 50%: P(zero failures) ~ 2e-10, so the requeue
        // assertions cannot flake on an unlucky schedule.
        let s = scenario().with_tasks(32);
        let clean = ThreadedCluster::new(3).run(&s).unwrap();
        let faulty = ThreadedCluster::new(3)
            .with_failure_plan(FailurePlan::Random { rate: 0.5 })
            .run(&s)
            .unwrap();
        assert_eq!(clean.result.tally, faulty.result.tally);
        assert!(faulty.requeues > 0);
        assert!(faulty.workers.iter().any(|w| w.tasks_failed > 0));
    }

    #[test]
    fn zero_workers_is_invalid_config() {
        let s = scenario();
        let err = ThreadedCluster::new(0).run(&s).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn simulated_cluster_reports_virtual_time() {
        let s = scenario().with_photons(1_000_000).with_tasks(100);
        let report = SimulatedCluster::new(10).run(&s).unwrap();
        assert!(report.is_virtual());
        assert!(report.virtual_seconds.unwrap() > 0.0);
        assert_eq!(report.workers.len(), 10);
        let photons: u64 = report.workers.iter().map(|w| w.photons).sum();
        assert_eq!(photons, 1_000_000);
        // Virtual report: no photons were actually traced.
        assert_eq!(report.result.launched(), 0);
    }

    #[test]
    fn scenario_extension_trait_runs() {
        let s = scenario();
        let a = s.run_threaded(2).unwrap();
        let b = Rayon::default().run(&s).unwrap();
        assert_eq!(a.result.tally, b.result.tally);
    }

    #[test]
    fn tcp_backend_runs_against_clients() {
        use std::thread;
        // Bind on port 0 first to find a free port, then hand the address
        // to the backend (which binds its own listener).
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);

        let s = scenario().with_photons(2_000).with_tasks(4);
        let sim = s.simulation();
        let addr_c = addr.clone();
        let seed = s.seed;
        let client = thread::spawn(move || {
            // Retry until the server's listener is up.
            for _ in 0..200 {
                match crate::net::run_client(&addr_c, &sim, seed) {
                    Ok(n) => return n,
                    Err(_) => thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            panic!("client never connected");
        });

        let report = Tcp::new(addr).run(&s).unwrap();
        let completed = client.join().unwrap();
        assert_eq!(completed, 4);
        let reference = Sequential.run(&s).unwrap();
        assert_eq!(report.result.tally, reference.result.tally);
        assert_eq!(report.backend, "tcp");
    }

    #[test]
    fn spec_resolution_covers_all_six() {
        assert_eq!(from_spec("sequential").unwrap().name(), "sequential");
        assert_eq!(from_spec("rayon 2").unwrap().name(), "rayon");
        assert_eq!(from_spec("cluster").unwrap().name(), "cluster");
        assert_eq!(from_spec("cluster 4").unwrap().name(), "cluster");
        assert_eq!(from_spec("cluster 4 0.1").unwrap().name(), "cluster");
        assert_eq!(from_spec("tcp 127.0.0.1:7878").unwrap().name(), "tcp");
        assert_eq!(from_spec("tcp 127.0.0.1:7878 3").unwrap().name(), "tcp");
        assert_eq!(from_spec("tcp 127.0.0.1:7878 3 5.5").unwrap().name(), "tcp");
        assert_eq!(from_spec("sim").unwrap().name(), "sim");
        assert_eq!(from_spec("sim 150").unwrap().name(), "sim");
        assert!(from_spec("tcp").is_err());
        assert!(from_spec("tcp 127.0.0.1:7878 3 0").is_err());
        assert!(from_spec("tcp 127.0.0.1:7878 3 -2").is_err());
        assert!(from_spec("tcp 127.0.0.1:7878 3 1e30").is_err());
        assert!(from_spec("tcp 127.0.0.1:7878 3 5 extra").is_err());
        assert!(from_spec("cluster four").is_err());
        assert!(from_spec("warp-drive").is_err());
        // `reweight` needs exactly one archive path, and the file must
        // exist and decode.
        assert!(from_spec("reweight").is_err());
        assert!(from_spec("reweight a b").is_err());
        assert!(from_spec("reweight /nonexistent/archive.lmn").is_err());
        let file = std::env::temp_dir().join("lumen_spec_resolution_archive.lmn");
        let archive = recorded_archive(&scenario_with_archive());
        std::fs::write(&file, crate::wire::encode_archive(&archive)).unwrap();
        assert_eq!(from_spec(&format!("reweight {}", file.display())).unwrap().name(), "reweight");
        let _ = std::fs::remove_file(&file);
    }

    fn scenario_with_archive() -> Scenario {
        let mut s = scenario();
        s.options.archive = Some(lumen_core::RecordOptions::default());
        s
    }

    fn recorded_archive(s: &Scenario) -> lumen_core::PathArchive {
        Sequential.run(s).unwrap().result.tally.archive.clone().expect("archive attached")
    }

    #[test]
    fn archives_agree_across_backends_after_canonical_ordering() {
        // Sequential and Rayon merge per-task archives in task order;
        // the threaded cluster merges in completion order, which is
        // schedule-dependent — but after the canonical task-id sort all
        // three must hold the identical recording.
        let s = scenario_with_archive();
        let mut seq = recorded_archive(&s);
        let mut ray =
            Rayon::default().run(&s).unwrap().result.tally.archive.clone().expect("archive");
        let mut clu =
            ThreadedCluster::new(3).run(&s).unwrap().result.tally.archive.clone().expect("archive");
        seq.canonical_order();
        ray.canonical_order();
        clu.canonical_order();
        assert_eq!(seq, ray);
        assert_eq!(seq, clu);
    }

    #[test]
    fn reweight_spec_answers_identity_query_from_disk() {
        let s = scenario_with_archive();
        let recorded = Sequential.run(&s).unwrap();
        let file = std::env::temp_dir().join("lumen_reweight_spec_archive.lmn");
        std::fs::write(
            &file,
            crate::wire::encode_archive(recorded.result.tally.archive.as_ref().unwrap()),
        )
        .unwrap();
        let backend = from_spec(&format!("reweight {}", file.display())).unwrap();
        let mut query = s.clone();
        query.options.archive = None;
        let replayed = backend.run(&query).unwrap();
        let _ = std::fs::remove_file(&file);
        assert_eq!(replayed.backend, "reweight");
        assert_eq!(replayed.result.tally.detected, recorded.result.tally.detected);
        assert_eq!(replayed.result.tally.detected_weight, recorded.result.tally.detected_weight);
    }

    #[test]
    fn tcp_spec_carries_min_clients_and_lease_timeout() {
        // `from_spec` returns a boxed trait object, so check the knobs on
        // the concrete builder it mirrors.
        let tcp = Tcp::new("127.0.0.1:7878")
            .with_clients(3)
            .with_lease_timeout(std::time::Duration::from_secs_f64(5.5));
        assert_eq!(tcp.min_clients, 3);
        assert_eq!(tcp.lease_timeout, std::time::Duration::from_secs_f64(5.5));
        assert_eq!(tcp.join_grace, crate::net::ServeOptions::default().join_grace);
    }

    #[test]
    fn tcp_zero_min_clients_is_invalid_config() {
        let s = scenario();
        let err = Tcp::new("127.0.0.1:0").with_clients(0).run(&s).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)), "{err}");
    }
}
