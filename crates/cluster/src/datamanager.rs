//! The DataManager: the server-side task queue and result aggregator.
//!
//! "The DataManager, which resides on the server, assigns simulations to
//! client PCs and processes the returned results." This struct is exactly
//! that, factored so the same logic drives both the real threaded executor
//! and tests: it owns the queue of outstanding tasks, hands them out on
//! request (demand-driven self-scheduling), re-queues failed tasks, and
//! merges returned tallies.

use crate::protocol::{SimTask, WorkerStats};
use lumen_core::tally::Tally;
use std::collections::VecDeque;

/// Server state for one distributed simulation.
#[derive(Debug)]
pub struct DataManager {
    queue: VecDeque<SimTask>,
    /// Tasks handed out but not yet completed (leases).
    outstanding: Vec<SimTask>,
    /// Per-task tallies, indexed by task id. Kept separate until the end so
    /// the final merge runs in task order — float accumulation order (and
    /// hence the result, bit for bit) is then independent of which worker
    /// finished first.
    completed: Vec<Option<Tally>>,
    /// Template for the aggregate tally.
    template: Tally,
    /// Per-worker statistics.
    stats: Vec<WorkerStats>,
    tasks_total: usize,
    tasks_done: usize,
    requeues: u64,
    /// First task id handed out (see [`DataManager::with_offset`]);
    /// `completed` slot `j` holds task `task_offset + j`.
    task_offset: u64,
}

impl DataManager {
    /// Create a manager for `total_photons` split into `n_tasks` batches,
    /// aggregating into a tally shaped like `template`.
    pub fn new(total_photons: u64, n_tasks: u64, template: Tally, n_workers: usize) -> Self {
        Self::with_offset(total_photons, n_tasks, 0, template, n_workers)
    }

    /// Like [`DataManager::new`], but task ids start at `task_offset`
    /// instead of zero. Workers stream RNG by task id, so an offset run
    /// draws from streams `task_offset..task_offset + n_tasks` — the
    /// continuation contract behind the service cache's incremental
    /// top-up (`Scenario::task_offset` carries the same value through
    /// the in-process backends).
    pub fn with_offset(
        total_photons: u64,
        n_tasks: u64,
        task_offset: u64,
        template: Tally,
        n_workers: usize,
    ) -> Self {
        let sizes = lumen_core::parallel::batch_sizes(total_photons, n_tasks);
        let queue: VecDeque<SimTask> = sizes
            .iter()
            .enumerate()
            .map(|(i, &photons)| SimTask { task_id: task_offset + i as u64, photons })
            .collect();
        Self {
            tasks_total: queue.len(),
            completed: (0..queue.len()).map(|_| None).collect(),
            queue,
            outstanding: Vec::new(),
            template,
            stats: vec![WorkerStats::default(); n_workers],
            tasks_done: 0,
            requeues: 0,
            task_offset,
        }
    }

    /// Hand the next task to a requesting worker, or `None` when the queue
    /// is empty (the worker should be shut down once all leases resolve).
    pub fn assign(&mut self) -> Option<SimTask> {
        let task = self.queue.pop_front()?;
        self.outstanding.push(task);
        Some(task)
    }

    /// Register a worker that joined after construction (the elastic TCP
    /// server admits clients for the run's whole lifetime), returning its
    /// dense id.
    pub fn register_worker(&mut self) -> usize {
        self.stats.push(WorkerStats::default());
        self.stats.len() - 1
    }

    /// Process a completed task's tally. Returns `false` (without
    /// merging) if the task was already completed — a duplicate must
    /// never double-count photons, and the server's event loop must never
    /// panic over a misbehaving peer.
    pub fn complete(&mut self, worker: usize, task: SimTask, tally: &Tally) -> bool {
        self.release_lease(task);
        let Some(slot) = task
            .task_id
            .checked_sub(self.task_offset)
            .and_then(|i| self.completed.get_mut(i as usize))
        else {
            return false; // task id outside this run: drop, don't panic
        };
        if slot.is_some() {
            return false;
        }
        *slot = Some(tally.clone());
        self.tasks_done += 1;
        if let Some(s) = self.stats.get_mut(worker) {
            s.tasks_completed += 1;
            s.photons += task.photons;
        }
        true
    }

    /// Re-queue a failed task (front of queue: it is the oldest work).
    pub fn fail(&mut self, worker: usize, task: SimTask) {
        self.release_lease(task);
        self.queue.push_front(task);
        self.requeues += 1;
        if let Some(s) = self.stats.get_mut(worker) {
            s.tasks_failed += 1;
        }
    }

    fn release_lease(&mut self, task: SimTask) {
        if let Some(i) = self.outstanding.iter().position(|t| t.task_id == task.task_id) {
            self.outstanding.swap_remove(i);
        }
    }

    /// All tasks completed?
    pub fn finished(&self) -> bool {
        self.tasks_done == self.tasks_total
    }

    /// True when no work remains to hand out (but leases may be live).
    pub fn queue_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of batches.
    pub fn tasks_total(&self) -> usize {
        self.tasks_total
    }

    /// Number of times a task had to be re-queued after a failure.
    pub fn requeues(&self) -> u64 {
        self.requeues
    }

    /// Consume the manager, yielding the merged tally and worker stats.
    /// Tallies merge in task-id order for bit-level reproducibility.
    pub fn into_results(self) -> (Tally, Vec<WorkerStats>, u64) {
        assert!(self.finished(), "into_results before all tasks completed");
        let mut aggregate = self.template;
        for tally in self.completed.into_iter().flatten() {
            aggregate.merge(&tally);
        }
        (aggregate, self.stats, self.requeues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Tally {
        Tally::new(1, None, None)
    }

    fn worker_tally(launched: u64) -> Tally {
        let mut t = template();
        t.launched = launched;
        t
    }

    #[test]
    fn assigns_all_tasks_once() {
        let mut dm = DataManager::new(100, 10, template(), 2);
        let mut seen = Vec::new();
        while let Some(t) = dm.assign() {
            seen.push(t.task_id);
        }
        assert_eq!(seen.len(), 10);
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn completion_merges_and_finishes() {
        let mut dm = DataManager::new(100, 4, template(), 1);
        let mut assigned = Vec::new();
        while let Some(t) = dm.assign() {
            assigned.push(t);
        }
        for t in &assigned {
            dm.complete(0, *t, &worker_tally(t.photons));
        }
        assert!(dm.finished());
        let (tally, stats, requeues) = dm.into_results();
        assert_eq!(tally.launched, 100);
        assert_eq!(stats[0].tasks_completed, 4);
        assert_eq!(stats[0].photons, 100);
        assert_eq!(requeues, 0);
    }

    #[test]
    fn failed_tasks_are_requeued_and_retried() {
        let mut dm = DataManager::new(30, 3, template(), 2);
        let t0 = dm.assign().unwrap();
        dm.fail(1, t0);
        assert_eq!(dm.requeues(), 1);
        // The failed task comes back (front of the queue).
        let retry = dm.assign().unwrap();
        assert_eq!(retry.task_id, t0.task_id);
        // Completing everything still reaches the exact photon total.
        dm.complete(0, retry, &worker_tally(retry.photons));
        while let Some(t) = dm.assign() {
            dm.complete(0, t, &worker_tally(t.photons));
        }
        assert!(dm.finished());
        let (tally, stats, _) = dm.into_results();
        assert_eq!(tally.launched, 30);
        assert_eq!(stats[1].tasks_failed, 1);
    }

    #[test]
    #[should_panic(expected = "before all tasks completed")]
    fn into_results_requires_completion() {
        let dm = DataManager::new(10, 2, template(), 1);
        let _ = dm.into_results();
    }

    #[test]
    fn zero_photon_job_finishes_immediately() {
        let dm = DataManager::new(0, 4, template(), 1);
        assert!(dm.finished());
        assert_eq!(dm.tasks_total(), 0);
    }

    #[test]
    fn duplicate_completion_is_ignored_not_merged() {
        let mut dm = DataManager::new(20, 2, template(), 2);
        let t = dm.assign().unwrap();
        assert!(dm.complete(0, t, &worker_tally(t.photons)));
        // A stale duplicate (e.g. a revoked lease finishing late) merges
        // nothing and corrupts no accounting.
        assert!(!dm.complete(1, t, &worker_tally(t.photons)));
        let u = dm.assign().unwrap();
        assert!(dm.complete(0, u, &worker_tally(u.photons)));
        let (tally, stats, _) = dm.into_results();
        assert_eq!(tally.launched, 20);
        assert_eq!(stats[0].tasks_completed, 2);
        assert_eq!(stats[1].tasks_completed, 0);
    }

    #[test]
    fn offset_manager_hands_out_and_completes_offset_ids() {
        let mut dm = DataManager::with_offset(40, 4, 100, template(), 1);
        let mut ids = Vec::new();
        let mut taken = Vec::new();
        while let Some(t) = dm.assign() {
            ids.push(t.task_id);
            taken.push(t);
        }
        assert_eq!(ids, vec![100, 101, 102, 103]);
        // An id outside the run (hostile or stale peer) is dropped, not a panic.
        assert!(!dm.complete(0, SimTask { task_id: 99, photons: 10 }, &worker_tally(10)));
        assert!(!dm.complete(0, SimTask { task_id: 104, photons: 10 }, &worker_tally(10)));
        for t in taken {
            assert!(dm.complete(0, t, &worker_tally(t.photons)));
        }
        let (tally, _, _) = dm.into_results();
        assert_eq!(tally.launched, 40);
    }

    #[test]
    fn registered_workers_extend_the_stats_table() {
        let mut dm = DataManager::new(10, 1, template(), 0);
        let a = dm.register_worker();
        let b = dm.register_worker();
        assert_eq!((a, b), (0, 1));
        let t = dm.assign().unwrap();
        dm.complete(b, t, &worker_tally(t.photons));
        let (_, stats, _) = dm.into_results();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].tasks_completed, 1);
        assert_eq!(stats[0].tasks_completed, 0);
    }
}
