//! Speedup/efficiency experiment helpers (the paper's Fig 2).
//!
//! "Speedup is calculated as P1/Pk where P1 is the time taken on 1
//! processor and Pk is the time taken using k processors."

use crate::availability::AvailabilityModel;
use crate::des::{ClusterSim, JobSpec};
use crate::machine::homogeneous_pool;
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// One point on the speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Number of processors `k`.
    pub k: usize,
    /// Virtual time with `k` processors (s).
    pub time_s: f64,
    /// Speedup `P1 / Pk`.
    pub speedup: f64,
    /// Efficiency `speedup / k`.
    pub efficiency: f64,
}

/// Parallel efficiency from a (k, speedup) pair.
pub fn efficiency(k: usize, speedup: f64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    speedup / k as f64
}

/// Simulated Fig 2: run `job` on homogeneous pools of each size in `ks`,
/// computing speedup against the measured 1-processor run (P1), exactly
/// as the paper defines it.
pub fn speedup_curve(
    job: &JobSpec,
    ks: &[usize],
    network: NetworkModel,
    availability: AvailabilityModel,
    seed: u64,
) -> Vec<SpeedupPoint> {
    assert!(!ks.is_empty(), "need at least one pool size");
    let p1 =
        ClusterSim { pool: homogeneous_pool(1), network, availability, seed }.run(job).makespan_s;
    ks.iter()
        .map(|&k| {
            assert!(k >= 1, "pool sizes must be >= 1");
            let time_s = if k == 1 {
                p1
            } else {
                ClusterSim { pool: homogeneous_pool(k), network, availability, seed }
                    .run(job)
                    .makespan_s
            };
            let speedup = p1 / time_s;
            SpeedupPoint { k, time_s, speedup, efficiency: efficiency(k, speedup) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<SpeedupPoint> {
        speedup_curve(
            &JobSpec::paper_job(),
            &[1, 10, 20, 30, 40, 50, 60],
            NetworkModel::lan_2006(),
            AvailabilityModel::DEDICATED,
            11,
        )
    }

    #[test]
    fn speedup_is_monotone_and_near_linear() {
        let c = curve();
        assert!((c[0].speedup - 1.0).abs() < 1e-9, "P1/P1 = 1");
        for pair in c.windows(2) {
            assert!(pair[1].speedup > pair[0].speedup, "{pair:?}");
        }
        let last = c.last().unwrap();
        assert_eq!(last.k, 60);
        assert!(
            last.efficiency > 0.95,
            "the paper reports >97% at 60; simulated {:.3}",
            last.efficiency
        );
    }

    #[test]
    fn efficiency_never_exceeds_one() {
        for p in curve() {
            assert!(p.efficiency <= 1.0 + 1e-9, "{p:?}");
            assert!(p.efficiency > 0.0);
        }
    }

    #[test]
    fn efficiency_helper() {
        assert_eq!(efficiency(10, 9.7), 0.97);
        assert_eq!(efficiency(0, 5.0), 0.0);
    }

    #[test]
    fn times_decrease_with_more_machines() {
        let c = curve();
        for pair in c.windows(2) {
            assert!(pair[1].time_s < pair[0].time_s);
        }
    }
}
