//! Stochastic availability of non-dedicated machines.
//!
//! "We had non-dedicated usage of these processors, and the available
//! processing and network resources varied stochastically over time."
//!
//! We model each machine's deliverable fraction of its peak rate as a
//! two-state Markov process — the machine's owner is either *away* (the
//! platform gets most of the CPU) or *active* (the platform is throttled
//! to spare cycles) — plus multiplicative jitter. The model is sampled
//! once per task execution, which matches the original platform's
//! granularity (a task is the unit that sees a consistent machine state).

use mcrng::{McRng, SplitMix64};
use serde::{Deserialize, Serialize};

/// Two-state owner-activity model with jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Long-run probability the owner is active on the machine.
    pub owner_active_prob: f64,
    /// Deliverable fraction of peak while the owner is away.
    pub idle_fraction: f64,
    /// Deliverable fraction of peak while the owner is active.
    pub busy_fraction: f64,
    /// Half-width of the multiplicative uniform jitter (e.g. 0.05 = ±5 %).
    pub jitter: f64,
}

impl AvailabilityModel {
    /// Machines fully dedicated to the platform (for controlled speedup
    /// measurements).
    pub const DEDICATED: AvailabilityModel = AvailabilityModel {
        owner_active_prob: 0.0,
        idle_fraction: 1.0,
        busy_fraction: 1.0,
        jitter: 0.0,
    };

    /// The paper's environment: semi-idle student-lab PCs. Owners are
    /// occasionally active; even an idle machine delivers slightly less
    /// than benchmark peak.
    pub fn semi_idle() -> Self {
        Self { owner_active_prob: 0.2, idle_fraction: 0.95, busy_fraction: 0.35, jitter: 0.05 }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("owner_active_prob", self.owner_active_prob),
            ("idle_fraction", self.idle_fraction),
            ("busy_fraction", self.busy_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(format!("jitter must be in [0,1), got {}", self.jitter));
        }
        if self.busy_fraction <= 0.0 && self.owner_active_prob > 0.0 {
            return Err("busy_fraction must be positive (machines never fully stall)".into());
        }
        Ok(())
    }

    /// Sample the deliverable fraction of peak for one task execution.
    pub fn sample<R: McRng>(&self, rng: &mut R) -> f64 {
        let base = if rng.next_f64() < self.owner_active_prob {
            self.busy_fraction
        } else {
            self.idle_fraction
        };
        let jitter = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        (base * jitter).clamp(1e-3, 1.0)
    }

    /// Long-run expected deliverable fraction.
    pub fn expected_fraction(&self) -> f64 {
        self.owner_active_prob * self.busy_fraction
            + (1.0 - self.owner_active_prob) * self.idle_fraction
    }

    /// A deterministic per-machine sampler stream.
    pub fn sampler(&self, seed: u64, machine: usize) -> AvailabilitySampler {
        AvailabilitySampler {
            model: *self,
            rng: SplitMix64::new(seed ^ (machine as u64).wrapping_mul(0xA57A_11AB_1117_0001)),
        }
    }
}

/// Stateful per-machine availability stream.
#[derive(Debug, Clone)]
pub struct AvailabilitySampler {
    model: AvailabilityModel,
    rng: SplitMix64,
}

impl AvailabilitySampler {
    /// Deliverable peak fraction for the machine's next task.
    pub fn next_fraction(&mut self) -> f64 {
        self.model.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcrng::Xoshiro256PlusPlus;

    #[test]
    fn dedicated_is_always_full_speed() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(AvailabilityModel::DEDICATED.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn samples_within_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let m = AvailabilityModel::semi_idle();
        for _ in 0..10_000 {
            let f = m.sample(&mut rng);
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn empirical_mean_matches_expectation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let m = AvailabilityModel::semi_idle();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - m.expected_fraction()).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sampler_is_deterministic_per_machine() {
        let m = AvailabilityModel::semi_idle();
        let mut a = m.sampler(7, 3);
        let mut b = m.sampler(7, 3);
        let mut c = m.sampler(7, 4);
        let va: Vec<f64> = (0..10).map(|_| a.next_fraction()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.next_fraction()).collect();
        let vc: Vec<f64> = (0..10).map(|_| c.next_fraction()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(AvailabilityModel::semi_idle().validate().is_ok());
        assert!(AvailabilityModel::DEDICATED.validate().is_ok());
        let bad = AvailabilityModel { owner_active_prob: 1.5, ..AvailabilityModel::semi_idle() };
        assert!(bad.validate().is_err());
        let bad2 = AvailabilityModel { jitter: 1.0, ..AvailabilityModel::semi_idle() };
        assert!(bad2.validate().is_err());
    }
}
