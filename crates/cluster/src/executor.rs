//! The real master/worker engine: OS threads as clients, channels as the
//! LAN, the [`DataManager`] as the server.
//!
//! Unlike the rayon fast path in `lumen-core`, this engine runs the actual
//! distributed protocol — demand-driven task requests, leases, failure
//! re-queueing — so the platform behaviour itself can be observed and
//! tested, and so the per-worker accounting of the paper (which machine
//! did how much) is available. Results are bit-identical to the rayon
//! driver for the same `(seed, tasks)` because both derive each task's
//! photons from the same RNG stream family.

use crate::datamanager::DataManager;
use crate::protocol::{ClientMessage, ServerMessage, WorkerStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lumen_core::engine::{EngineError, NoProgress, Progress};
use lumen_core::{Simulation, SimulationResult};
use mcrng::{McRng, SplitMix64, StreamFactory};
use serde::{Deserialize, Serialize};
use std::thread;
use std::time::Instant;

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Experiment seed (same meaning as the rayon driver's).
    pub seed: u64,
    /// Number of photon batches.
    pub tasks: u64,
    /// Number of worker threads ("client PCs").
    pub workers: usize,
    /// Probability that a worker fails a task (simulating a non-dedicated
    /// PC being reclaimed mid-task). Failed tasks are re-queued and retried
    /// elsewhere; 0.0 disables fault injection.
    pub failure_rate: f64,
    /// First RNG stream index: task `i` draws from stream
    /// `task_offset + i` (mirrors `Scenario::task_offset` — a non-zero
    /// offset runs a continuation of an earlier run on fresh streams).
    pub task_offset: u64,
}

impl DistributedConfig {
    /// Reasonable defaults: one worker per logical CPU, 4 tasks per worker.
    pub fn new(seed: u64, workers: usize) -> Self {
        Self { seed, tasks: (workers as u64) * 4, workers, failure_rate: 0.0, task_offset: 0 }
    }

    /// Validate the execution parameters. `workers: 0` used to hang the
    /// task queue forever; it is now rejected up front.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::InvalidConfig(
                "distributed run needs at least one worker".into(),
            ));
        }
        if self.tasks == 0 {
            return Err(EngineError::InvalidConfig("tasks must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.failure_rate) {
            return Err(EngineError::InvalidConfig(format!(
                "failure rate must be in [0, 1), got {}",
                self.failure_rate
            )));
        }
        if self.task_offset.checked_add(self.tasks).is_none() {
            return Err(EngineError::InvalidConfig(
                "task_offset + tasks overflows the stream index space".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a distributed run.
#[derive(Debug)]
pub struct DistributedReport {
    /// The merged simulation result.
    pub result: SimulationResult,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
    /// How many task re-queues the failure injection caused.
    pub requeues: u64,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
}

/// Run `n` photons of `sim` on the threaded master/worker engine.
///
/// Deprecated shim over the [`crate::backend::ThreadedCluster`] backend —
/// build a `lumen_core::engine::Scenario` and run it there instead.
#[deprecated(
    since = "0.1.0",
    note = "build an `engine::Scenario` and run it on the `backend::ThreadedCluster` backend"
)]
pub fn run_distributed(sim: &Simulation, n: u64, config: DistributedConfig) -> DistributedReport {
    run_master_worker(sim, n, config, &NoProgress).expect("invalid distributed configuration")
}

/// The real master/worker engine: validate, then run `n` photons of `sim`
/// through the full protocol, streaming status to `progress`.
///
/// Deterministic in its *physics* for a given `(seed, tasks)`: the same
/// batches with the same streams are executed regardless of worker count,
/// scheduling order, or injected failures (a re-executed task re-runs the
/// identical photons, exactly as the original platform re-assigns a lost
/// simulation).
pub fn run_master_worker(
    sim: &Simulation,
    n: u64,
    config: DistributedConfig,
    progress: &dyn Progress,
) -> Result<DistributedReport, EngineError> {
    config.validate()?;
    sim.validate().map_err(EngineError::from)?;

    let started = Instant::now();
    let factory = StreamFactory::new(config.seed);
    let mut dm = DataManager::with_offset(
        n,
        config.tasks,
        config.task_offset,
        sim.new_tally(),
        config.workers,
    );

    let (to_server, from_clients): (Sender<ClientMessage>, Receiver<ClientMessage>) = unbounded();
    // One private channel per worker for assignments.
    let mut to_workers: Vec<Sender<ServerMessage>> = Vec::with_capacity(config.workers);

    thread::scope(|scope| {
        for worker_id in 0..config.workers {
            let (tx, rx): (Sender<ServerMessage>, Receiver<ServerMessage>) = unbounded();
            to_workers.push(tx);
            let to_server = to_server.clone();
            let sim = &*sim;
            // Fault injection draws from a per-worker deterministic stream
            // unrelated to the physics streams.
            let mut fault_rng = SplitMix64::new(
                config.seed ^ 0xFA17_FA17_FA17_FA17 ^ (worker_id as u64).wrapping_mul(0x9E37),
            );
            let failure_rate = config.failure_rate;
            scope.spawn(move || {
                // --- the client loop (the paper's Algorithm class) ---
                // Sends are best-effort: once the server has all results it
                // drops its receiver, and trailing requests just vanish.
                let _ = to_server.send(ClientMessage::RequestTask { worker: worker_id });
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ServerMessage::Shutdown => break,
                        ServerMessage::Assign(task) => {
                            if failure_rate > 0.0 && fault_rng.next_f64() < failure_rate {
                                // Machine "reclaimed by its owner": the task
                                // is lost before completing.
                                let _ = to_server
                                    .send(ClientMessage::TaskFailed { worker: worker_id, task });
                            } else {
                                let mut tally = sim.new_tally();
                                let mut rng = factory.stream(task.task_id);
                                sim.run_stream(task.photons, &mut rng, &mut tally, None);
                                if let Some(a) = tally.archive.as_mut() {
                                    a.stamp_task(task.task_id);
                                }
                                let _ = to_server.send(ClientMessage::TaskComplete {
                                    worker: worker_id,
                                    task,
                                    tally: Box::new(tally),
                                });
                            }
                            let _ =
                                to_server.send(ClientMessage::RequestTask { worker: worker_id });
                        }
                    }
                }
            });
        }
        drop(to_server); // server holds only the receive side

        // --- the DataManager loop ---
        let mut shut_down = vec![false; config.workers];
        let mut pending_requests: Vec<usize> = Vec::new();
        let mut photons_done = 0u64;
        while !dm.finished() {
            match from_clients.recv().expect("workers alive while unfinished") {
                ClientMessage::RequestTask { worker } => match dm.assign() {
                    Some(task) => {
                        to_workers[worker].send(ServerMessage::Assign(task)).ok();
                    }
                    None => pending_requests.push(worker),
                },
                ClientMessage::TaskComplete { worker, task, tally } => {
                    dm.complete(worker, task, &tally);
                    photons_done += task.photons;
                    progress.on_photons(photons_done, n);
                }
                ClientMessage::TaskFailed { worker, task } => {
                    dm.fail(worker, task);
                    progress.on_task_retry(task.task_id);
                    // A re-queued task can immediately satisfy a starved
                    // worker that asked while the queue was empty.
                    while let Some(w) = pending_requests.pop() {
                        match dm.assign() {
                            Some(t) => {
                                to_workers[w].send(ServerMessage::Assign(t)).ok();
                            }
                            None => {
                                pending_requests.push(w);
                                break;
                            }
                        }
                    }
                }
            }
        }
        for (w, tx) in to_workers.iter().enumerate() {
            if !shut_down[w] {
                tx.send(ServerMessage::Shutdown).ok();
                shut_down[w] = true;
            }
        }
        // Drain any trailing requests so worker threads observe Shutdown.
        drop(from_clients);
    });

    let (tally, worker_stats, requeues) = dm.into_results();
    Ok(DistributedReport {
        result: SimulationResult::new(tally, Vec::new()),
        worker_stats,
        requeues,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::engine::{Backend, Rayon, Scenario};
    use lumen_core::{Detector, Source};
    use lumen_tissue::presets::semi_infinite_phantom;

    fn sim() -> Simulation {
        Simulation::new(
            semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
            Source::Delta,
            Detector::new(1.0, 0.5),
        )
    }

    fn run(sim: &Simulation, n: u64, cfg: DistributedConfig) -> DistributedReport {
        run_master_worker(sim, n, cfg, &NoProgress).expect("valid config")
    }

    #[test]
    fn distributed_matches_rayon_driver() {
        let s = sim();
        let n = 8_000;
        let cfg =
            DistributedConfig { seed: 5, tasks: 16, workers: 4, failure_rate: 0.0, task_offset: 0 };
        let dist = run(&s, n, cfg);
        let scenario = Scenario::from_simulation(&s, n, 5).with_tasks(16);
        let rayon = Rayon::default().run(&scenario).expect("valid scenario");
        assert_eq!(dist.result.tally, rayon.result.tally);
    }

    #[test]
    fn worker_stats_account_for_all_photons() {
        let s = sim();
        let n = 10_000;
        let cfg =
            DistributedConfig { seed: 1, tasks: 20, workers: 3, failure_rate: 0.0, task_offset: 0 };
        let rep = run(&s, n, cfg);
        let total: u64 = rep.worker_stats.iter().map(|w| w.photons).sum();
        assert_eq!(total, n);
        let tasks: u64 = rep.worker_stats.iter().map(|w| w.tasks_completed).sum();
        assert_eq!(tasks, 20);
        // Demand-driven scheduling should give every worker some work.
        assert!(rep.worker_stats.iter().all(|w| w.tasks_completed > 0));
    }

    #[test]
    fn failure_injection_preserves_results_exactly() {
        let s = sim();
        let n = 6_000;
        // 32 tasks at 50%: P(zero failures) ~ 2e-10 — cannot flake.
        let clean = run(
            &s,
            n,
            DistributedConfig { seed: 9, tasks: 32, workers: 3, failure_rate: 0.0, task_offset: 0 },
        );
        let faulty = run(
            &s,
            n,
            DistributedConfig { seed: 9, tasks: 32, workers: 3, failure_rate: 0.5, task_offset: 0 },
        );
        // Physics identical: re-executed tasks rerun the same streams.
        assert_eq!(clean.result.tally, faulty.result.tally);
        assert!(faulty.requeues > 0, "50% failure rate should cause requeues");
    }

    #[test]
    fn offset_run_continues_an_earlier_run_bit_identically() {
        // Streams 0..4 run in one job, then streams 4..8 arrive as
        // single-task continuation runs folded on in order (a left fold
        // is prefix-extendable; merging two multi-task partial folds
        // would differ in the last ulp). Worker count must not matter.
        let s = sim();
        let whole = run(
            &s,
            8_000,
            DistributedConfig { seed: 7, tasks: 8, workers: 3, failure_rate: 0.0, task_offset: 0 },
        );
        let head = run(
            &s,
            4_000,
            DistributedConfig { seed: 7, tasks: 4, workers: 2, failure_rate: 0.0, task_offset: 0 },
        );
        let mut merged = head.result.tally.clone();
        for j in 4..8 {
            let step = run(
                &s,
                1_000,
                DistributedConfig {
                    seed: 7,
                    tasks: 1,
                    workers: 2,
                    failure_rate: 0.0,
                    task_offset: j,
                },
            );
            merged.merge(&step.result.tally);
        }
        assert_eq!(merged, whole.result.tally);
    }

    #[test]
    fn single_worker_works() {
        let s = sim();
        let rep = run(
            &s,
            2_000,
            DistributedConfig { seed: 2, tasks: 4, workers: 1, failure_rate: 0.0, task_offset: 0 },
        );
        assert_eq!(rep.result.launched(), 2_000);
        assert_eq!(rep.worker_stats[0].tasks_completed, 4);
    }

    #[test]
    fn more_tasks_than_needed_is_fine() {
        let s = sim();
        // 100 tasks for 50 photons: many zero batches are filtered out.
        let rep = run(
            &s,
            50,
            DistributedConfig {
                seed: 3,
                tasks: 100,
                workers: 4,
                failure_rate: 0.0,
                task_offset: 0,
            },
        );
        assert_eq!(rep.result.launched(), 50);
    }

    #[test]
    fn zero_workers_is_a_typed_error_not_a_hang() {
        let s = sim();
        let cfg =
            DistributedConfig { seed: 1, tasks: 4, workers: 0, failure_rate: 0.0, task_offset: 0 };
        match run_master_worker(&s, 1_000, cfg, &NoProgress) {
            Err(EngineError::InvalidConfig(msg)) => assert!(msg.contains("worker"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn bad_failure_rate_is_rejected() {
        let cfg =
            DistributedConfig { seed: 1, tasks: 4, workers: 2, failure_rate: 1.5, task_offset: 0 };
        assert!(matches!(cfg.validate(), Err(EngineError::InvalidConfig(_))));
        let cfg =
            DistributedConfig { seed: 1, tasks: 0, workers: 2, failure_rate: 0.0, task_offset: 0 };
        assert!(matches!(cfg.validate(), Err(EngineError::InvalidConfig(_))));
    }
}
