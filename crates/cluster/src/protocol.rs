//! The DataManager ⇄ client wire protocol.
//!
//! The original platform shipped Java objects over TCP; we ship serde-able
//! structs over crossbeam channels. Every message the original protocol
//! needs is here: clients *request* work, the server *assigns* a task or
//! tells the client to *shut down*, clients *return* results or report
//! *failure* (a non-dedicated PC being reclaimed by its owner mid-task).

use lumen_core::tally::Tally;
use serde::{Deserialize, Serialize};

/// One unit of assignable work: a photon batch with its RNG stream index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTask {
    /// Unique, dense task identifier (also the RNG stream index, which is
    /// what makes re-execution after a failure give identical photons).
    pub task_id: u64,
    /// Photons in this batch.
    pub photons: u64,
}

/// Client → server messages.
#[derive(Debug)]
pub enum ClientMessage {
    /// "I am idle; give me work." Carries the worker id.
    RequestTask { worker: usize },
    /// Completed task with its private tally.
    TaskComplete { worker: usize, task: SimTask, tally: Box<Tally> },
    /// The task could not be completed (machine reclaimed / crashed);
    /// the server must re-queue it.
    TaskFailed { worker: usize, task: SimTask },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// A batch to simulate.
    Assign(SimTask),
    /// No more work; terminate the worker loop.
    Shutdown,
}

/// Per-worker execution statistics the server keeps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Tasks completed by this worker.
    pub tasks_completed: u64,
    /// Photons simulated by this worker.
    pub photons: u64,
    /// Tasks this worker failed (for failure-injection experiments).
    pub tasks_failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_is_copy_and_ordered_by_id() {
        let t = SimTask { task_id: 3, photons: 100 };
        let u = t; // Copy
        assert_eq!(t, u);
    }

    #[test]
    fn server_message_equality() {
        let t = SimTask { task_id: 1, photons: 10 };
        assert_eq!(ServerMessage::Assign(t), ServerMessage::Assign(t));
        assert_ne!(ServerMessage::Assign(t), ServerMessage::Shutdown);
    }

    #[test]
    fn worker_stats_default_is_zero() {
        let s = WorkerStats::default();
        assert_eq!(s.tasks_completed, 0);
        assert_eq!(s.photons, 0);
        assert_eq!(s.tasks_failed, 0);
    }
}
